//! Offline drop-in subset of the `criterion` benchmark API.
//!
//! The sandbox and CI for this repository run with no network access, so the
//! workspace vendors the slice of criterion its benches use: `Criterion`,
//! `benchmark_group`, `bench_function`/`bench_with_input`, `BenchmarkId`,
//! `Throughput::Elements`, and `Bencher::{iter, iter_with_setup}`.
//!
//! Statistics are deliberately simple — fixed warm-up, then timed batches
//! reporting median ns/iter (no bootstrap, outlier analysis, or HTML
//! reports). Good enough to compare before/after on the same machine, which
//! is all the repo's benches are for.
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation; only element counts are used by this workspace.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Two-part benchmark id: function name + parameter, rendered `name/param`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Top-level driver handed to `criterion_group!` target functions.
pub struct Criterion {
    /// Number of timed samples per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let stats = run_samples(self.sample_size, &mut f);
        report(&id.label, &stats, None);
        self
    }
}

/// Group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let stats = run_samples(self.sample_size, &mut f);
        report(
            &format!("{}/{}", self.name, id.label),
            &stats,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let stats = run_samples(self.sample_size, &mut |b: &mut Bencher| f(b, input));
        report(
            &format!("{}/{}", self.name, id.label),
            &stats,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to the measured closure; `iter` times the supplied routine.
pub struct Bencher {
    /// ns per iteration measured for this sample.
    sample_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate the batch size so one sample runs ≥ ~1ms, then time it.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.sample_ns = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters *= 4;
        }
    }

    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Setup cost is excluded by timing each routine call individually.
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < Duration::from_millis(1) && iters < 1 << 20 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.sample_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn run_samples<F: FnMut(&mut Bencher)>(samples: usize, f: &mut F) -> Vec<f64> {
    // One untimed warm-up pass.
    let mut b = Bencher { sample_ns: 0.0 };
    f(&mut b);
    (0..samples)
        .map(|_| {
            let mut b = Bencher { sample_ns: 0.0 };
            f(&mut b);
            b.sample_ns
        })
        .collect()
}

fn report(label: &str, samples: &[f64], throughput: Option<Throughput>) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let min = sorted.first().copied().unwrap_or(0.0);
    let max = sorted.last().copied().unwrap_or(0.0);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:>10.3} Melem/s", n as f64 * 1000.0 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!(
                "  {:>10.3} MiB/s",
                n as f64 * 1e9 / median / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!(
        "{label:<48} time: [{} {} {}]{rate}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// `std::hint::black_box` re-export for benches importing it from criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
