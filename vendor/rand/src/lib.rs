//! Offline drop-in subset of the `rand` crate API.
//!
//! The sandbox and CI for this repository run with no network access, so the
//! workspace vendors the tiny slice of `rand` it actually uses: a seedable
//! deterministic generator (`StdRng`) plus `Rng::{gen_range, gen_bool}`.
//! The generator is SplitMix64 — statistically fine for workload synthesis,
//! NOT a reproduction of upstream `StdRng`'s ChaCha stream (seeds produce
//! different workloads than upstream would, which is irrelevant here since
//! all consumers only need determinism, not upstream-identical streams).
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core generator trait: the subset of `rand::RngCore` we need.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding trait mirroring `rand::SeedableRng` for the entry points used.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling helpers mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy {
    /// Uniform draw from the inclusive range `[lo, hi_incl]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_incl: Self) -> Self;
    /// Uniform draw from the half-open range `[lo, hi_excl)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self;
}

/// Ranges usable with `gen_range`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_incl: Self) -> Self {
                let span = (hi_incl as i128 - lo as i128 + 1) as u128;
                if span == 0 || span > u64::MAX as u128 {
                    // Range covers (at least) the full 64-bit space.
                    return rng.next_u64() as $t;
                }
                // Widening multiply keeps bias negligible for the span sizes
                // used by the workload generators (all far below 2^64).
                let x = rng.next_u64() as u128;
                (lo as i128 + ((x * span) >> 64) as i128) as $t
            }
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self {
                <$t as SampleUniform>::sample_inclusive(rng, lo, hi_excl - 1)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_inclusive(rng, lo, hi)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                // Decorrelate tiny seeds before the first output.
                state: state.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: usize = a.gen_range(3..17);
            let y: usize = b.gen_range(3..17);
            assert_eq!(x, y);
            assert!((3..17).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(7);
        let k: u32 = c.gen_range(0..=0);
        assert_eq!(k, 0);
        let v: i64 = c.gen_range(-5..=5);
        assert!((-5..=5).contains(&v));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
