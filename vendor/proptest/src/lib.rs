//! Offline drop-in subset of the `proptest` API.
//!
//! The sandbox and CI for this repository run with no network access, so the
//! workspace vendors the slice of proptest it uses: the `proptest!` macro,
//! `prop_assert*`/`prop_assume!`/`prop_oneof!`, `Just`, integer-range and
//! tuple strategies, `prop_map`, `prop_recursive`, `collection::vec`, and a
//! string strategy for the one regex pattern the tests use (`.{0,120}`).
//!
//! Differences from upstream, deliberately accepted:
//! - no shrinking: a failing case reports its inputs but is not minimized;
//! - generation is a fixed deterministic stream per test (seeded from the
//!   test name), so failures reproduce on re-run;
//! - `prop_recursive` expands a bounded number of levels eagerly rather than
//!   decaying probabilistically.
#![forbid(unsafe_code)]

pub mod test_runner {
    /// Error type produced by `prop_assert!`/`prop_assume!` inside a case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's preconditions were not met (`prop_assume!`); skipped.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    /// Subset of upstream's `Config`: only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic generator (SplitMix64) driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seed_from(seed: u64) -> Self {
            TestRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// FNV-1a over the test name: decorrelates streams across tests.
    pub fn name_seed(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// Value-generation strategy. Upstream's trait is much richer; this
    /// subset supports generation only (no shrink trees).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Eagerly builds `depth` recursion levels over the leaf strategy and
        /// samples uniformly across levels (upstream decays probabilistically;
        /// the `_desired_size`/`_expected_branch` hints are ignored here).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
            for _ in 0..depth {
                // Inner draws mix all shallower levels so generated values
                // vary in nesting depth, not just "exactly k deep".
                let inner = Union::new(levels.clone()).boxed();
                levels.push(f(inner).boxed());
            }
            Union::new(levels).boxed()
        }
    }

    trait StrategyObj<T> {
        fn generate_obj(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> StrategyObj<S::Value> for S {
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<T>(Arc<dyn StrategyObj<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_obj(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Self::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
        }

        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let x = rng.next_u64() as u128;
                    (self.start as i128 + ((x * span) >> 64) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    let x = rng.next_u64() as u128;
                    (lo as i128 + ((x * span) >> 64) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let lo = self.start as u32;
            let hi = self.end as u32;
            assert!(lo < hi, "empty char range strategy");
            loop {
                let x = lo + rng.below((hi - lo) as u64) as u32;
                if let Some(c) = char::from_u32(x) {
                    return c;
                }
            }
        }
    }

    impl Strategy for bool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            // `any::<bool>()` replacement: the receiver value is ignored.
            let _ = self;
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// String strategy from a regex-shaped pattern. Only the forms actually
    /// used by this workspace's tests are supported: `.{a,b}`, `.{a}`, `.*`
    /// and `.+` (any-char repetitions). Anything else panics loudly so an
    /// unsupported pattern is an obvious error, not a silently wrong one.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_any_char_repeat(self).unwrap_or_else(|| {
                panic!(
                    "vendored proptest stub: unsupported regex strategy {self:?} \
                     (supported: \".{{a,b}}\", \".{{a}}\", \".*\", \".+\")"
                )
            });
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len).map(|_| arbitrary_char(rng)).collect()
        }
    }

    fn parse_any_char_repeat(pat: &str) -> Option<(usize, usize)> {
        match pat {
            ".*" => return Some((0, 32)),
            ".+" => return Some((1, 32)),
            _ => {}
        }
        let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
        match body.split_once(',') {
            Some((a, b)) => {
                let lo = a.parse().ok()?;
                let hi = b.parse().ok()?;
                (lo <= hi).then_some((lo, hi))
            }
            None => {
                let n = body.parse().ok()?;
                Some((n, n))
            }
        }
    }

    /// Adversarial char mix: ASCII printable, whitespace/control, Latin-1
    /// and beyond, multi-byte CJK, and astral-plane code points.
    fn arbitrary_char(rng: &mut TestRng) -> char {
        loop {
            let x = match rng.below(10) {
                0..=4 => 0x20 + rng.below(0x5f) as u32, // ASCII printable
                5 => rng.below(0x20) as u32,            // C0 controls
                6 => 0x80 + rng.below(0x180) as u32,    // Latin-1/ext
                7 => 0x2000 + rng.below(0x100) as u32,  // punctuation/space
                8 => 0x4e00 + rng.below(0x400) as u32,  // CJK
                _ => 0x1f300 + rng.below(0x200) as u32, // emoji
            };
            if let Some(c) = char::from_u32(x) {
                return c;
            }
        }
    }

    /// Kept for signature compatibility in helper fns that spell out
    /// `impl Strategy<Value = T>`; not otherwise used.
    pub struct ValueTree<T>(PhantomData<T>);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for `collection::vec` (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests. Supports the upstream surface used
/// here: an optional `#![proptest_config(...)]` header and `#[test]` fns with
/// `pattern in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let seed = $crate::test_runner::name_seed(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            // Rejections (prop_assume!) don't consume a case; cap total work
            // so a strategy that almost always rejects still terminates.
            let max_attempts = (config.cases as u64) * 16 + 64;
            while accepted < config.cases && attempt < max_attempts {
                let mut rng = $crate::test_runner::TestRng::seed_from(
                    seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                attempt += 1;
                $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed (attempt {} of {}): {}",
                            attempt, stringify!($name), msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    (cfg = $cfg:expr;) => {};
}

/// Chooses among strategies producing the same value type. Optional
/// `weight => strategy` arms bias the choice.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(
            vec![$(($weight, $crate::strategy::Strategy::boxed($strat))),+]
        )
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(
            vec![$($crate::strategy::Strategy::boxed($strat)),+]
        )
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                    l, r, format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        crate::collection::vec(0u32..10, 0..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 0u32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_maps(pair in (0usize..4, 0i64..100).prop_map(|(a, b)| (a, b * 2))) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.1 % 2, 0);
        }

        #[test]
        fn vec_sizes(v in small_vec()) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_and_just(s in prop_oneof![Just("a".to_owned()), Just("b".to_owned())]) {
            prop_assert!(s == "a" || s == "b");
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn regex_strings(s in ".{0,12}") {
            prop_assert!(s.chars().count() <= 12);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u32),
        Node(Vec<Tree>),
    }

    fn tree_strategy() -> impl Strategy<Value = Tree> {
        let leaf = (0u32..8).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
        })
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #[test]
        fn recursive_bounded(t in tree_strategy()) {
            prop_assert!(depth(&t) <= 3);
        }
    }
}
