//! Offline placeholder for `rand_chacha`. No source file in the workspace
//! uses this crate today; the manifest dependency is kept satisfied so the
//! workspace resolves without network access. `ChaCha8Rng` is aliased to the
//! vendored deterministic `StdRng` (SplitMix64), which provides the same
//! seed-determinism contract callers would rely on.
#![forbid(unsafe_code)]

pub type ChaCha8Rng = rand::rngs::StdRng;
pub type ChaCha12Rng = rand::rngs::StdRng;
pub type ChaCha20Rng = rand::rngs::StdRng;
