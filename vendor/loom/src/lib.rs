//! Offline drop-in subset of the `loom` model-checker API.
//!
//! Real `loom` exhaustively enumerates thread interleavings by running the
//! model body under a controlled scheduler. This repository builds with no
//! network access, so the workspace vendors the *API shape* the tests use
//! (`loom::model`, `loom::thread`, `loom::sync`) implemented as a
//! randomized stress harness instead: the model body is re-executed many
//! times on real OS threads, with random `yield_now` injection at every
//! synchronization point (lock acquisition, atomic access) to perturb the
//! schedule between iterations.
//!
//! This finds real interleaving bugs in practice but does NOT prove their
//! absence — it trades loom's exhaustiveness for zero dependencies. Tests
//! written against this subset compile unchanged against the real `loom`,
//! so a CI environment with network access can swap the registry crate in
//! (`[patch]` the workspace dependency) and get exhaustive checking.
//!
//! Iteration count: 64 per `model` call by default; override with the
//! `LOOM_ITERS` environment variable.

#![forbid(unsafe_code)]

use std::cell::Cell;

thread_local! {
    /// Per-thread SplitMix64 state driving yield injection.
    static RNG: Cell<u64> = const { Cell::new(0x9E37_79B9_7F4A_7C15) };
}

fn next_u64() -> u64 {
    RNG.with(|s| {
        let mut z = s.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
        s.set(z);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    })
}

/// Yield the OS scheduler with probability 1/4 — called at every modeled
/// synchronization point so successive iterations see different
/// interleavings.
fn maybe_yield() {
    if next_u64().is_multiple_of(4) {
        std::thread::yield_now();
    }
}

/// Run `f` repeatedly under schedule perturbation (the stress-subset
/// stand-in for loom's exhaustive exploration).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters: u64 = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    for i in 0..iters {
        RNG.with(|s| s.set(0xC1A5_51C0_u64.wrapping_mul(i + 1)));
        f();
    }
}

/// Thread handling: `std::thread` with yield injection on spawn and join.
pub mod thread {
    pub use std::thread::yield_now;

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        /// Join, propagating the thread's result.
        pub fn join(self) -> std::thread::Result<T> {
            super::maybe_yield();
            self.0.join()
        }
    }

    /// Spawn a model thread. Each spawned thread derives a fresh yield
    /// schedule from the spawner's.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let seed = super::next_u64();
        super::maybe_yield();
        JoinHandle(std::thread::spawn(move || {
            super::RNG.with(|s| s.set(seed));
            f()
        }))
    }
}

/// Synchronization primitives with yield injection at acquisition points.
pub mod sync {
    pub use std::sync::Arc;

    /// `std::sync::Mutex` with a yield point before each acquisition.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// A new unlocked mutex.
        pub fn new(t: T) -> Mutex<T> {
            Mutex(std::sync::Mutex::new(t))
        }

        /// Acquire, yielding first with some probability.
        pub fn lock(&self) -> std::sync::LockResult<std::sync::MutexGuard<'_, T>> {
            super::maybe_yield();
            self.0.lock()
        }

        /// Consume the mutex, returning the inner value.
        pub fn into_inner(self) -> std::sync::LockResult<T> {
            self.0.into_inner()
        }
    }

    /// Atomic types with yield points around each access.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_wrapper {
            ($name:ident, $inner:ty, $prim:ty) => {
                /// Yield-instrumented atomic.
                #[derive(Debug, Default)]
                pub struct $name($inner);

                impl $name {
                    /// A new atomic with the given initial value.
                    pub fn new(v: $prim) -> Self {
                        Self(<$inner>::new(v))
                    }

                    /// Atomic load.
                    pub fn load(&self, order: Ordering) -> $prim {
                        crate::maybe_yield();
                        self.0.load(order)
                    }

                    /// Atomic store.
                    pub fn store(&self, v: $prim, order: Ordering) {
                        crate::maybe_yield();
                        self.0.store(v, order);
                    }

                    /// Atomic fetch-add, returning the previous value.
                    pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                        crate::maybe_yield();
                        let prev = self.0.fetch_add(v, order);
                        crate::maybe_yield();
                        prev
                    }

                    /// Atomic compare-exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        crate::maybe_yield();
                        self.0.compare_exchange(current, new, success, failure)
                    }

                    /// Consume the atomic, returning the inner value.
                    pub fn into_inner(self) -> $prim {
                        self.0.into_inner()
                    }
                }
            };
        }

        atomic_wrapper!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        atomic_wrapper!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// Yield-instrumented atomic boolean.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// A new atomic with the given initial value.
            pub fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> bool {
                crate::maybe_yield();
                self.0.load(order)
            }

            /// Atomic store.
            pub fn store(&self, v: bool, order: Ordering) {
                crate::maybe_yield();
                self.0.store(v, order);
            }

            /// Atomic swap, returning the previous value.
            pub fn swap(&self, v: bool, order: Ordering) -> bool {
                crate::maybe_yield();
                self.0.swap(v, order)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn model_runs_and_counts_are_exact() {
        super::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        for _ in 0..10 {
                            n.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::Relaxed), 30);
        });
    }

    #[test]
    fn mutex_protects_compound_updates() {
        super::model(|| {
            let v = Arc::new(Mutex::new(Vec::new()));
            let handles: Vec<_> = (0..2)
                .map(|t| {
                    let v = Arc::clone(&v);
                    super::thread::spawn(move || {
                        for i in 0..5 {
                            v.lock().unwrap().push((t, i));
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(v.lock().unwrap().len(), 10);
        });
    }
}
