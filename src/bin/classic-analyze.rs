//! `classic-analyze` — lint CLASSIC surface-language scripts from CI.
//!
//! ```text
//! classic-analyze [--deny warnings|errors] [--json] [--quiet] [--metrics <path>]
//!                 [--trace-out <path>] <script.classic>...
//! ```
//!
//! `--json` switches the report to machine-readable output: one JSON
//! object per diagnostic per line (code, severity, span, message,
//! provenance), in the same stable order as the text report. CI pipes
//! this through the server's strict JSON parser (`json-check`) so the
//! diagnostic format stays pinned to the wire grammar.
//!
//! `--metrics <path>` dumps the engine's metric roll-up after analysis
//! (loading the scripts exercises assertion/propagation/classification):
//! Prometheus text at `<path>`, JSON at `<path>.json`.
//!
//! `--trace-out <path>` raises observability to Full and, after all
//! scripts have been analyzed, dumps the retained span trees as Chrome
//! trace-event JSON (Perfetto-loadable) — a profile of where load and
//! analysis time went.
//!
//! Each script is loaded into its own fresh session (so a broken schema in
//! one file cannot mask findings in another), then the static analyzer
//! runs over the resulting schema and rule base. Exit codes:
//!
//! * `0` — every script loaded and passed the deny threshold;
//! * `1` — at least one report crossed the threshold (default: errors;
//!   `--deny warnings` also fails on warnings);
//! * `2` — a script failed to load (parse error or rejected update), or
//!   the command line was malformed.

use classic::analyze::{analyze, Severity};
use classic::lang::Session;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: classic-analyze [--deny warnings|errors] [--json] [--quiet] [--metrics <path>]\n\
         \x20                      [--trace-out <path>] <script.classic>..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut deny = Severity::Error;
    let mut json = false;
    let mut quiet = false;
    let mut metrics: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut scripts: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => match args.next().as_deref().and_then(Severity::parse_deny) {
                Some(level) => deny = level,
                None => return usage(),
            },
            "--json" => json = true,
            "--metrics" => match args.next() {
                Some(path) => metrics = Some(path),
                None => return usage(),
            },
            "--trace-out" => match args.next() {
                Some(path) => {
                    // Spans only record at Full; raise before any work.
                    classic::obs::set_level(classic::obs::ObsLevel::Full);
                    trace_out = Some(path);
                }
                None => return usage(),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => return usage(),
            _ => scripts.push(arg),
        }
    }
    if scripts.is_empty() {
        return usage();
    }

    let mut failed = false;
    let mut broken = false;
    for path in &scripts {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                broken = true;
                continue;
            }
        };
        let mut session = Session::new();
        if let Err(e) = session.run(&source) {
            eprintln!("{path}: script failed to load: {e}");
            broken = true;
            continue;
        }
        let report = analyze(&mut session.kb);
        if json {
            // Machine mode: diagnostics only, one JSON object per line,
            // no per-file banner (the span names the subject).
            print!("{}", report.render_json_lines());
        } else if !quiet || !report.passes(deny) {
            println!("== {path}");
            println!("{}", report.render());
        }
        if !report.passes(deny) {
            failed = true;
        }
    }
    if let Some(path) = metrics {
        if let Err(e) = std::fs::write(&path, classic::obs::render_all_prometheus()) {
            eprintln!("{path}: cannot write metrics: {e}");
            broken = true;
        }
        let json_path = format!("{path}.json");
        if let Err(e) = std::fs::write(&json_path, classic::obs::render_all_json()) {
            eprintln!("{json_path}: cannot write metrics: {e}");
            broken = true;
        }
    }
    if let Some(path) = trace_out {
        let traces = classic::obs::all_traces();
        if let Err(e) = std::fs::write(&path, classic::obs::render_chrome_trace(&traces)) {
            eprintln!("{path}: cannot write trace dump: {e}");
            broken = true;
        }
    }
    if broken {
        ExitCode::from(2)
    } else if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
