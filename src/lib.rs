//! # classic
//!
//! A from-scratch Rust reproduction of the CLASSIC structural data model:
//!
//! > A. Borgida, R. J. Brachman, D. L. McGuinness, L. A. Resnick.
//! > *CLASSIC: A Structural Data Model for Objects.* SIGMOD 1989.
//!
//! CLASSIC is an object data model built on a single compositional
//! language of *structured descriptions* that serves as schema definition
//! language, update language, query language, and answer language at
//! once. It maintains a potentially *incomplete* model of the world (open
//! world, no closed-world assumption), actively derives new facts
//! (recognition, propagation, forward-chaining rules), and keeps every
//! inference tractable by deliberately limiting the description language
//! (no `OR`, no `NOT`, identity-only enumerations and tests).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`] | description language, normalization, subsumption, taxonomy |
//! | [`kb`] | individuals, assertions, propagation, rules, integrity |
//! | [`query`] | retrieval, open-world answer modes, intensional answers |
//! | [`lang`] | surface syntax: lexer, parser, command evaluator |
//! | [`rel`] | relational view + closed-world baseline (paper §3.5.2) |
//! | [`store`] | operation-log persistence in the surface syntax |
//! | [`ingest`] | streaming CSV/JSON bulk load + starter-TBox inference |
//! | [`server`] | multi-tenant TCP/HTTP front: surface syntax as wire protocol |
//! | [`analyze`] | static schema/KB lint: incoherence, cycles, rule analysis |
//! | [`obs`] | tracing spans, metrics registry, flight recorder, exposition |
//!
//! ## Quickstart
//!
//! ```
//! use classic::kb::Kb;
//! use classic::lang::{run_script, Outcome};
//!
//! let mut kb = Kb::new();
//! let out = run_script(&mut kb, r#"
//!     (define-role enrolled-at)
//!     (define-concept PERSON (PRIMITIVE THING person))
//!     (define-concept STUDENT (AND PERSON (AT-LEAST 1 enrolled-at)))
//!     (create-ind Rocky)
//!     (assert-ind Rocky PERSON)
//!     (assert-ind Rocky (AT-LEAST 1 enrolled-at))
//!     (retrieve STUDENT)
//! "#).unwrap();
//! // Rocky was *recognized* as a STUDENT — nothing ever asserted it.
//! assert_eq!(out.last().unwrap(), &Outcome::Individuals(vec!["Rocky".into()]));
//! ```
//!
//! See `examples/` for the paper's full scenarios and DESIGN.md /
//! EXPERIMENTS.md for the reproduction methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use classic_analyze as analyze;
pub use classic_core as core;
pub use classic_ingest as ingest;
pub use classic_kb as kb;
pub use classic_lang as lang;
pub use classic_obs as obs;
pub use classic_query as query;
pub use classic_rel as rel;
pub use classic_server as server;
pub use classic_store as store;

// Flat re-exports of the types almost every user touches.
pub use classic_core::{
    Clash, ClassicError, Concept, HostValue, IndRef, Layer, NormalForm, Result,
};
pub use classic_kb::{AssertReport, IndId, Kb};
#[allow(deprecated)]
pub use classic_query::{ask_description, ask_necessary_set, possible, retrieve};
pub use classic_query::{Answer, MarkedQuery, Query};
