//! A computer-configuration knowledge base with `TEST` concepts.
//!
//! The paper mentions "a computer configuration task we have recently
//! undertaken, with a CLASSIC database representing the parts inventory"
//! as the application that proved the `TEST` escape hatch "pragmatically
//! useful" (§2.1.4). This example models a parts inventory: host-valued
//! attributes (wattage, RAM sizes), `TEST` concepts for ranges (the
//! paper's original motivation: "integer ranges, limited-precision
//! numbers, limited-length strings"), closure-based capacity checks, and
//! integrity rejection of invalid configurations.
//!
//! Run with: `cargo run --example configurator`

use classic::core::TestArg;
use classic::{Concept, HostValue, IndRef, Kb};

fn main() {
    let mut kb = Kb::new();

    // ---- host-language test functions (§2.1.4) ---------------------------
    // "a host-language-specific procedure of one argument that returns
    // true if and only if" — here, wattage/RAM sanity ranges.
    let watts_ok = kb.register_test("watts-in-range", |arg| match arg {
        TestArg::Host(HostValue::Int(w)) => (100..=1600).contains(w),
        _ => false,
    });
    let ram_stick_ok = kb.register_test("ram-stick-size", |arg| match arg {
        TestArg::Host(HostValue::Int(gb)) => [4, 8, 16, 32, 64].contains(gb),
        _ => false,
    });

    // ---- schema -----------------------------------------------------------
    kb.define_role("wattage").expect("fresh");
    kb.define_role("ram-gb").expect("fresh");
    kb.define_role("slot").expect("fresh");
    kb.define_role("psu").expect("fresh");
    let wattage = kb.schema().symbols.find_role("wattage").expect("r");
    let ram_gb = kb.schema().symbols.find_role("ram-gb").expect("r");
    let slot = kb.schema().symbols.find_role("slot").expect("r");
    let psu = kb.schema().symbols.find_role("psu").expect("r");

    kb.define_concept("PART", Concept::primitive(Concept::thing(), "part"))
        .expect("fresh");
    let part = Concept::Name(kb.schema().symbols.find_concept("PART").expect("c"));
    // Disjoint part kinds (§3.4 idiom).
    for kind in ["POWER-SUPPLY", "RAM-MODULE", "MOTHERBOARD"] {
        kb.define_concept(
            kind,
            Concept::disjoint_primitive(part.clone(), "part-kind", &kind.to_lowercase()),
        )
        .expect("fresh");
    }
    let power_supply = Concept::Name(kb.schema().symbols.find_concept("POWER-SUPPLY").expect("c"));
    let ram_module = Concept::Name(kb.schema().symbols.find_concept("RAM-MODULE").expect("c"));
    let motherboard = Concept::Name(kb.schema().symbols.find_concept("MOTHERBOARD").expect("c"));

    // EVEN-INTEGER-style TEST composition (§2.1.4):
    // a VALID-PSU is a power supply whose wattage is an in-range integer.
    kb.define_concept(
        "VALID-PSU",
        Concept::and([
            power_supply.clone(),
            Concept::exactly(1, wattage),
            Concept::all(
                wattage,
                Concept::and([
                    Concept::Builtin(classic::Layer::Host(Some(
                        classic::core::HostClass::Integer,
                    ))),
                    Concept::Test(watts_ok),
                ]),
            ),
        ]),
    )
    .expect("fresh");
    kb.define_concept(
        "VALID-RAM",
        Concept::and([
            ram_module.clone(),
            Concept::exactly(1, ram_gb),
            Concept::all(ram_gb, Concept::Test(ram_stick_ok)),
        ]),
    )
    .expect("fresh");
    // A dual-slot motherboard: exactly two RAM slots, each a valid module.
    kb.define_concept(
        "POPULATED-BOARD",
        Concept::and([
            motherboard.clone(),
            Concept::exactly(2, slot),
            Concept::all(
                slot,
                Concept::Name(kb.schema().symbols.find_concept("VALID-RAM").expect("c")),
            ),
            Concept::exactly(1, psu),
            Concept::all(
                psu,
                Concept::Name(kb.schema().symbols.find_concept("VALID-PSU").expect("c")),
            ),
        ]),
    )
    .expect("fresh");

    // ---- inventory ----------------------------------------------------------
    kb.create_ind("psu-750").expect("fresh");
    kb.assert_ind("psu-750", &power_supply).expect("ok");
    kb.assert_ind(
        "psu-750",
        &Concept::and([
            Concept::Fills(wattage, vec![IndRef::Host(HostValue::Int(750))]),
            Concept::Close(wattage),
        ]),
    )
    .expect("ok");
    for (name, gb) in [("dimm-a", 16), ("dimm-b", 16)] {
        kb.create_ind(name).expect("fresh");
        kb.assert_ind(name, &ram_module).expect("ok");
        kb.assert_ind(
            name,
            &Concept::and([
                Concept::Fills(ram_gb, vec![IndRef::Host(HostValue::Int(gb))]),
                Concept::Close(ram_gb),
            ]),
        )
        .expect("ok");
    }

    // TESTs act as procedural recognizers: psu-750 is a VALID-PSU without
    // anyone asserting it.
    let valid_psu = kb.schema().symbols.find_concept("VALID-PSU").expect("c");
    let psu_id = kb
        .ind_id(kb.schema().symbols.find_individual("psu-750").expect("i"))
        .expect("exists");
    assert!(kb.is_instance_of(psu_id, valid_psu).expect("defined"));
    println!("psu-750 recognized as VALID-PSU via the wattage TEST");

    // ---- build a configuration --------------------------------------------
    kb.create_ind("board-1").expect("fresh");
    kb.assert_ind("board-1", &motherboard).expect("ok");
    let dimm_a = IndRef::Classic(kb.schema_mut().symbols.individual("dimm-a"));
    let dimm_b = IndRef::Classic(kb.schema_mut().symbols.individual("dimm-b"));
    let psu_ref = IndRef::Classic(kb.schema_mut().symbols.individual("psu-750"));
    kb.assert_ind(
        "board-1",
        &Concept::and([
            Concept::Fills(slot, vec![dimm_a, dimm_b]),
            Concept::Close(slot),
            Concept::Fills(psu, vec![psu_ref]),
            Concept::Close(psu),
        ]),
    )
    .expect("ok");
    let populated = kb
        .schema()
        .symbols
        .find_concept("POPULATED-BOARD")
        .expect("c");
    let board = kb
        .ind_id(kb.schema().symbols.find_individual("board-1").expect("i"))
        .expect("exists");
    assert!(kb.is_instance_of(board, populated).expect("defined"));
    println!("board-1 recognized as POPULATED-BOARD (closure + per-filler tests)");

    // ---- invalid parts are caught ------------------------------------------
    // An out-of-range PSU cannot be *asserted* valid: the TEST refutes it.
    kb.create_ind("psu-9000").expect("fresh");
    kb.assert_ind("psu-9000", &power_supply).expect("ok");
    kb.assert_ind(
        "psu-9000",
        &Concept::and([
            Concept::Fills(wattage, vec![IndRef::Host(HostValue::Int(9000))]),
            Concept::Close(wattage),
        ]),
    )
    .expect("recording the wattage is fine");
    let err = kb
        .assert_ind("psu-9000", &Concept::Name(valid_psu))
        .expect_err("9000W fails the range test");
    println!("psu-9000 as VALID-PSU rejected: {err}");
    // A third DIMM in a dual-slot board violates the closed role.
    let dimm_c = IndRef::Classic(kb.schema_mut().symbols.individual("dimm-c"));
    let err = kb
        .assert_ind("board-1", &Concept::Fills(slot, vec![dimm_c.clone()]))
        .expect_err("slots are closed at two");
    println!("third DIMM rejected: {err}");

    // ---- hypothetical reasoning ---------------------------------------------
    // The configurator's working question: "could this part still go in?"
    // what_if runs the full propagation and rolls back unconditionally.
    let err = kb
        .what_if("board-1", &Concept::Fills(slot, vec![dimm_c]))
        .expect_err("hypothetically rejected too");
    println!("what-if third DIMM: {err} (database untouched)");
    let report = kb
        .what_if("board-1", &Concept::AtMost(1, psu))
        .expect("tightening the PSU bound would be fine");
    println!(
        "what-if AT-MOST 1 psu: would be accepted ({} propagation steps), database untouched",
        report.steps
    );
    // And the explanation facility narrates recognition:
    let e = kb.explain_membership(board, populated).expect("defined");
    print!(
        "why is board-1 a POPULATED-BOARD?
{}",
        e.render()
    );
    println!("configurator OK");
}
