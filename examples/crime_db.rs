//! The paper's §4 law-enforcement example, end to end.
//!
//! "A typical situation where one starts out with an incomplete view of
//! the actual events, and incrementally fleshes out the details of the
//! crime": open-world evidence accumulation, on-the-fly schema extension
//! (the `heard-speaking` clue), co-reference deduction for domestic
//! crimes, heuristic rules about typical suspects, and the three answer
//! modes (known / possible / intensional description).
//!
//! Run with: `cargo run --example crime_db`

use classic::lang::{run_script, AspectValue, Outcome};
use classic::{Concept, Kb, MarkedQuery, Query};

fn main() {
    let mut kb = Kb::new();

    // ---- schema: CRIME and DOMESTIC-CRIME exactly as in §4 --------------
    run_script(
        &mut kb,
        r#"
        (define-role perpetrator)
        (define-role victim)
        (define-attribute site)
        (define-attribute domicile)
        (define-role jobs)
        (define-role typical-suspect)

        (define-concept PERSON (PRIMITIVE THING person))
        (define-concept ADULT  (PRIMITIVE PERSON adult))
        (define-concept CRIME
          (PRIMITIVE (AND (AT-LEAST 1 perpetrator)
                          (ALL perpetrator PERSON)
                          (AT-LEAST 1 victim)
                          (AT-LEAST 1 site)
                          (AT-MOST 1 site))
                     crime))
        ; "a crime perpetrated at the domicile of the (single) perpetrator"
        (define-concept DOMESTIC-CRIME
          (AND CRIME (AT-MOST 1 perpetrator)
               (SAME-AS (site) (perpetrator domicile))))
        ; "domestic criminals are typically adults, and have no jobs"
        (assert-rule DOMESTIC-CRIME
          (ALL typical-suspect (AND ADULT (AT-MOST 0 jobs))))
        "#,
    )
    .expect("schema");

    // DOMESTIC-CRIME has *exactly one* perpetrator — inferred, not stated.
    let dc = kb
        .schema()
        .symbols
        .find_concept("DOMESTIC-CRIME")
        .expect("defined");
    let perp = kb.schema().symbols.find_role("perpetrator").expect("role");
    let nf = kb.schema().concept_nf(dc).expect("defined");
    let rr = nf.roles.get(&perp).expect("restricted");
    println!(
        "inferred: DOMESTIC-CRIME has between {} and {:?} perpetrators",
        rr.at_least, rr.at_most
    );
    assert_eq!((rr.at_least, rr.at_most), (1, Some(1)));

    // ---- crime23: evidence accumulates (§4) ------------------------------
    run_script(
        &mut kb,
        r#"
        (create-ind crime23)
        (assert-ind crime23 CRIME)
        ; A witness saw a group of criminals leaving…
        (assert-ind crime23 (AT-LEAST 2 perpetrator))
        "#,
    )
    .expect("evidence");
    // …and they were overheard speaking Ruritanian. The schema grows on
    // the fly: "it seems hard to anticipate all possible kinds of clues".
    kb.define_role("heard-speaking")
        .expect("new role, new clue");
    run_script(
        &mut kb,
        "(assert-ind crime23
            (ALL perpetrator (ALL heard-speaking (ONE-OF Ruritanian))))",
    )
    .expect("clue recorded");

    // crime23 cannot be domestic (two perpetrators ≥ 2 > 1).
    let err = run_script(&mut kb, "(assert-ind crime23 DOMESTIC-CRIME)")
        .expect_err("contradicts AT-LEAST 2");
    println!("crime23 as DOMESTIC-CRIME rejected: {err}");

    // ---- crime15: the co-reference deduction ------------------------------
    run_script(
        &mut kb,
        r#"
        (create-ind crime15)
        (assert-ind crime15 CRIME)
        (assert-ind crime15 (FILLS perpetrator Wife-1))
        (assert-ind crime15 (FILLS site Home-1))
        (assert-ind crime15 DOMESTIC-CRIME)
        "#,
    )
    .expect("domestic crime recorded");
    // SAME-AS (site) (perpetrator domicile) derived Wife-1's domicile.
    let out = run_script(&mut kb, "(ind-aspect Wife-1 FILLS domicile)").expect("aspect");
    println!(
        "derived: Wife-1's domicile = {:?}",
        out.last().expect("one")
    );
    assert_eq!(
        out.last().expect("one"),
        &Outcome::Aspect(AspectValue::Values(vec!["Home-1".into()]))
    );

    // ---- answer modes (§3.5.3) --------------------------------------------
    let crime = Concept::Name(kb.schema().symbols.find_concept("CRIME").expect("c"));
    let q = Concept::and([crime, Concept::AtLeast(1, perp)]);
    let known = Query::concept(q.clone())
        .run(&mut kb)
        .expect("query")
        .into_known()
        .expect("known answer")
        .known
        .len();
    let poss = Query::concept(q)
        .possible()
        .run(&mut kb)
        .expect("query")
        .into_possible()
        .expect("possible answer")
        .len();
    println!("crimes with ≥1 perpetrator: known={known} possible={poss}");
    // Both crimes are *known* answers although crime23's perpetrators are
    // still unidentified — existence is part of CRIME's definition.
    assert_eq!(known, 2);

    // Intensional answer: what do we know about crime15's typical suspect,
    // "even when their properties are not fully known in the database"?
    let suspect = kb
        .schema()
        .symbols
        .find_role("typical-suspect")
        .expect("role");
    let crime15 = kb.schema().symbols.find_individual("crime15").expect("i");
    let q = MarkedQuery {
        concept: Concept::one_of([classic::IndRef::Classic(crime15)]),
        marker: vec![suspect],
    };
    let desc = Query::marked(q)
        .description()
        .run(&mut kb)
        .expect("description")
        .into_description()
        .expect("intensional answer");
    println!(
        "necessary description of crime15's typical suspect:\n  {}",
        desc.to_concept(kb.schema()).display(&kb.schema().symbols)
    );
    // The rule contributed ADULT and joblessness.
    let adult = kb.schema().symbols.find_concept("ADULT").expect("c");
    let adult_nf = kb.schema().concept_nf(adult).expect("defined");
    assert!(classic::core::subsumes(adult_nf, &desc));

    // ---- durable epilogue: the case file, persisted -----------------------
    // The same instrumentation covers the storage layer. Persisting the
    // open cases through a `DurableKb` makes every told fact a durable
    // log append; the store's series land in the same per-KB registry
    // that `(obs-stats)` renders.
    let dir = std::env::temp_dir().join(format!("classic-crime-db-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let mut case_file =
        classic::store::DurableKb::open(dir.join("case-file.classic"), |_| {}).expect("store");
    case_file.define_role("perpetrator").expect("role");
    case_file.define_role("typical-suspect").expect("role");
    case_file
        .define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
        .expect("concept");
    let symbols = &case_file.kb().expect("fully hydrated").schema().symbols;
    let person = symbols.find_concept("PERSON").expect("c");
    let perp = symbols.find_role("perpetrator").expect("r");
    let suspect_of = symbols.find_role("typical-suspect").expect("r");
    case_file
        .define_concept(
            "CRIME",
            Concept::and([
                Concept::AtLeast(1, perp),
                Concept::all(perp, Concept::Name(person)),
            ]),
        )
        .expect("concept");
    case_file
        .assert_rule("CRIME", Concept::AtLeast(1, suspect_of))
        .expect("rule");
    let crime = case_file
        .kb()
        .expect("fully hydrated")
        .schema()
        .symbols
        .find_concept("CRIME")
        .expect("c");
    for i in 0..4 {
        let name = format!("case-{i}");
        case_file.create_ind(&name).expect("ind");
        case_file
            .assert_ind(&name, &Concept::Name(crime))
            .expect("told");
        let wife = format!("suspect-{i}");
        case_file.create_ind(&wife).expect("ind");
        let filler = classic::IndRef::Classic(
            case_file
                .kb_mut_for_queries()
                .schema_mut()
                .symbols
                .individual(&wife),
        );
        case_file
            .assert_ind(&name, &Concept::Fills(perp, vec![filler]))
            .expect("told");
    }

    // ---- what the engine did, by the numbers ------------------------------
    // Every hot path above left a metric trail; `(obs-stats)` in the REPL
    // prints the same exposition. The durable KB's registry shows the
    // store-layer series alongside the reasoning ones.
    let out = run_script(&mut kb, "(obs-stats)").expect("obs");
    if let Some(Outcome::Description(prom)) = out.last() {
        println!("\nengine metrics (Prometheus exposition):");
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            println!("  {line}");
        }
    }
    let snap = case_file.kb().expect("fully hydrated").metrics().snapshot();
    let prom = classic::obs::render_prometheus(&snap);
    let json = classic::obs::render_json(&snap);
    println!("\ncase-file store metrics (Prometheus exposition):");
    for line in prom.lines().filter(|l| !l.starts_with('#')) {
        println!("  {line}");
    }
    // Acceptance: a real workload moves subsumption, propagation, and
    // store-append series, visible in both exposition formats.
    for series in [
        "classic_subsume_tests_total",
        "classic_propagation_steps_total",
        "classic_store_appends_total",
    ] {
        let v = snap
            .counters
            .get(series)
            .unwrap_or_else(|| panic!("{series} not registered"))
            .1;
        assert!(v > 0, "{series} must be nonzero after the workload");
        assert!(prom.contains(&format!("{series} {v}")), "{series} in text");
        assert!(
            json.contains(&format!("\"{series}\":{v}")),
            "{series} in json"
        );
    }
    println!("crime_db OK");
}
