//! The paper's §4 law-enforcement example, end to end.
//!
//! "A typical situation where one starts out with an incomplete view of
//! the actual events, and incrementally fleshes out the details of the
//! crime": open-world evidence accumulation, on-the-fly schema extension
//! (the `heard-speaking` clue), co-reference deduction for domestic
//! crimes, heuristic rules about typical suspects, and the three answer
//! modes (known / possible / intensional description).
//!
//! Run with: `cargo run --example crime_db`

use classic::lang::{run_script, Outcome};
use classic::{Concept, Kb, MarkedQuery, Query};

fn main() {
    let mut kb = Kb::new();

    // ---- schema: CRIME and DOMESTIC-CRIME exactly as in §4 --------------
    run_script(
        &mut kb,
        r#"
        (define-role perpetrator)
        (define-role victim)
        (define-attribute site)
        (define-attribute domicile)
        (define-role jobs)
        (define-role typical-suspect)

        (define-concept PERSON (PRIMITIVE THING person))
        (define-concept ADULT  (PRIMITIVE PERSON adult))
        (define-concept CRIME
          (PRIMITIVE (AND (AT-LEAST 1 perpetrator)
                          (ALL perpetrator PERSON)
                          (AT-LEAST 1 victim)
                          (AT-LEAST 1 site)
                          (AT-MOST 1 site))
                     crime))
        ; "a crime perpetrated at the domicile of the (single) perpetrator"
        (define-concept DOMESTIC-CRIME
          (AND CRIME (AT-MOST 1 perpetrator)
               (SAME-AS (site) (perpetrator domicile))))
        ; "domestic criminals are typically adults, and have no jobs"
        (assert-rule DOMESTIC-CRIME
          (ALL typical-suspect (AND ADULT (AT-MOST 0 jobs))))
        "#,
    )
    .expect("schema");

    // DOMESTIC-CRIME has *exactly one* perpetrator — inferred, not stated.
    let dc = kb
        .schema()
        .symbols
        .find_concept("DOMESTIC-CRIME")
        .expect("defined");
    let perp = kb.schema().symbols.find_role("perpetrator").expect("role");
    let nf = kb.schema().concept_nf(dc).expect("defined");
    let rr = nf.roles.get(&perp).expect("restricted");
    println!(
        "inferred: DOMESTIC-CRIME has between {} and {:?} perpetrators",
        rr.at_least, rr.at_most
    );
    assert_eq!((rr.at_least, rr.at_most), (1, Some(1)));

    // ---- crime23: evidence accumulates (§4) ------------------------------
    run_script(
        &mut kb,
        r#"
        (create-ind crime23)
        (assert-ind crime23 CRIME)
        ; A witness saw a group of criminals leaving…
        (assert-ind crime23 (AT-LEAST 2 perpetrator))
        "#,
    )
    .expect("evidence");
    // …and they were overheard speaking Ruritanian. The schema grows on
    // the fly: "it seems hard to anticipate all possible kinds of clues".
    kb.define_role("heard-speaking")
        .expect("new role, new clue");
    run_script(
        &mut kb,
        "(assert-ind crime23
            (ALL perpetrator (ALL heard-speaking (ONE-OF Ruritanian))))",
    )
    .expect("clue recorded");

    // crime23 cannot be domestic (two perpetrators ≥ 2 > 1).
    let err = run_script(&mut kb, "(assert-ind crime23 DOMESTIC-CRIME)")
        .expect_err("contradicts AT-LEAST 2");
    println!("crime23 as DOMESTIC-CRIME rejected: {err}");

    // ---- crime15: the co-reference deduction ------------------------------
    run_script(
        &mut kb,
        r#"
        (create-ind crime15)
        (assert-ind crime15 CRIME)
        (assert-ind crime15 (FILLS perpetrator Wife-1))
        (assert-ind crime15 (FILLS site Home-1))
        (assert-ind crime15 DOMESTIC-CRIME)
        "#,
    )
    .expect("domestic crime recorded");
    // SAME-AS (site) (perpetrator domicile) derived Wife-1's domicile.
    let out = run_script(&mut kb, "(ind-aspect Wife-1 FILLS domicile)").expect("aspect");
    println!(
        "derived: Wife-1's domicile = {:?}",
        out.last().expect("one")
    );
    assert_eq!(
        out.last().expect("one"),
        &Outcome::Aspect("(Home-1)".into())
    );

    // ---- answer modes (§3.5.3) --------------------------------------------
    let crime = Concept::Name(kb.schema().symbols.find_concept("CRIME").expect("c"));
    let q = Concept::and([crime, Concept::AtLeast(1, perp)]);
    let known = Query::concept(q.clone())
        .run(&mut kb)
        .expect("query")
        .into_known()
        .expect("known answer")
        .known
        .len();
    let poss = Query::concept(q)
        .possible()
        .run(&mut kb)
        .expect("query")
        .into_possible()
        .expect("possible answer")
        .len();
    println!("crimes with ≥1 perpetrator: known={known} possible={poss}");
    // Both crimes are *known* answers although crime23's perpetrators are
    // still unidentified — existence is part of CRIME's definition.
    assert_eq!(known, 2);

    // Intensional answer: what do we know about crime15's typical suspect,
    // "even when their properties are not fully known in the database"?
    let suspect = kb
        .schema()
        .symbols
        .find_role("typical-suspect")
        .expect("role");
    let crime15 = kb.schema().symbols.find_individual("crime15").expect("i");
    let q = MarkedQuery {
        concept: Concept::one_of([classic::IndRef::Classic(crime15)]),
        marker: vec![suspect],
    };
    let desc = Query::marked(q)
        .description()
        .run(&mut kb)
        .expect("description")
        .into_description()
        .expect("intensional answer");
    println!(
        "necessary description of crime15's typical suspect:\n  {}",
        desc.to_concept(kb.schema()).display(&kb.schema().symbols)
    );
    // The rule contributed ADULT and joblessness.
    let adult = kb.schema().symbols.find_concept("ADULT").expect("c");
    let adult_nf = kb.schema().concept_nf(adult).expect("defined");
    assert!(classic::core::subsumes(adult_nf, &desc));
    println!("crime_db OK");
}
