//! Quickstart: the paper's §2–3 walk-through with Rocky and RICH-KID.
//!
//! Demonstrates the core loop of a CLASSIC database: define a schema of
//! structured concepts, assert partial information about individuals
//! under the open-world assumption, and watch the database *recognize*
//! memberships and propagate consequences that were never asserted.
//!
//! Run with: `cargo run --example quickstart`

use classic::core::aspect::AspectKind;
use classic::lang::{run_script, Outcome};
use classic::Kb;

fn main() {
    let mut kb = Kb::new();

    // ---- schema (§3.1): roles and structured concept definitions -------
    run_script(
        &mut kb,
        r#"
        (define-role thing-driven)
        (define-role enrolled-at)
        (define-role maker)

        (define-concept PERSON          (PRIMITIVE THING person))
        (define-concept CAR             (PRIMITIVE THING car))
        (define-concept EXPENSIVE-THING (PRIMITIVE THING expensive))
        ; §2.1.1: a primitive with a non-trivial parent.
        (define-concept SPORTS-CAR
            (PRIMITIVE (AND CAR EXPENSIVE-THING) sports-car))
        ; §3.3: STUDENT is *defined* — membership is recognizable.
        (define-concept STUDENT (AND PERSON (AT-LEAST 1 enrolled-at)))
        ; §3.1: "a student that drives at least two things, all of which
        ; are sports cars".
        (define-concept RICH-KID
            (AND STUDENT (ALL thing-driven SPORTS-CAR)
                 (AT-LEAST 2 thing-driven)))
        "#,
    )
    .expect("schema definition");
    println!("schema: {} concepts defined", kb.schema().concept_count());

    // ---- updates (§3.2): incremental, partial information ---------------
    run_script(
        &mut kb,
        r#"
        (create-ind Rocky)
        (assert-ind Rocky PERSON)
        ; Rocky is enrolled somewhere — we don't know where.
        (assert-ind Rocky (AT-LEAST 1 enrolled-at))
        ; Everything Rocky drives is a sports car — without knowing what.
        (assert-ind Rocky (ALL thing-driven SPORTS-CAR))
        (assert-ind Rocky (AT-LEAST 2 thing-driven))
        "#,
    )
    .expect("assertions accepted");

    // ---- recognition (§3.3): never asserted, still known ----------------
    let answer = run_script(&mut kb, "(retrieve RICH-KID)").expect("query");
    println!("rich kids: {:?}", answer.last().expect("one outcome"));
    assert_eq!(
        answer.last().expect("one"),
        &Outcome::Individuals(vec!["Rocky".into()])
    );

    // ---- propagation: fillers inherit the ALL restriction ---------------
    run_script(&mut kb, "(assert-ind Rocky (FILLS thing-driven Volvo-17))").expect("accepted");
    let answer = run_script(&mut kb, "(retrieve SPORTS-CAR)").expect("query");
    println!("recognized sports cars: {:?}", answer.last().expect("one"));

    // ---- closure deduction (§3.3) ----------------------------------------
    run_script(&mut kb, "(assert-ind Rocky (AT-MOST 2 thing-driven))").expect("accepted");
    run_script(
        &mut kb,
        "(assert-ind Rocky (FILLS thing-driven Ferrari-512))",
    )
    .expect("accepted");
    // AT-MOST 2 reached by two known fillers ⇒ the role closes itself.
    let rocky = kb
        .ind_id(kb.schema().symbols.find_individual("Rocky").expect("ind"))
        .expect("exists");
    let driven = kb.schema().symbols.find_role("thing-driven").expect("role");
    println!(
        "thing-driven closed after 2 fillers under AT-MOST 2: {:?}",
        kb.ind_aspect(rocky, AspectKind::Close, Some(driven))
    );

    // ---- integrity (§3.4): contradictions are rejected atomically -------
    let err = run_script(&mut kb, "(assert-ind Rocky (FILLS thing-driven Trabant-1))")
        .expect_err("a third filler violates the closed role");
    println!("third filler rejected: {err}");
    assert_eq!(kb.ind(rocky).fillers(driven).len(), 2, "rolled back");

    // ---- descriptive answers (§3.5.3) ------------------------------------
    let out = run_script(&mut kb, "(describe Rocky)").expect("describe");
    if let Some(Outcome::Description(d)) = out.last() {
        println!("everything known about Rocky:\n  {d}");
    }
    println!("quickstart OK");
}
