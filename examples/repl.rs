//! An interactive CLASSIC shell over the surface syntax.
//!
//! The paper's whole interface — DDL, DML, rules, queries, introspection —
//! "appears here as a short appendix" (§6); this REPL exposes it all:
//!
//! ```text
//! cargo run --example repl
//! classic> (define-role thing-driven)
//! classic> (define-concept CAR (PRIMITIVE THING car))
//! classic> (create-ind Rocky)
//! classic> (assert-ind Rocky (FILLS thing-driven Volvo-17))
//! classic> (retrieve (AT-LEAST 1 thing-driven))
//! Rocky
//! classic> (describe Rocky)
//! ...
//! ```
//!
//! Pass a file path to run a script instead: `cargo run --example repl -- setup.classic`.
//! `:quit` exits, `:stats` prints engine counters, `:snapshot` dumps the
//! database as a replayable script.

use classic::lang::Session;
use std::io::{BufRead, Write};

fn main() {
    let mut session = Session::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = args.first() {
        let script = std::fs::read_to_string(path).expect("script file readable");
        match session.run(&script) {
            Ok(outcomes) => {
                for o in &outcomes {
                    println!("{}", o.render_text());
                }
                println!("; script OK ({} commands)", outcomes.len());
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("CLASSIC shell — s-expression commands, :help for meta commands");
    let stdin = std::io::stdin();
    let mut line = String::new();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("classic> ");
        } else {
            print!("    ...> ");
        }
        std::io::stdout().flush().expect("stdout");
        line.clear();
        if stdin.lock().read_line(&mut line).expect("stdin") == 0 {
            break;
        }
        let trimmed = line.trim();
        match trimmed {
            ":quit" | ":q" => break,
            ":help" => {
                println!(
                    "commands: (define-role r) (define-attribute r) \
                     (define-concept N expr) (create-ind I)\n  (assert-ind I expr) \
                     (assert-rule N expr) (retract-ind I expr) (retract-rule N expr)\n  \
                     (retract-rule 7) (list-rules) \
                     (define-macro M (p…) expr) (retrieve q)\n  \
                     (possible q) (ask-description q) (ask-necessary-set q) \
                     (subsumes? a b) (equivalent? a b)\n  (disjoint? a b) (classify expr) \
                     (concept-aspect N KIND [r]) (ind-aspect I KIND [r])\n  (describe I) \
                     (why? I N) (what-if? I expr) (provenance I) \
                     (parents N) (children N) (lint-kb)\n  \
                     (obs-stats [json]) (obs-trace op|*) (obs-reset) (obs-level [off|counters|full])\n\
                     (obs-sample [rate]) (obs-slowlog [n])\n\
                     meta: :stats :snapshot :quit"
                );
                continue;
            }
            ":stats" => {
                let kb = &session.kb;
                println!(
                    "; individuals={} concepts={} taxonomy-nodes={} rules={} macros={}",
                    kb.ind_count(),
                    kb.schema().concept_count(),
                    kb.taxonomy().len(),
                    kb.active_rules().count(),
                    session.macro_names().len()
                );
                println!(
                    "; assertions={} propagation-steps={} rules-fired={} instance-tests={}",
                    kb.stats.assertions.get(),
                    kb.stats.propagation_steps.get(),
                    kb.stats.rules_fired.get(),
                    kb.stats.instance_tests.get()
                );
                continue;
            }
            ":snapshot" => {
                print!("{}", classic::store::snapshot_to_string(&session.kb));
                continue;
            }
            "" => continue,
            _ => {}
        }
        buffer.push_str(&line);
        // Keep reading until parentheses balance.
        let opens = buffer.matches('(').count();
        let closes = buffer.matches(')').count();
        if opens > closes {
            continue;
        }
        let input = std::mem::take(&mut buffer);
        match session.run(&input) {
            Ok(outcomes) => {
                // One renderer for the shell and the wire protocol:
                // Outcome::render_text is what the server's JSON mirrors.
                for o in &outcomes {
                    println!("{}", o.render_text());
                }
            }
            Err(e) => eprintln!("rejected: {e}"),
        }
    }
    println!("bye");
}
