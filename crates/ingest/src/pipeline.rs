//! The ingest pipeline: input bytes → an [`IngestPlan`] → a loaded KB.
//!
//! Planning is pure (no KB, no I/O beyond the reader): it parses the
//! input, normalizes cells, names the row individuals, optionally
//! infers the starter TBox, and packages everything as the same
//! `(bulk-load …)` [`BulkSpec`] the surface language produces — so the
//! wire form, the CLI, and `POST /ingest` all converge on one loading
//! path. Execution then happens either in memory ([`run_in_memory`]) or
//! against a durable store ([`run_durable`], the segment-tier
//! [`DurableKb::bulk_load`] with its compaction commit point).

use crate::infer::{infer_tbox, profile_columns};
use crate::normalize::{concept_name, normalize_cell, normalize_json, render_lit, role_name};
use crate::{csv, json_rows};
use classic_core::error::{ClassicError, Result};
use classic_kb::{BulkReport, Kb};
use classic_lang::{resolve_bulk_rows, BulkRowSpec, BulkSpec, Command, Expr, IndLit};
use classic_store::{BulkLoadReport, DurableKb};
use std::collections::BTreeMap;
use std::io::BufRead;

/// Input syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// RFC-4180-style CSV with a header record.
    Csv,
    /// NDJSON or a top-level array of flat objects.
    Json,
}

impl Format {
    /// Guess from a file name; defaults to CSV.
    pub fn from_path(path: &str) -> Format {
        let lower = path.to_ascii_lowercase();
        if lower.ends_with(".json") || lower.ends_with(".ndjson") || lower.ends_with(".jsonl") {
            Format::Json
        } else {
            Format::Csv
        }
    }

    /// Parse a `csv`/`json` selector.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "csv" => Some(Format::Csv),
            "json" | "ndjson" => Some(Format::Json),
            _ => None,
        }
    }
}

/// What to ingest and how.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Input syntax.
    pub format: Format,
    /// Entity name; becomes the concept name (uppercased) and the
    /// row-name prefix (lowercased).
    pub entity: String,
    /// Column whose value names each row's individual (matched against
    /// the raw header or its sanitized role name). `None` numbers rows
    /// `entity-1`, `entity-2`, ….
    pub id_column: Option<String>,
    /// Infer a starter TBox (`define-role`s + a `define-concept` the
    /// rows are loaded `into`). Without it, the plan still defines the
    /// columns' roles but asserts no concept membership.
    pub infer: bool,
    /// Where the input came from, for report/script headers.
    pub source: String,
}

/// Everything needed to execute one ingest, in either tier.
#[derive(Debug, Clone)]
pub struct IngestPlan {
    /// The (uppercased) entity concept name.
    pub entity: String,
    /// Schema preamble: `define-role`s, plus the inferred
    /// `define-concept` when inference is on.
    pub ddl: Vec<Command>,
    /// The preamble as a surface-language script (what `--emit-tbox`
    /// writes and `classic-analyze` lints); the `ddl` commands are
    /// parsed from exactly this text.
    pub tbox_script: String,
    /// Inference notes: widened/dropped constraints.
    pub notes: Vec<String>,
    /// The rows, as the surface `(bulk-load …)` form would carry them.
    pub spec: BulkSpec,
}

impl IngestPlan {
    /// Rows in the plan.
    pub fn rows(&self) -> usize {
        self.spec.rows.len()
    }
}

/// Read, normalize, name, and (optionally) infer — everything except
/// touching a KB.
pub fn plan(reader: impl BufRead, opts: &IngestOptions) -> Result<IngestPlan> {
    let (raw_columns, rows) = read_normalized(reader, opts.format)?;
    let entity = concept_name(&opts.entity);
    let (columns, named_rows) = name_rows(&raw_columns, rows, opts, &entity)?;

    let roles: Vec<String> = columns.iter().map(|c| role_name(c)).collect();
    let mut seen: BTreeMap<&str, &str> = BTreeMap::new();
    for (role, col) in roles.iter().zip(&columns) {
        if let Some(first) = seen.insert(role.as_str(), col.as_str()) {
            return Err(ClassicError::Malformed(format!(
                "columns {first:?} and {col:?} both map to role {role:?}"
            )));
        }
    }

    let (tbox_script, notes, into) = if opts.infer {
        let values: Vec<Vec<Option<IndLit>>> = named_rows.iter().map(|(_, v)| v.clone()).collect();
        let profiles = profile_columns(&roles, &values);
        let tbox = infer_tbox(&entity, &opts.source, &profiles);
        (tbox.script, tbox.notes, Some(Expr::Name(entity.clone())))
    } else {
        let mut script = format!("; roles for columns of {}\n", opts.source);
        for role in &roles {
            script.push_str(&format!("(define-role {role})\n"));
        }
        (script, Vec::new(), None)
    };
    let ddl = classic_lang::parse(&tbox_script)?;

    let spec = BulkSpec {
        into,
        roles,
        rows: named_rows
            .into_iter()
            .map(|(name, values)| BulkRowSpec { name, values })
            .collect(),
    };
    Ok(IngestPlan {
        entity,
        ddl,
        tbox_script,
        notes,
        spec,
    })
}

/// One normalized row: each cell is `Some(literal)` or missing.
type Cells = Vec<Option<IndLit>>;

/// Rows after naming: each carries the individual name it will assert.
type NamedRows = Vec<(String, Cells)>;

/// Parse the input and normalize every cell to an operand.
fn read_normalized(reader: impl BufRead, format: Format) -> Result<(Vec<String>, Vec<Cells>)> {
    match format {
        Format::Csv => {
            let (header, records) = csv::read_table(reader)?;
            let rows = records
                .iter()
                .map(|rec| rec.iter().map(|cell| normalize_cell(cell)).collect())
                .collect();
            Ok((header, rows))
        }
        Format::Json => {
            let (columns, objects) = json_rows::read_rows(reader)?;
            let mut rows = Vec::with_capacity(objects.len());
            for obj in &objects {
                let mut row = Vec::with_capacity(columns.len());
                for col in &columns {
                    row.push(match obj.get(col) {
                        Some(v) => normalize_json(v)?,
                        None => None,
                    });
                }
                rows.push(row);
            }
            Ok((columns, rows))
        }
    }
}

/// Assign each row its individual name; with an id column, that column
/// is consumed (it names the individual rather than filling a role) and
/// ids must be present and unique.
fn name_rows(
    columns: &[String],
    rows: Vec<Cells>,
    opts: &IngestOptions,
    entity: &str,
) -> Result<(Vec<String>, NamedRows)> {
    let prefix = entity.to_ascii_lowercase();
    let Some(id_col) = &opts.id_column else {
        let named = rows
            .into_iter()
            .enumerate()
            .map(|(ix, values)| (format!("{prefix}-{}", ix + 1), values))
            .collect();
        return Ok((columns.to_vec(), named));
    };
    let id_ix = columns
        .iter()
        .position(|c| c == id_col || role_name(c) == role_name(id_col))
        .ok_or_else(|| {
            ClassicError::Malformed(format!(
                "id column {id_col:?} is not in the header {columns:?}"
            ))
        })?;
    let kept: Vec<String> = columns
        .iter()
        .enumerate()
        .filter(|(ix, _)| *ix != id_ix)
        .map(|(_, c)| c.clone())
        .collect();
    let mut named = Vec::with_capacity(rows.len());
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for (ix, mut values) in rows.into_iter().enumerate() {
        let id = values.remove(id_ix);
        let Some(id) = id else {
            return Err(ClassicError::Malformed(format!(
                "row {}: missing id in column {id_col:?}",
                ix + 1
            )));
        };
        let name = crate::normalize::sanitize_symbol(&match &id {
            IndLit::Name(n) | IndLit::Str(n) | IndLit::Sym(n) => n.clone(),
            other => render_lit(other),
        });
        if let Some(first) = seen.insert(name.clone(), ix + 1) {
            return Err(ClassicError::Malformed(format!(
                "duplicate id {name:?}: rows {first} and {} (ids must be unique; \
                 use the (bulk-load …) form directly to merge facts into one individual)",
                ix + 1
            )));
        }
        named.push((name, values));
    }
    Ok((kept, named))
}

/// Execute a plan against a fresh in-memory KB (the `--dry-run`
/// default of the CLI): apply the DDL, then one bulk assert.
pub fn run_in_memory(plan: &IngestPlan) -> Result<(Kb, BulkReport)> {
    let mut kb = Kb::new();
    for cmd in &plan.ddl {
        classic_lang::eval(&mut kb, cmd)?;
    }
    let rows = resolve_bulk_rows(&mut kb, &plan.spec)?;
    let report = kb.bulk_assert(&rows);
    Ok((kb, report))
}

/// Execute a plan against a durable store through the segment-tier
/// [`DurableKb::bulk_load`]. Schema definitions already present in the
/// store are skipped (first ingest wins; a changed inference for an
/// existing concept name is *not* applied silently — re-define it
/// explicitly if that is what you want).
pub fn run_durable(store: &mut DurableKb, plan: &IngestPlan) -> Result<BulkLoadReport> {
    let kb = store.kb_mut_for_queries();
    let ddl: Vec<Command> = plan
        .ddl
        .iter()
        .filter(|cmd| match cmd {
            Command::DefineRole(name) | Command::DefineAttribute(name) => {
                kb.schema().symbols.find_role(name).is_none()
            }
            Command::DefineConcept(name, _) => kb.schema().symbols.find_concept(name).is_none(),
            _ => true,
        })
        .cloned()
        .collect();
    store.bulk_load(&ddl, &plan.spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use classic_lang::Outcome;

    fn opts(format: Format, infer: bool, id: Option<&str>) -> IngestOptions {
        IngestOptions {
            format,
            entity: "person".into(),
            id_column: id.map(str::to_string),
            infer,
            source: "test".into(),
        }
    }

    const CSV: &str = "id,name,age,team\n\
                       p1,Ada,36,blue\n\
                       p2,Grace,45,red\n\
                       p3,Annie,,blue\n\
                       p4,Jean,32,red\n";

    #[test]
    fn csv_plan_infers_and_loads() {
        let plan = plan(CSV.as_bytes(), &opts(Format::Csv, true, Some("id"))).unwrap();
        assert_eq!(plan.entity, "PERSON");
        assert_eq!(plan.spec.roles, ["name", "age", "team"]);
        assert_eq!(plan.rows(), 4);
        assert!(plan.tbox_script.contains("(ALL age INTEGER)"));
        assert!(
            plan.tbox_script
                .contains("(ALL team (ONE-OF \"blue\" \"red\"))"),
            "{}",
            plan.tbox_script
        );
        let (mut kb, report) = run_in_memory(&plan).unwrap();
        assert_eq!(report.accepted, 4);
        let out = classic_lang::run_script(&mut kb, "(retrieve PERSON)").unwrap();
        let Outcome::Individuals(names) = out.last().unwrap() else {
            panic!("expected individuals");
        };
        assert_eq!(names, &["p1", "p2", "p3", "p4"]);
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let src = "id,v\na,1\na,2\n";
        let err = plan(src.as_bytes(), &opts(Format::Csv, false, Some("id"))).unwrap_err();
        assert!(err.to_string().contains("duplicate id"), "{err}");
    }

    #[test]
    fn missing_id_is_rejected() {
        let src = "id,v\n,1\n";
        let err = plan(src.as_bytes(), &opts(Format::Csv, false, Some("id"))).unwrap_err();
        assert!(err.to_string().contains("missing id"), "{err}");
    }

    #[test]
    fn unnamed_rows_are_numbered() {
        let plan = plan("v\n1\n2\n".as_bytes(), &opts(Format::Csv, false, None)).unwrap();
        assert_eq!(plan.spec.rows[0].name, "person-1");
        assert_eq!(plan.spec.rows[1].name, "person-2");
        assert!(plan.spec.into.is_none());
    }

    #[test]
    fn mixed_type_json_column_drops_the_all_restriction() {
        let src = "{\"id\": \"a\", \"v\": 1}\n{\"id\": \"b\", \"v\": \"x\"}\n";
        let plan = plan(src.as_bytes(), &opts(Format::Json, true, Some("id"))).unwrap();
        assert!(!plan.tbox_script.contains("(ALL v"), "{}", plan.tbox_script);
        assert!(plan.notes.iter().any(|n| n.contains("mixed value types")));
        // The rows still load — only the inferred restriction is gone.
        let (_, report) = run_in_memory(&plan).unwrap();
        assert_eq!(report.accepted, 2);
    }

    #[test]
    fn colliding_sanitized_columns_are_rejected() {
        let err = plan(
            "First Name,first-name\na,b\n".as_bytes(),
            &opts(Format::Csv, false, None),
        )
        .unwrap_err();
        assert!(err.to_string().contains("both map to role"), "{err}");
    }
}
