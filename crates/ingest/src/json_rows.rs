//! JSON row input: NDJSON (one flat object per line) or a single
//! top-level array of flat objects.
//!
//! Both shapes go through the workspace's strict JSON parser
//! ([`classic_obs::Json`]). Nested arrays/objects inside a row are
//! rejected — the ingest mapping is record-shaped by design
//! (`docs/INGEST.md` §2.2). The column set is the union of keys over
//! all rows, in first-appearance order; a key absent from a row is a
//! missing value.

use classic_core::error::{ClassicError, Result};
use classic_obs::Json;
use std::collections::BTreeMap;
use std::io::BufRead;

/// One parsed input row: key → scalar JSON value.
pub type JsonRow = BTreeMap<String, Json>;

/// Read JSON rows and derive the column order (union of keys, in
/// first-appearance order).
pub fn read_rows<R: BufRead>(mut reader: R) -> Result<(Vec<String>, Vec<JsonRow>)> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| ClassicError::Malformed(format!("json read: {e}")))?;
    let trimmed = text.trim_start();
    let rows = if trimmed.starts_with('[') {
        array_rows(&text)?
    } else {
        ndjson_rows(&text)?
    };
    let mut columns: Vec<String> = Vec::new();
    for row in &rows {
        for key in row.keys() {
            if !columns.iter().any(|c| c == key) {
                columns.push(key.clone());
            }
        }
    }
    Ok((columns, rows))
}

fn array_rows(text: &str) -> Result<Vec<JsonRow>> {
    let doc = Json::parse(text).map_err(|e| ClassicError::Malformed(format!("json: {e}")))?;
    let Json::Arr(items) = doc else {
        return Err(ClassicError::Malformed(
            "json: expected a top-level array of objects".into(),
        ));
    };
    items
        .into_iter()
        .enumerate()
        .map(|(ix, item)| as_flat_object(item, ix + 1))
        .collect()
}

fn ndjson_rows(text: &str) -> Result<Vec<JsonRow>> {
    let mut rows = Vec::new();
    for (ix, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc = Json::parse(line)
            .map_err(|e| ClassicError::Malformed(format!("json line {}: {e}", ix + 1)))?;
        rows.push(as_flat_object(doc, ix + 1)?);
    }
    Ok(rows)
}

fn as_flat_object(v: Json, row: usize) -> Result<JsonRow> {
    let Json::Obj(map) = v else {
        return Err(ClassicError::Malformed(format!(
            "json row {row}: expected an object, got a {}",
            kind(&v)
        )));
    };
    for (key, value) in &map {
        if matches!(value, Json::Arr(_) | Json::Obj(_)) {
            return Err(ClassicError::Malformed(format!(
                "json row {row}, key {key:?}: nested {} values are not ingestable \
                 (rows must be flat objects of scalars)",
                kind(value)
            )));
        }
    }
    Ok(map)
}

fn kind(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "boolean",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndjson_union_columns_in_first_seen_order() {
        let src = "{\"b\":1,\"a\":2}\n\n{\"a\":3,\"c\":null}\n";
        let (cols, rows) = read_rows(src.as_bytes()).unwrap();
        // BTreeMap iteration is sorted per row; union keeps first-seen
        // row-by-row order.
        assert_eq!(cols, ["a", "b", "c"]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn array_form_parses() {
        let (cols, rows) = read_rows("[{\"x\": 1}, {\"x\": 2}]".as_bytes()).unwrap();
        assert_eq!(cols, ["x"]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn nested_values_are_rejected() {
        let err = read_rows("{\"x\": [1,2]}".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("nested"), "{err}");
        let err = read_rows("[{\"x\": {\"y\": 1}}]".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("nested"), "{err}");
    }

    #[test]
    fn non_object_rows_are_rejected() {
        let err = read_rows("[1, 2]".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected an object"), "{err}");
    }
}
