//! The normalizer: raw cells → surface-language operands.
//!
//! Every value that enters the KB through ingest is first mapped to an
//! [`IndLit`] (the parser's individual-literal AST), so the bulk path
//! sees exactly what a hand-written `(bulk-load …)` form would contain
//! and every downstream renderer (store log lines, segment snapshots)
//! round-trips. The mapping rules are normative in `docs/INGEST.md` §3:
//!
//! | cell | operand |
//! |------|---------|
//! | empty / `_` / JSON `null` | missing (no assertion) |
//! | `@Name` | reference to the CLASSIC individual `Name` |
//! | integer lexeme / integral JSON number | host integer |
//! | float lexeme / JSON number | host float |
//! | `true` / `false` (JSON boolean or bare CSV cell) | host symbol |
//! | anything else | host string |

use classic_core::error::{ClassicError, Result};
use classic_core::F64;
use classic_lang::IndLit;
use classic_obs::Json;

/// Map a raw CSV cell to an operand, `None` meaning "missing".
pub fn normalize_cell(raw: &str) -> Option<IndLit> {
    let cell = raw.trim();
    if cell.is_empty() || cell == "_" {
        return None;
    }
    if let Some(name) = cell.strip_prefix('@') {
        return Some(IndLit::Name(sanitize_symbol(name)));
    }
    if cell == "true" || cell == "false" {
        return Some(IndLit::Sym(cell.to_string()));
    }
    if let Ok(i) = cell.parse::<i64>() {
        return Some(IndLit::Int(i));
    }
    if let Ok(v) = cell.parse::<f64>() {
        if v.is_finite() {
            return Some(IndLit::Float(F64(v)));
        }
    }
    Some(IndLit::Str(cell.to_string()))
}

/// Map a scalar JSON value to an operand. JSON strings are *not*
/// re-lexed as numbers — a quoted `"42"` stays a string; only the
/// `@Name` reference convention carries over from CSV.
pub fn normalize_json(v: &Json) -> Result<Option<IndLit>> {
    Ok(match v {
        Json::Null => None,
        Json::Bool(b) => Some(IndLit::Sym(b.to_string())),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() <= (i64::MAX as f64 / 2.0) {
                Some(IndLit::Int(*n as i64))
            } else if n.is_finite() {
                Some(IndLit::Float(F64(*n)))
            } else {
                return Err(ClassicError::Malformed("json number is not finite".into()));
            }
        }
        Json::Str(s) => match s.strip_prefix('@') {
            Some(name) => Some(IndLit::Name(sanitize_symbol(name))),
            None => Some(IndLit::Str(s.clone())),
        },
        Json::Arr(_) | Json::Obj(_) => {
            return Err(ClassicError::Malformed(
                "nested json values are not ingestable".into(),
            ))
        }
    })
}

/// Render an operand as re-parseable surface text (the same conventions
/// the store's log renderer uses: strings quoted, symbols ticked,
/// floats always with a dot).
pub fn render_lit(lit: &IndLit) -> String {
    match lit {
        IndLit::Name(n) => n.clone(),
        IndLit::Int(i) => i.to_string(),
        IndLit::Float(v) => v.to_string(),
        IndLit::Str(s) => format!("{s:?}"),
        IndLit::Sym(s) => format!("'{s}"),
    }
}

/// Coerce arbitrary external text into a valid surface-language symbol:
/// `[A-Za-z0-9_-]` survives, every other character maps to `-`, and a
/// leading character that would lex as something else (digit, `-`, or
/// nothing at all) gets an `x` prefix. Identity on names that are
/// already valid symbols, so `@Rocky` references the individual a
/// script would call `Rocky`.
pub fn sanitize_symbol(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
            out.push(c);
        } else {
            out.push('-');
        }
    }
    match out.chars().next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => out,
        _ => format!("x{out}"),
    }
}

/// A role name from a column header: sanitized and lowercased (CLASSIC
/// convention: roles lowercase, concepts uppercase).
pub fn role_name(column: &str) -> String {
    sanitize_symbol(column).to_ascii_lowercase()
}

/// A concept name for the entity: sanitized and uppercased.
pub fn concept_name(entity: &str) -> String {
    sanitize_symbol(entity).to_ascii_uppercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_map_per_the_normative_table() {
        assert_eq!(normalize_cell(""), None);
        assert_eq!(normalize_cell("  _  "), None);
        assert_eq!(normalize_cell("42"), Some(IndLit::Int(42)));
        assert_eq!(normalize_cell("-7"), Some(IndLit::Int(-7)));
        assert_eq!(normalize_cell("2.5"), Some(IndLit::Float(F64(2.5))));
        assert_eq!(normalize_cell("true"), Some(IndLit::Sym("true".into())));
        assert_eq!(
            normalize_cell("@Volvo 17"),
            Some(IndLit::Name("Volvo-17".into()))
        );
        assert_eq!(
            normalize_cell("Murray Hill"),
            Some(IndLit::Str("Murray Hill".into()))
        );
    }

    #[test]
    fn json_strings_stay_strings() {
        assert_eq!(
            normalize_json(&Json::Str("42".into())).unwrap(),
            Some(IndLit::Str("42".into()))
        );
        assert_eq!(
            normalize_json(&Json::Num(3.0)).unwrap(),
            Some(IndLit::Int(3))
        );
        assert_eq!(
            normalize_json(&Json::Num(3.5)).unwrap(),
            Some(IndLit::Float(F64(3.5)))
        );
        assert_eq!(normalize_json(&Json::Null).unwrap(), None);
    }

    #[test]
    fn sanitized_symbols_lex_as_symbols() {
        assert_eq!(sanitize_symbol("Rocky"), "Rocky");
        assert_eq!(sanitize_symbol("first name"), "first-name");
        assert_eq!(sanitize_symbol("42nd"), "x42nd");
        assert_eq!(sanitize_symbol(""), "x");
        assert_eq!(role_name("First Name"), "first-name");
        assert_eq!(concept_name("employee"), "EMPLOYEE");
    }
}
