//! A streaming RFC-4180-style CSV reader.
//!
//! The reader pulls one *record* at a time from any [`BufRead`] — it
//! never materializes the input text — and handles quoted fields with
//! embedded commas, quotes (`""` escape), and newlines. The first
//! record is the header. Every subsequent record must have exactly the
//! header's arity: a ragged row is a hard, positioned error, because a
//! silently padded or truncated row would corrupt the column profiles
//! the schema inference is built on (`docs/INGEST.md` §2.1).

use classic_core::error::{ClassicError, Result};
use std::io::BufRead;

/// Incremental CSV record reader over any buffered byte source.
pub struct CsvReader<R> {
    inner: R,
    /// 1-based line the byte cursor is on.
    line: usize,
    /// 1-based line the most recently returned record started on.
    record_line: usize,
    done: bool,
}

impl<R: BufRead> CsvReader<R> {
    /// Wrap `inner`; reading starts at line 1.
    pub fn new(inner: R) -> CsvReader<R> {
        CsvReader {
            inner,
            line: 1,
            record_line: 1,
            done: false,
        }
    }

    fn err(&self, msg: impl std::fmt::Display) -> ClassicError {
        ClassicError::Malformed(format!("csv line {}: {msg}", self.line))
    }

    fn next_byte(&mut self) -> Result<Option<u8>> {
        let buf = self
            .inner
            .fill_buf()
            .map_err(|e| ClassicError::Malformed(format!("csv read: {e}")))?;
        match buf.first().copied() {
            Some(b) => {
                self.inner.consume(1);
                Ok(Some(b))
            }
            None => Ok(None),
        }
    }

    /// Read the next record, or `None` at end of input. Blank records
    /// (empty lines) are skipped.
    pub fn next_record(&mut self) -> Result<Option<Vec<String>>> {
        loop {
            if self.done {
                return Ok(None);
            }
            let record = self.raw_record()?;
            match record {
                None => return Ok(None),
                // A lone empty field is what an empty line parses to.
                Some(fields) if fields.len() == 1 && fields[0].is_empty() => continue,
                Some(fields) => return Ok(Some(fields)),
            }
        }
    }

    fn raw_record(&mut self) -> Result<Option<Vec<String>>> {
        let start_line = self.line;
        self.record_line = start_line;
        let mut fields: Vec<String> = Vec::new();
        let mut field: Vec<u8> = Vec::new();
        let mut quoted = false;
        let mut saw_any = false;
        loop {
            let Some(b) = self.next_byte()? else {
                if quoted {
                    self.line = start_line;
                    return Err(self.err("unterminated quoted field"));
                }
                if !saw_any {
                    self.done = true;
                    return Ok(None);
                }
                fields.push(take_utf8(&mut field, start_line)?);
                self.done = true;
                return Ok(Some(fields));
            };
            saw_any = true;
            if quoted {
                match b {
                    b'"' => {
                        // `""` is an escaped quote; a lone `"` closes.
                        if self.peek()? == Some(b'"') {
                            self.next_byte()?;
                            field.push(b'"');
                        } else {
                            quoted = false;
                        }
                    }
                    b'\n' => {
                        self.line += 1;
                        field.push(b);
                    }
                    _ => field.push(b),
                }
                continue;
            }
            match b {
                b',' => fields.push(take_utf8(&mut field, start_line)?),
                b'\r' => {
                    // CRLF (or a stray CR) ends the record like LF.
                    if self.peek()? == Some(b'\n') {
                        self.next_byte()?;
                    }
                    self.line += 1;
                    fields.push(take_utf8(&mut field, start_line)?);
                    return Ok(Some(fields));
                }
                b'\n' => {
                    self.line += 1;
                    fields.push(take_utf8(&mut field, start_line)?);
                    return Ok(Some(fields));
                }
                b'"' if field.is_empty() => quoted = true,
                _ => field.push(b),
            }
        }
    }

    fn peek(&mut self) -> Result<Option<u8>> {
        let buf = self
            .inner
            .fill_buf()
            .map_err(|e| ClassicError::Malformed(format!("csv read: {e}")))?;
        Ok(buf.first().copied())
    }
}

fn take_utf8(field: &mut Vec<u8>, line: usize) -> Result<String> {
    String::from_utf8(std::mem::take(field))
        .map_err(|_| ClassicError::Malformed(format!("csv line {line}: field is not valid UTF-8")))
}

/// Read an entire CSV table: the header record plus every data record,
/// enforcing rectangularity against the header's arity.
pub fn read_table<R: BufRead>(reader: R) -> Result<(Vec<String>, Vec<Vec<String>>)> {
    let mut csv = CsvReader::new(reader);
    let Some(header) = csv.next_record()? else {
        return Err(ClassicError::Malformed(
            "csv input is empty (no header record)".into(),
        ));
    };
    let mut rows = Vec::new();
    while let Some(record) = csv.next_record()? {
        if record.len() != header.len() {
            return Err(ClassicError::Malformed(format!(
                "csv line {}: ragged row has {} fields, header has {}",
                csv.record_line,
                record.len(),
                header.len()
            )));
        }
        rows.push(record);
    }
    Ok((header, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(src: &str) -> (Vec<String>, Vec<Vec<String>>) {
        read_table(src.as_bytes()).unwrap()
    }

    #[test]
    fn quoted_fields_with_commas_quotes_and_newlines() {
        let (header, rows) = table("a,b\n\"x,1\",\"say \"\"hi\"\"\"\n\"two\nlines\",y\n");
        assert_eq!(header, ["a", "b"]);
        assert_eq!(rows[0], ["x,1", "say \"hi\""]);
        assert_eq!(rows[1], ["two\nlines", "y"]);
    }

    #[test]
    fn crlf_and_missing_trailing_newline() {
        let (_, rows) = table("h1,h2\r\n1,2\r\n3,4");
        assert_eq!(rows, [["1", "2"], ["3", "4"]]);
    }

    #[test]
    fn ragged_row_is_a_positioned_error() {
        let err = read_table("a,b\n1,2\n3\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("ragged") && msg.contains("line 3"), "{msg}");
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let err = read_table("a\n\"open\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unterminated"), "{err}");
    }
}
