//! Starter-TBox inference from value shapes.
//!
//! Per column, the analyzer profiles the observed operands and derives
//! candidate constraints:
//!
//! * `(ALL r T)` with `T` a built-in host concept (`INTEGER`, `FLOAT`,
//!   `NUMBER`, `STRING`, `SYMBOL`) or `CLASSIC-THING` for `@ref`
//!   columns;
//! * `(ALL r (ONE-OF v…))` when the column is a low-cardinality
//!   enumeration with repetition evidence;
//! * `(AT-MOST 1 r)` always (cells are single-valued);
//! * `(AT-LEAST 1 r)` when no row left the column missing.
//!
//! The type-conflict resolver widens before it drops: integers mixed
//! with floats widen to `NUMBER`; host values mixed with `@refs`, or
//! numbers mixed with strings/symbols, drop the `ALL` restriction
//! entirely (recorded as a note). All of this is *heuristic induction
//! from observed data* — the constraints are descriptions the sample
//! happens to satisfy, not guarantees about the domain; the soundness
//! caveats are normative in `docs/INGEST.md` §4.

use crate::normalize::render_lit;
use classic_lang::IndLit;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Enumerations larger than this are never inferred as `ONE-OF`.
pub const ONE_OF_CAP: usize = 8;

/// A `ONE-OF` needs at least this many observations per distinct value
/// on average (repetition evidence — 3 rows with 3 distinct values is a
/// key column, not an enumeration).
pub const ONE_OF_MIN_SUPPORT: usize = 2;

/// Observed shape of one column.
#[derive(Debug, Clone)]
pub struct ColumnProfile {
    /// The column's role name.
    pub role: String,
    /// Rows with a value in this column.
    pub present: usize,
    /// Rows without one.
    pub missing: usize,
    /// Host integers seen.
    pub ints: usize,
    /// Host floats seen.
    pub floats: usize,
    /// Host strings seen.
    pub strs: usize,
    /// Host symbols seen.
    pub syms: usize,
    /// `@Name` references seen.
    pub refs: usize,
    /// Distinct rendered values; `None` once [`ONE_OF_CAP`] overflowed.
    pub distinct: Option<BTreeSet<String>>,
}

impl ColumnProfile {
    fn new(role: &str) -> ColumnProfile {
        ColumnProfile {
            role: role.to_string(),
            present: 0,
            missing: 0,
            ints: 0,
            floats: 0,
            strs: 0,
            syms: 0,
            refs: 0,
            distinct: Some(BTreeSet::new()),
        }
    }

    fn observe(&mut self, value: Option<&IndLit>) {
        let Some(lit) = value else {
            self.missing += 1;
            return;
        };
        self.present += 1;
        match lit {
            IndLit::Name(_) => self.refs += 1,
            IndLit::Int(_) => self.ints += 1,
            IndLit::Float(_) => self.floats += 1,
            IndLit::Str(_) => self.strs += 1,
            IndLit::Sym(_) => self.syms += 1,
        }
        if let Some(set) = &mut self.distinct {
            set.insert(render_lit(lit));
            if set.len() > ONE_OF_CAP {
                self.distinct = None;
            }
        }
    }

    /// The widened value type for an `(ALL r T)` candidate, or `None`
    /// if the column is empty or the types are irreconcilable.
    pub fn value_type(&self) -> Option<&'static str> {
        if self.present == 0 {
            return None;
        }
        let host = self.ints + self.floats + self.strs + self.syms;
        if self.refs > 0 {
            return (host == 0).then_some("CLASSIC-THING");
        }
        match (self.ints, self.floats, self.strs, self.syms) {
            (_, 0, 0, 0) => Some("INTEGER"),
            (0, _, 0, 0) => Some("FLOAT"),
            (_, _, 0, 0) => Some("NUMBER"),
            (0, 0, _, 0) => Some("STRING"),
            (0, 0, 0, _) => Some("SYMBOL"),
            _ => None,
        }
    }

    /// The `ONE-OF` enumeration candidate, if the column qualifies:
    /// host values only, at most [`ONE_OF_CAP`] distinct, and at least
    /// [`ONE_OF_MIN_SUPPORT`] observations per distinct value.
    pub fn one_of(&self) -> Option<Vec<String>> {
        let set = self.distinct.as_ref()?;
        if self.refs > 0 || set.is_empty() || self.present < set.len() * ONE_OF_MIN_SUPPORT {
            return None;
        }
        Some(set.iter().cloned().collect())
    }
}

/// Profile every column over the normalized rows (each row is
/// index-aligned with `roles`).
pub fn profile_columns(roles: &[String], rows: &[Vec<Option<IndLit>>]) -> Vec<ColumnProfile> {
    let mut profiles: Vec<ColumnProfile> = roles.iter().map(|r| ColumnProfile::new(r)).collect();
    for row in rows {
        for (col, profile) in profiles.iter_mut().enumerate() {
            profile.observe(row.get(col).and_then(|v| v.as_ref()));
        }
    }
    profiles
}

/// An inferred starter TBox, rendered as a surface-language script (the
/// single source of truth: the pipeline parses this same text into DDL
/// commands, and `--emit-tbox` writes it for `classic-analyze`).
#[derive(Debug, Clone)]
pub struct InferredTbox {
    /// The entity concept's name.
    pub entity: String,
    /// `define-role` + `define-concept` script.
    pub script: String,
    /// Human-readable notes: widened or dropped constraints.
    pub notes: Vec<String>,
}

/// Derive the starter TBox for `entity` from the column profiles.
pub fn infer_tbox(entity: &str, source: &str, profiles: &[ColumnProfile]) -> InferredTbox {
    let mut notes = Vec::new();
    let mut script = format!(
        "; starter TBox inferred by classic-ingest from {source}\n\
         ; Data-derived constraints; soundness caveats: docs/INGEST.md section 4.\n"
    );
    for p in profiles {
        let _ = writeln!(script, "(define-role {})", p.role);
    }
    let _ = writeln!(script, "(define-concept {entity}");
    let _ = write!(
        script,
        "  (AND (PRIMITIVE THING {})",
        entity.to_ascii_lowercase()
    );
    for p in profiles {
        let restriction = match p.one_of() {
            Some(values) => Some(format!("(ALL {} (ONE-OF {}))", p.role, values.join(" "))),
            None => match p.value_type() {
                Some(ty) => Some(format!("(ALL {} {ty})", p.role)),
                None => {
                    if p.present > 0 {
                        notes.push(format!(
                            "column {}: mixed value types ({} ints, {} floats, {} strings, \
                             {} symbols, {} refs) — no ALL restriction inferred",
                            p.role, p.ints, p.floats, p.strs, p.syms, p.refs
                        ));
                    } else {
                        notes.push(format!(
                            "column {}: no values observed — no ALL restriction inferred",
                            p.role
                        ));
                    }
                    None
                }
            },
        };
        if let Some(r) = restriction {
            let _ = write!(script, "\n       {r}");
        }
        let _ = write!(script, "\n       (AT-MOST 1 {})", p.role);
        if p.missing == 0 && p.present > 0 {
            let _ = write!(script, "\n       (AT-LEAST 1 {})", p.role);
        }
    }
    script.push_str("))\n");
    InferredTbox {
        entity: entity.to_string(),
        script,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit_rows(cols: &[&str], rows: &[&[Option<IndLit>]]) -> Vec<ColumnProfile> {
        let roles: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
        let rows: Vec<Vec<Option<IndLit>>> = rows.iter().map(|r| r.to_vec()).collect();
        profile_columns(&roles, &rows)
    }

    #[test]
    fn widening_and_conflicts() {
        let p = lit_rows(
            &["age", "score", "tag"],
            &[
                &[
                    Some(IndLit::Int(1)),
                    Some(IndLit::Int(2)),
                    Some(IndLit::Str("a".into())),
                ],
                &[
                    Some(IndLit::Int(3)),
                    Some(IndLit::Float(classic_core::F64(0.5))),
                    Some(IndLit::Int(7)),
                ],
            ],
        );
        assert_eq!(p[0].value_type(), Some("INTEGER"));
        assert_eq!(p[1].value_type(), Some("NUMBER")); // int ∪ float widens
        assert_eq!(p[2].value_type(), None); // string ∪ int drops
    }

    #[test]
    fn one_of_needs_low_cardinality_and_support() {
        let red = || Some(IndLit::Sym("red".into()));
        let blue = || Some(IndLit::Sym("blue".into()));
        let p = lit_rows(
            &["color"],
            &[&[red()], &[blue()], &[red()], &[blue()], &[red()]],
        );
        assert_eq!(p[0].one_of().unwrap(), ["'blue", "'red"]);
        // Two rows, two distinct values: a key, not an enumeration.
        let p = lit_rows(&["id"], &[&[red()], &[blue()]]);
        assert_eq!(p[0].one_of(), None);
    }

    #[test]
    fn inferred_script_parses_and_carries_bounds() {
        let p = lit_rows(
            &["age", "nick"],
            &[
                &[Some(IndLit::Int(30)), None],
                &[Some(IndLit::Int(40)), Some(IndLit::Str("Mo".into()))],
            ],
        );
        let tbox = infer_tbox("PERSON", "test", &p);
        let cmds = classic_lang::parse(&tbox.script).unwrap();
        assert_eq!(cmds.len(), 3); // two roles + the concept
        assert!(tbox.script.contains("(ALL age INTEGER)"), "{}", tbox.script);
        assert!(tbox.script.contains("(AT-LEAST 1 age)"), "{}", tbox.script);
        assert!(
            !tbox.script.contains("(AT-LEAST 1 nick)"),
            "{}",
            tbox.script
        );
    }
}
