//! # classic-ingest
//!
//! Streaming bulk ingest for the CLASSIC reproduction: CSV/JSON rows →
//! individuals with `FILLS` assertions, with an optional *starter-TBox
//! inference* pass that derives `ALL` / `AT-MOST` / `ONE-OF` / `AT-LEAST`
//! candidates from the observed value shapes.
//!
//! The paper frames the object base as populated from real application
//! data (§1), but the surface language's write path is one assertion at
//! a time. This crate is the batch on-ramp: it normalizes record-shaped
//! external data into the same `(bulk-load …)` form the surface
//! language accepts, defers rule firing and realization to batched
//! fixpoints ([`classic_kb::Kb::bulk_assert`]), and commits through the
//! store's segment tier ([`classic_store::DurableKb::bulk_load`]) —
//! one compaction instead of one fsync per row.
//!
//! Normative pipeline spec: `docs/INGEST.md`. CLI: `classic-ingest`.
//!
//! ```
//! use classic_ingest::{plan, run_in_memory, Format, IngestOptions};
//!
//! let csv = "id,species,legs\nrex,dog,4\ntweety,bird,2\npolly,bird,2\n";
//! let plan = plan(csv.as_bytes(), &IngestOptions {
//!     format: Format::Csv,
//!     entity: "pet".into(),
//!     id_column: Some("id".into()),
//!     infer: true,
//!     source: "doc-example".into(),
//! })?;
//! assert!(plan.tbox_script.contains("(define-concept PET"));
//! let (kb, report) = run_in_memory(&plan)?;
//! assert_eq!(report.accepted, 3);
//! assert_eq!(kb.ind_count(), 3);
//! # Ok::<(), classic_core::ClassicError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod csv;
pub mod infer;
pub mod json_rows;
pub mod normalize;
pub mod pipeline;

pub use infer::{ColumnProfile, InferredTbox, ONE_OF_CAP};
pub use pipeline::{plan, run_durable, run_in_memory, Format, IngestOptions, IngestPlan};
