//! `classic-ingest` — bulk-load CSV/JSON rows into a CLASSIC KB.
//!
//! ```text
//! classic-ingest [options] <input.csv|input.json|->
//!   --format csv|json     input syntax (default: from the extension)
//!   --entity NAME         entity/concept name (default: the file stem)
//!   --id COL              use column COL as each row's individual name
//!   --infer               infer a starter TBox and load rows into it
//!   --emit-tbox PATH      write the schema preamble as a .classic script
//!   --store PATH          load into the durable store at PATH (kb.log);
//!                         without it the load runs in memory (dry run)
//!   --json                machine-readable report on stdout
//!   --quiet               suppress the text report
//! ```
//!
//! Exit codes: `0` every row accepted; `1` some rows rejected (the
//! accepted ones are still committed); `2` malformed input or options
//! (nothing committed).

use classic_ingest::{plan, run_durable, run_in_memory, Format, IngestOptions};
use classic_kb::BulkReport;
use classic_store::DurableKb;
use std::io::{BufRead, BufReader};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: classic-ingest [--format csv|json] [--entity NAME] [--id COL] [--infer] \
         [--emit-tbox PATH] [--store PATH] [--json] [--quiet] <input|->"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut format: Option<Format> = None;
    let mut entity: Option<String> = None;
    let mut id_column: Option<String> = None;
    let mut infer = false;
    let mut emit_tbox: Option<String> = None;
    let mut store_path: Option<String> = None;
    let mut json = false;
    let mut quiet = false;
    let mut input: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref().and_then(Format::parse) {
                Some(f) => format = Some(f),
                None => return usage(),
            },
            "--entity" => match args.next() {
                Some(v) => entity = Some(v),
                None => return usage(),
            },
            "--id" => match args.next() {
                Some(v) => id_column = Some(v),
                None => return usage(),
            },
            "--infer" => infer = true,
            "--emit-tbox" => match args.next() {
                Some(v) => emit_tbox = Some(v),
                None => return usage(),
            },
            "--store" => match args.next() {
                Some(v) => store_path = Some(v),
                None => return usage(),
            },
            "--json" => json = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with("--") => return usage(),
            _ => {
                if input.replace(arg).is_some() {
                    return usage();
                }
            }
        }
    }
    let Some(input) = input else { return usage() };

    let entity = entity.unwrap_or_else(|| {
        std::path::Path::new(&input)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .filter(|s| !s.is_empty() && s != "-")
            .unwrap_or_else(|| "record".into())
    });
    let opts = IngestOptions {
        format: format.unwrap_or_else(|| Format::from_path(&input)),
        entity,
        id_column,
        infer,
        source: input.clone(),
    };

    let plan = {
        let reader: Box<dyn BufRead> = if input == "-" {
            Box::new(BufReader::new(std::io::stdin()))
        } else {
            match std::fs::File::open(&input) {
                Ok(f) => Box::new(BufReader::new(f)),
                Err(e) => {
                    eprintln!("{input}: cannot open: {e}");
                    return ExitCode::from(2);
                }
            }
        };
        match plan(reader, &opts) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{input}: {e}");
                return ExitCode::from(2);
            }
        }
    };
    if let Some(path) = &emit_tbox {
        if let Err(e) = std::fs::write(path, &plan.tbox_script) {
            eprintln!("{path}: cannot write: {e}");
            return ExitCode::from(2);
        }
    }

    let (report, generation) = match &store_path {
        Some(path) => {
            if let Some(dir) = std::path::Path::new(path)
                .parent()
                .filter(|d| !d.as_os_str().is_empty())
            {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("{path}: cannot create store directory: {e}");
                    return ExitCode::from(2);
                }
            }
            let mut store = match DurableKb::open(path, |_| {}) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{path}: cannot open store: {e}");
                    return ExitCode::from(2);
                }
            };
            match run_durable(&mut store, &plan) {
                Ok(out) => (out.report, Some(out.generation)),
                Err(e) => {
                    eprintln!("{input}: ingest failed (store unchanged): {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => match run_in_memory(&plan) {
            Ok((_, report)) => (report, None),
            Err(e) => {
                eprintln!("{input}: ingest failed: {e}");
                return ExitCode::from(2);
            }
        },
    };

    if json {
        println!("{}", render_json(&plan.entity, &report, generation));
    } else if !quiet {
        render_text(
            &plan.entity,
            &plan.notes,
            &report,
            generation,
            store_path.is_none(),
        );
    }
    if report.rejected > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn render_text(
    entity: &str,
    notes: &[String],
    report: &BulkReport,
    generation: Option<u64>,
    dry: bool,
) {
    let mode = match generation {
        Some(g) => format!("committed at generation {g}"),
        None if dry => "in-memory dry run".to_string(),
        None => String::new(),
    };
    println!(
        "{entity}: {} rows, {} accepted, {} rejected, {} individuals created \
         ({} chunked fixpoints, {} sequential fallbacks) — {mode}",
        report.rows,
        report.accepted,
        report.rejected,
        report.inds_created,
        report.chunks,
        report.sequential_fallbacks,
    );
    for note in notes {
        println!("  note: {note}");
    }
    for r in &report.rejections {
        println!("  rejected row {}: {} — {}", r.row + 1, r.name, r.error);
    }
}

fn render_json(entity: &str, report: &BulkReport, generation: Option<u64>) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"entity\":{},\"rows\":{},\"accepted\":{},\"rejected\":{},\"created\":{},\
         \"chunks\":{},\"fallbacks\":{}",
        classic_obs::json_string(entity),
        report.rows,
        report.accepted,
        report.rejected,
        report.inds_created,
        report.chunks,
        report.sequential_fallbacks,
    );
    if let Some(g) = generation {
        let _ = write!(out, ",\"generation\":{g}");
    }
    out.push_str(",\"rejections\":[");
    for (ix, r) in report.rejections.iter().enumerate() {
        if ix > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"row\":{},\"name\":{},\"error\":{}}}",
            r.row,
            classic_obs::json_string(&r.name),
            classic_obs::json_string(&r.error)
        );
    }
    out.push_str("]}");
    out
}
