//! Tokenizer for the CLASSIC surface syntax.
//!
//! The concrete syntax follows the paper's parenthesized prefix notation
//! (Appendix A), uniformly s-expression shaped — including the operator
//! forms, which the paper writes with brackets (`assert-ind[Rocky, …]`)
//! and we write as `(assert-ind Rocky …)`.
//!
//! Token kinds: parentheses, bare symbols (`RICH-KID`, `thing-driven`,
//! `Rocky`), integers (`42`, `-7`), double-quoted strings with `\\`/`\"`
//! escapes, quoted symbols (`'red`) for host symbols, and the query marker
//! `?:`. Comments run from `;` to end of line.

use classic_core::error::{ClassicError, Result};
use std::fmt;

/// Source position, 1-based, for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// A bare identifier (concept, role, individual, or keyword).
    Symbol(String),
    /// A host integer literal.
    Int(i64),
    /// A host float literal, e.g. `1.5` (must contain a `.` or exponent).
    Float(classic_core::host::F64),
    /// A host string literal.
    Str(String),
    /// A quoted host symbol, `'red`.
    QuotedSym(String),
    /// The `?:` query marker (§3.5.3).
    Marker,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it started.
    pub pos: Pos,
}

/// Tokenize a complete input string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        ($c:expr) => {{
            if $c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }};
    }

    while let Some(&c) = chars.peek() {
        let pos = Pos { line, col };
        match c {
            c if c.is_whitespace() => {
                chars.next();
                bump!(c);
            }
            ';' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    bump!(c);
                    if c == '\n' {
                        break;
                    }
                }
            }
            '(' => {
                chars.next();
                bump!('(');
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    pos,
                });
            }
            ')' => {
                chars.next();
                bump!(')');
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    pos,
                });
            }
            '"' => {
                chars.next();
                bump!('"');
                let mut s = String::new();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    bump!(c);
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match chars.next() {
                            Some(e) => {
                                bump!(e);
                                s.push(match e {
                                    'n' => '\n',
                                    't' => '\t',
                                    other => other,
                                });
                            }
                            None => break,
                        },
                        other => s.push(other),
                    }
                }
                if !closed {
                    return Err(ClassicError::Malformed(format!(
                        "{pos}: unterminated string literal"
                    )));
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    pos,
                });
            }
            '\'' => {
                chars.next();
                bump!('\'');
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if is_symbol_char(c) {
                        s.push(c);
                        chars.next();
                        bump!(c);
                    } else {
                        break;
                    }
                }
                if s.is_empty() {
                    return Err(ClassicError::Malformed(format!(
                        "{pos}: empty quoted symbol"
                    )));
                }
                tokens.push(Token {
                    kind: TokenKind::QuotedSym(s),
                    pos,
                });
            }
            '?' => {
                chars.next();
                bump!('?');
                match chars.peek() {
                    Some(':') => {
                        chars.next();
                        bump!(':');
                        tokens.push(Token {
                            kind: TokenKind::Marker,
                            pos,
                        });
                    }
                    _ => {
                        return Err(ClassicError::Malformed(format!(
                            "{pos}: expected ':' after '?' (query marker is '?:')"
                        )))
                    }
                }
            }
            c if c == '-' || c.is_ascii_digit() || is_symbol_char(c) => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    // '?' may continue a symbol (`subsumes?`) but never
                    // start one (token-initial '?' is the query marker).
                    if is_symbol_char(c) || c == '?' {
                        s.push(c);
                        chars.next();
                        bump!(c);
                    } else {
                        break;
                    }
                }
                // A symbol that parses entirely as an integer is a host
                // integer literal; one that starts numerically and parses
                // as an f64 is a float (`1.5`, `-2e3`); names like
                // `Volvo-17` stay symbols.
                let numeric_start = s
                    .trim_start_matches('-')
                    .starts_with(|c: char| c.is_ascii_digit());
                let kind = if let Ok(i) = s.parse::<i64>() {
                    TokenKind::Int(i)
                } else if let Some(v) = s.parse::<f64>().ok().filter(|_| numeric_start) {
                    // `1e999` overflows f64 to infinity; accepting it
                    // would silently store `inf` as the told value.
                    if !v.is_finite() {
                        return Err(ClassicError::Malformed(format!(
                            "{pos}: float literal {s:?} overflows to a non-finite value"
                        )));
                    }
                    TokenKind::Float(classic_core::host::F64(v))
                } else {
                    TokenKind::Symbol(s)
                };
                tokens.push(Token { kind, pos });
            }
            other => {
                return Err(ClassicError::Malformed(format!(
                    "{pos}: unexpected character {other:?}"
                )))
            }
        }
    }
    Ok(tokens)
}

/// Characters permitted inside bare symbols — generous, to cover the
/// paper's identifiers (`thing-driven`, `SPORTS-CAR`, `Volvo-17`, `?:`
/// excluded).
fn is_symbol_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '-' | '_' | '+' | '*' | '/' | '.' | '!' | '<' | '>' | '=')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_expression() {
        let ks = kinds("(AND STUDENT (AT-LEAST 2 thing-driven))");
        assert_eq!(
            ks,
            vec![
                TokenKind::LParen,
                TokenKind::Symbol("AND".into()),
                TokenKind::Symbol("STUDENT".into()),
                TokenKind::LParen,
                TokenKind::Symbol("AT-LEAST".into()),
                TokenKind::Int(2),
                TokenKind::Symbol("thing-driven".into()),
                TokenKind::RParen,
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn negative_number_vs_dashed_name() {
        assert_eq!(kinds("-42"), vec![TokenKind::Int(-42)]);
        assert_eq!(
            kinds("Volvo-17"),
            vec![TokenKind::Symbol("Volvo-17".into())]
        );
    }

    #[test]
    fn float_literals() {
        use classic_core::host::F64;
        assert_eq!(kinds("1.5"), vec![TokenKind::Float(F64(1.5))]);
        assert_eq!(kinds("-0.25"), vec![TokenKind::Float(F64(-0.25))]);
        assert_eq!(kinds("2e3"), vec![TokenKind::Float(F64(2000.0))]);
        // Dotted names are still symbols.
        assert_eq!(kinds("v1.x"), vec![TokenKind::Symbol("v1.x".into())]);
    }

    #[test]
    fn overflowing_float_literals_are_rejected_with_position() {
        for src in ["1e999", "-1e999", "(FILLS price 1e999)"] {
            let err = tokenize(src).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("non-finite"), "{src}: {msg}");
            assert!(msg.contains("1e999"), "{src}: {msg}");
        }
        // Numeric-looking names are unaffected by the finiteness check.
        assert_eq!(
            kinds("Volvo-17"),
            vec![TokenKind::Symbol("Volvo-17".into())]
        );
    }

    #[test]
    fn strings_and_quoted_symbols() {
        assert_eq!(
            kinds(r#""Murray Hill" 'red"#),
            vec![
                TokenKind::Str("Murray Hill".into()),
                TokenKind::QuotedSym("red".into())
            ]
        );
        assert_eq!(
            kinds(r#""esc \" aped""#),
            vec![TokenKind::Str("esc \" aped".into())]
        );
    }

    #[test]
    fn marker_token() {
        assert_eq!(
            kinds("?:PERSON"),
            vec![TokenKind::Marker, TokenKind::Symbol("PERSON".into())]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("; a comment\nPERSON ; trailing\n"),
            vec![TokenKind::Symbol("PERSON".into())]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("(\n  PERSON\n)").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
        assert_eq!(toks[2].pos, Pos { line: 3, col: 1 });
    }

    #[test]
    fn lexer_errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("?x").is_err());
        assert!(tokenize("'").is_err());
        assert!(tokenize("#").is_err());
    }
}
