//! The macro-definition facility the paper anticipates.
//!
//! §2.1.4: "we did not define the constructor EXACTLY-ONE, which is easily
//! derivable as the AND of AT-LEAST 1 and AT-MOST 1. It is our intention
//! to add a macro-definition facility in order to allow syntactic
//! extensions such as EXACTLY-ONE, which might simplify CLASSIC
//! expressions."
//!
//! Macros are purely *syntactic*: a named template over token sequences.
//!
//! ```text
//! (define-macro EXACTLY-ONE (r) (AND (AT-LEAST 1 r) (AT-MOST 1 r)))
//! (define-concept SOLO-DRIVER (AND PERSON (EXACTLY-ONE thing-driven)))
//! ```
//!
//! A macro call `(NAME arg …)` is recognized wherever an expression can
//! appear; each argument is one balanced token group (a symbol, literal,
//! or parenthesized form), substituted textually for the corresponding
//! parameter in the body. Expansion repeats until no macro heads remain,
//! with a depth bound so mutually recursive macros are rejected rather
//! than looping.

use crate::lexer::{Token, TokenKind};
use classic_core::error::{ClassicError, Result};
use std::collections::HashMap;

/// One macro definition: parameter names and the body token template.
#[derive(Debug, Clone)]
struct MacroDef {
    params: Vec<String>,
    body: Vec<Token>,
}

/// The registry of defined macros.
#[derive(Debug, Clone, Default)]
pub struct MacroTable {
    defs: HashMap<String, MacroDef>,
}

/// Expansion nesting bound: deeper means a recursive macro.
const MAX_DEPTH: usize = 32;

impl MacroTable {
    /// An empty macro table.
    pub fn new() -> MacroTable {
        MacroTable::default()
    }

    /// Have any macros been defined?
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Is `name` a defined macro?
    pub fn contains(&self, name: &str) -> bool {
        self.defs.contains_key(name)
    }

    /// The defined macro names, in arbitrary order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.defs.keys().map(String::as_str)
    }

    /// Register a macro from its `define-macro` form tokens:
    /// `( define-macro NAME ( params… ) body… )`.
    pub fn define_from_tokens(&mut self, tokens: &[Token]) -> Result<String> {
        let mut ix = 0usize;
        expect(tokens, &mut ix, &TokenKind::LParen)?;
        let head = symbol(tokens, &mut ix)?;
        if head != "define-macro" {
            return Err(ClassicError::Malformed("not a define-macro form".into()));
        }
        let name = symbol(tokens, &mut ix)?;
        if is_reserved(&name) {
            return Err(ClassicError::Malformed(format!(
                "macro name {name:?} shadows a built-in constructor"
            )));
        }
        expect(tokens, &mut ix, &TokenKind::LParen)?;
        let mut params = Vec::new();
        loop {
            match tokens.get(ix).map(|t| &t.kind) {
                Some(TokenKind::RParen) => {
                    ix += 1;
                    break;
                }
                Some(TokenKind::Symbol(_)) => params.push(symbol(tokens, &mut ix)?),
                other => {
                    return Err(ClassicError::Malformed(format!(
                        "macro parameter list: expected symbol or ')', found {other:?}"
                    )))
                }
            }
        }
        // The body is everything up to the final closing paren.
        if tokens.last().map(|t| &t.kind) != Some(&TokenKind::RParen) {
            return Err(ClassicError::Malformed("unterminated define-macro".into()));
        }
        let body: Vec<Token> = tokens[ix..tokens.len() - 1].to_vec();
        if body.is_empty() {
            return Err(ClassicError::Malformed(format!(
                "macro {name:?} has an empty body"
            )));
        }
        self.defs.insert(name.clone(), MacroDef { params, body });
        Ok(name)
    }

    /// Expand every macro call in `tokens`, to a fixed point.
    pub fn expand(&self, tokens: Vec<Token>) -> Result<Vec<Token>> {
        if self.defs.is_empty() {
            return Ok(tokens);
        }
        let mut current = tokens;
        for _ in 0..MAX_DEPTH {
            let (expanded, changed) = self.expand_once(&current)?;
            if !changed {
                return Ok(expanded);
            }
            current = expanded;
        }
        Err(ClassicError::Malformed(format!(
            "macro expansion exceeded depth {MAX_DEPTH} (recursive macro?)"
        )))
    }

    fn expand_once(&self, tokens: &[Token]) -> Result<(Vec<Token>, bool)> {
        let mut out = Vec::with_capacity(tokens.len());
        let mut changed = false;
        let mut ix = 0usize;
        while ix < tokens.len() {
            // A macro call site: '(' SYMBOL(name in table) …
            let is_call = matches!(tokens[ix].kind, TokenKind::LParen)
                && matches!(
                    tokens.get(ix + 1).map(|t| &t.kind),
                    Some(TokenKind::Symbol(s)) if self.defs.contains_key(s)
                );
            if !is_call {
                out.push(tokens[ix].clone());
                ix += 1;
                continue;
            }
            let call_pos = tokens[ix].pos;
            let name = match &tokens[ix + 1].kind {
                TokenKind::Symbol(s) => s.clone(),
                _ => unreachable!("checked above"),
            };
            let def = &self.defs[&name];
            // Collect one balanced group per parameter.
            let mut cursor = ix + 2;
            let mut args: Vec<&[Token]> = Vec::with_capacity(def.params.len());
            for _ in &def.params {
                let (start, end) = group(tokens, cursor).ok_or_else(|| {
                    ClassicError::Malformed(format!(
                        "{call_pos}: macro {name:?} expects {} arguments",
                        def.params.len()
                    ))
                })?;
                args.push(&tokens[start..end]);
                cursor = end;
            }
            match tokens.get(cursor).map(|t| &t.kind) {
                Some(TokenKind::RParen) => cursor += 1,
                _ => {
                    return Err(ClassicError::Malformed(format!(
                        "{call_pos}: macro {name:?} takes exactly {} arguments",
                        def.params.len()
                    )))
                }
            }
            // Substitute parameters into the body.
            for t in &def.body {
                match &t.kind {
                    TokenKind::Symbol(s) => {
                        if let Some(k) = def.params.iter().position(|p| p == s) {
                            out.extend(args[k].iter().cloned());
                        } else {
                            out.push(t.clone());
                        }
                    }
                    _ => out.push(t.clone()),
                }
            }
            changed = true;
            ix = cursor;
        }
        Ok((out, changed))
    }
}

/// The span `[start, end)` of one balanced token group at `ix`.
fn group(tokens: &[Token], ix: usize) -> Option<(usize, usize)> {
    match tokens.get(ix).map(|t| &t.kind)? {
        TokenKind::LParen => {
            let mut depth = 0usize;
            for (off, t) in tokens[ix..].iter().enumerate() {
                match t.kind {
                    TokenKind::LParen => depth += 1,
                    TokenKind::RParen => {
                        depth -= 1;
                        if depth == 0 {
                            return Some((ix, ix + off + 1));
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        TokenKind::RParen => None,
        TokenKind::Marker => {
            // A marker prefixes the following group.
            let (_, end) = group(tokens, ix + 1)?;
            Some((ix, end))
        }
        _ => Some((ix, ix + 1)),
    }
}

fn is_reserved(name: &str) -> bool {
    matches!(
        name,
        "AND"
            | "ALL"
            | "AT-LEAST"
            | "AT-MOST"
            | "EXACTLY"
            | "ONE-OF"
            | "FILLS"
            | "CLOSE"
            | "SAME-AS"
            | "PRIMITIVE"
            | "DISJOINT-PRIMITIVE"
            | "TEST"
            | "THING"
            | "CLASSIC-THING"
            | "HOST-THING"
    )
}

fn expect(tokens: &[Token], ix: &mut usize, kind: &TokenKind) -> Result<()> {
    match tokens.get(*ix) {
        Some(t) if t.kind == *kind => {
            *ix += 1;
            Ok(())
        }
        other => Err(ClassicError::Malformed(format!(
            "expected {kind:?}, found {other:?}"
        ))),
    }
}

fn symbol(tokens: &[Token], ix: &mut usize) -> Result<String> {
    match tokens.get(*ix) {
        Some(Token {
            kind: TokenKind::Symbol(s),
            ..
        }) => {
            *ix += 1;
            Ok(s.clone())
        }
        other => Err(ClassicError::Malformed(format!(
            "expected a symbol, found {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn table_with(def: &str) -> MacroTable {
        let mut t = MacroTable::new();
        t.define_from_tokens(&tokenize(def).unwrap()).unwrap();
        t
    }

    fn expand_to_text(table: &MacroTable, input: &str) -> String {
        let tokens = table.expand(tokenize(input).unwrap()).unwrap();
        let mut out = String::new();
        for t in tokens {
            match t.kind {
                TokenKind::LParen => out.push('('),
                TokenKind::RParen => {
                    if out.ends_with(' ') {
                        out.pop();
                    }
                    out.push_str(") ");
                }
                TokenKind::Symbol(s) => {
                    out.push_str(&s);
                    out.push(' ');
                }
                TokenKind::Int(i) => {
                    out.push_str(&i.to_string());
                    out.push(' ');
                }
                other => {
                    out.push_str(&format!("{other:?} "));
                }
            }
        }
        out.trim_end().to_owned()
    }

    #[test]
    fn exactly_one_from_the_paper() {
        let t = table_with("(define-macro EXACTLY-ONE (r) (AND (AT-LEAST 1 r) (AT-MOST 1 r)))");
        assert_eq!(
            expand_to_text(&t, "(EXACTLY-ONE wheel)"),
            "(AND (AT-LEAST 1 wheel) (AT-MOST 1 wheel))"
        );
    }

    #[test]
    fn parenthesized_arguments() {
        let t = table_with("(define-macro ALL-BOTH (r c d) (AND (ALL r c) (ALL r d)))");
        assert_eq!(
            expand_to_text(&t, "(ALL-BOTH drives (AND CAR FAST) SAFE)"),
            "(AND (ALL drives (AND CAR FAST)) (ALL drives SAFE))"
        );
    }

    #[test]
    fn nested_macro_calls_expand_to_fixpoint() {
        let mut t = table_with("(define-macro SOME (r) (AT-LEAST 1 r))");
        t.define_from_tokens(
            &tokenize("(define-macro SOME-BOTH (r s) (AND (SOME r) (SOME s)))").unwrap(),
        )
        .unwrap();
        assert_eq!(
            expand_to_text(&t, "(SOME-BOTH a b)"),
            "(AND (AT-LEAST 1 a) (AT-LEAST 1 b))"
        );
    }

    #[test]
    fn recursive_macros_are_rejected() {
        let t = table_with("(define-macro LOOP (r) (AND (LOOP r)))");
        let err = t.expand(tokenize("(LOOP x)").unwrap()).unwrap_err();
        assert!(err.to_string().contains("depth"));
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let t = table_with("(define-macro PAIR (a b) (AND a b))");
        assert!(t.expand(tokenize("(PAIR x)").unwrap()).is_err());
        assert!(t.expand(tokenize("(PAIR x y z)").unwrap()).is_err());
    }

    #[test]
    fn reserved_names_cannot_be_shadowed() {
        let mut t = MacroTable::new();
        let err = t
            .define_from_tokens(&tokenize("(define-macro AND (a) a)").unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("shadows"));
    }

    #[test]
    fn zero_parameter_macros() {
        let t = table_with("(define-macro LONELY () (AT-MOST 0 friend))");
        assert_eq!(expand_to_text(&t, "(LONELY)"), "(AT-MOST 0 friend)");
    }

    #[test]
    fn non_macro_tokens_pass_through() {
        let t = table_with("(define-macro SOME (r) (AT-LEAST 1 r))");
        assert_eq!(
            expand_to_text(&t, "(AND PERSON (SOME pet))"),
            "(AND PERSON (AT-LEAST 1 pet))"
        );
    }
}
