//! The unresolved surface AST: what [`crate::parser::Parser`] produces
//! *before* any knowledge base is in scope.
//!
//! Parsing used to intern names directly into a `Schema`'s symbol tables,
//! which made `parse_command` take `&mut Kb` — so parsing could not run
//! concurrently, nor server-side before tenant dispatch. The PR-6 split
//! puts a pure AST in between:
//!
//! * **parse** (`&str → Expr`/`Command`) is a pure function of the input
//!   text — names stay [`String`] symbols, no KB or schema required;
//! * **resolve** ([`Expr::resolve`], [`QueryExpr::resolve`]) interns the
//!   names against one concrete [`Schema`] at evaluation time, yielding
//!   the [`Concept`]/[`MarkedQuery`] values the engine works with.
//!
//! Resolution never *declares* anything (same contract as the old parser):
//! undeclared roles and undefined concepts are still rejected by
//! normalization, keeping the paper's "detect errors such as typos"
//! promise. The one check that moved from parse time to resolve time is
//! `TEST` lookup, since registered test functions live on the schema.

use classic_core::desc::{Concept, IndRef, Path};
use classic_core::error::{ClassicError, Result};
use classic_core::host::{HostValue, Layer, F64};
use classic_core::schema::Schema;
use classic_query::MarkedQuery;

/// An individual operand before resolution: a CLASSIC name or a host
/// literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndLit {
    /// A named CLASSIC individual (`Rocky`).
    Name(String),
    /// A host integer (`42`).
    Int(i64),
    /// A host float (`1.5`).
    Float(F64),
    /// A host string (`"label"`).
    Str(String),
    /// A host symbol (`'red`).
    Sym(String),
}

impl IndLit {
    /// Intern this operand against `schema`.
    pub fn resolve(&self, schema: &mut Schema) -> IndRef {
        match self {
            IndLit::Name(n) => IndRef::Classic(schema.symbols.individual(n)),
            IndLit::Int(i) => IndRef::Host(HostValue::Int(*i)),
            IndLit::Float(v) => IndRef::Host(HostValue::Float(*v)),
            IndLit::Str(s) => IndRef::Host(HostValue::Str(s.clone())),
            IndLit::Sym(s) => IndRef::Host(HostValue::Sym(s.clone())),
        }
    }
}

/// An unresolved concept expression: the paper's description grammar with
/// every name still a symbol. Produced by the pure parser; resolved
/// against a schema by [`Expr::resolve`].
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A concept name or builtin layer (`THING`, `INTEGER`, `PERSON`).
    Name(String),
    /// `(AND e…)`.
    And(Vec<Expr>),
    /// `(ALL role e)`.
    All(String, Box<Expr>),
    /// `(AT-LEAST n role)`.
    AtLeast(u32, String),
    /// `(AT-MOST n role)`.
    AtMost(u32, String),
    /// `(ONE-OF i…)`.
    OneOf(Vec<IndLit>),
    /// `(FILLS role i…)`.
    Fills(String, Vec<IndLit>),
    /// `(CLOSE role)`.
    Close(String),
    /// `(SAME-AS (p…) (q…))`.
    SameAs(Vec<String>, Vec<String>),
    /// `(PRIMITIVE parent index)`.
    Primitive {
        /// The told superconcept.
        parent: Box<Expr>,
        /// The primitive's identity index.
        index: String,
    },
    /// `(DISJOINT-PRIMITIVE parent grouping index)`.
    DisjointPrimitive {
        /// The told superconcept.
        parent: Box<Expr>,
        /// The disjointness grouping.
        grouping: String,
        /// The primitive's identity index.
        index: String,
    },
    /// `(TEST name)` — the name is looked up at resolve time.
    Test(String),
}

impl Expr {
    /// Resolve every name against `schema`, yielding an interned
    /// [`Concept`]. Unknown `TEST` functions are rejected here; all other
    /// names intern freely (normalization rejects undeclared roles and
    /// undefined concepts later, with position-free but precise errors).
    pub fn resolve(&self, schema: &mut Schema) -> Result<Concept> {
        Ok(match self {
            Expr::Name(s) => {
                if let Some(layer) = Layer::from_name(s) {
                    Concept::Builtin(layer)
                } else {
                    Concept::Name(schema.symbols.concept(s))
                }
            }
            Expr::And(parts) => Concept::And(
                parts
                    .iter()
                    .map(|p| p.resolve(schema))
                    .collect::<Result<Vec<_>>>()?,
            ),
            Expr::All(role, inner) => {
                let r = schema.symbols.role(role);
                Concept::all(r, inner.resolve(schema)?)
            }
            Expr::AtLeast(n, role) => Concept::AtLeast(*n, schema.symbols.role(role)),
            Expr::AtMost(n, role) => Concept::AtMost(*n, schema.symbols.role(role)),
            Expr::OneOf(lits) => Concept::OneOf(lits.iter().map(|l| l.resolve(schema)).collect()),
            Expr::Fills(role, lits) => {
                let r = schema.symbols.role(role);
                Concept::Fills(r, lits.iter().map(|l| l.resolve(schema)).collect())
            }
            Expr::Close(role) => Concept::Close(schema.symbols.role(role)),
            Expr::SameAs(p, q) => {
                let rp: Path = p.iter().map(|r| schema.symbols.role(r)).collect();
                let rq: Path = q.iter().map(|r| schema.symbols.role(r)).collect();
                Concept::SameAs(rp, rq)
            }
            Expr::Primitive { parent, index } => {
                let p = parent.resolve(schema)?;
                Concept::primitive(p, index)
            }
            Expr::DisjointPrimitive {
                parent,
                grouping,
                index,
            } => {
                let p = parent.resolve(schema)?;
                Concept::disjoint_primitive(p, grouping, index)
            }
            Expr::Test(name) => {
                let id = schema.symbols.find_test(name).ok_or_else(|| {
                    ClassicError::Malformed(format!("unknown TEST function {name:?}"))
                })?;
                Concept::Test(id)
            }
        })
    }
}

/// An unresolved query: a concept expression plus the `?:` marker's role
/// chain (by name). Absent marker means the subject marker (`?:C` ≡ `C`).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryExpr {
    /// The full query expression (marker removed).
    pub expr: Expr,
    /// Role-name chain from the query subject to the marked
    /// subexpression; empty for a subject marker.
    pub marker: Vec<String>,
}

impl QueryExpr {
    /// A marker on the query subject itself.
    pub fn subject(expr: Expr) -> QueryExpr {
        QueryExpr {
            expr,
            marker: Vec::new(),
        }
    }

    /// Resolve the expression and marker path against `schema`.
    pub fn resolve(&self, schema: &mut Schema) -> Result<MarkedQuery> {
        let concept = self.expr.resolve(schema)?;
        let marker = self.marker.iter().map(|r| schema.symbols.role(r)).collect();
        Ok(MarkedQuery { concept, marker })
    }
}
