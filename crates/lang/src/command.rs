//! The operator language: parsed commands and their evaluation against a
//! knowledge base.
//!
//! This is the "simple and uniform interface" of paper §6: "through the
//! use of multiple operators, a single language is used to specify the
//! schema (including integrity constraints), the information added to the
//! database, and the queries to it". Commands are written as
//! s-expressions, e.g.:
//!
//! ```text
//! (define-role thing-driven)
//! (define-concept RICH-KID (AND STUDENT (ALL thing-driven SPORTS-CAR)
//!                                (AT-LEAST 2 thing-driven)))
//! (create-ind Rocky)
//! (assert-ind Rocky (FILLS thing-driven Volvo-17))
//! (assert-rule STUDENT (ALL eat JUNK-FOOD))
//! (retrieve (AND STUDENT (AT-LEAST 2 thing-driven)))
//! (ask-description (AND STUDENT (ALL eat ?:THING)))
//! (subsumes? PERSON STUDENT)
//! ```
//!
//! The same command stream doubles as the persistence format
//! (`classic-store`) and the wire protocol (`classic-server`), honoring
//! the paper's point that one language plays every role.
//!
//! Since the PR-6 API redesign, **parsing is pure**: [`parse`] turns text
//! into [`Command`]s over the unresolved [`crate::ast`] (names as
//! symbols), with no KB in scope — so a server can parse a request before
//! choosing a tenant, and many threads can parse concurrently. Name
//! resolution happens inside [`eval`]. Evaluation yields a data-first
//! [`Outcome`] with two renderers shared by the REPL and the wire
//! protocol: [`Outcome::render_text`] and [`Outcome::render_json`].

use crate::ast::{Expr, IndLit, QueryExpr};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::parser::Parser;
use classic_core::aspect::AspectKind;
use classic_core::desc::IndRef;
use classic_core::error::{ClassicError, Result};
use classic_kb::{AssertReport, BulkReport, Kb, RetractReport};
use classic_obs::json_string;
use classic_query::Query;

/// A parsed top-level command over the unresolved AST: every concept or
/// query payload is an [`Expr`]/[`QueryExpr`] whose names are still
/// strings. Resolution against a concrete KB happens at [`eval`] time.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `(define-role name)` (§3.1).
    DefineRole(String),
    /// `(define-attribute name)`: a single-valued role.
    DefineAttribute(String),
    /// `(define-concept NAME expr)` (§3.1).
    DefineConcept(String, Expr),
    /// `(create-ind Name)` (§3.2).
    CreateInd(String),
    /// `(assert-ind Name expr)` (§3.2).
    AssertInd(String, Expr),
    /// `(assert-rule NAME expr)` (§3.3).
    AssertRule(String, Expr),
    /// `(retract-ind Name expr)`: remove a told description and re-derive
    /// everything that depended on it.
    RetractInd(String, Expr),
    /// `(retract-rule NAME expr)`: retire a rule and re-derive the
    /// individuals it fired on.
    RetractRule(String, Expr),
    /// `(retract-rule 7)`: retire a rule by the id echoed when it was
    /// asserted (`list-rules` shows the live ids).
    RetractRuleById(usize),
    /// `(list-rules)`: every live rule with its id, antecedent, and
    /// consequent.
    ListRules,
    /// `(obs-stats)` / `(obs-stats json)`: dump this KB's metric
    /// registry in Prometheus text or JSON exposition format.
    ObsStats {
        /// Render JSON instead of Prometheus text.
        json: bool,
    },
    /// `(obs-trace op)`: render the flight recorder's retained traces
    /// whose root span matches `op` (e.g. `kb.assert`,
    /// `query.retrieve`); `(obs-trace *)` lists the retained ops.
    ObsTrace(String),
    /// `(obs-reset)`: zero every metric series and clear the flight
    /// recorder.
    ObsReset,
    /// `(obs-level off|counters|full)`: set the process-wide
    /// observability level (`full` enables span tracing for
    /// `obs-trace`); `(obs-level)` reports the current one.
    ObsLevel(Option<String>),
    /// `(obs-sample rate)`: set the process-wide head-sampling rate for
    /// request tracing (`0.0`–`1.0`; a request that loses the draw
    /// records no spans but is still timed and slowlog-eligible);
    /// `(obs-sample)` reports the current rate.
    ObsSample(Option<f64>),
    /// `(obs-slowlog [n])`: render the up-to-`n` (default 10) slowest
    /// wire requests from the process-global slow-op log, with request
    /// identity and span trees.
    ObsSlowlog(Option<usize>),
    /// `(provenance Name)`: where the individual's derived information
    /// came from (the dependency journal, rendered).
    Provenance(String),
    /// `(retrieve q)` / `(instances q)`: known answers.
    Retrieve(QueryExpr),
    /// `(possible q)`: open-world possible answers.
    Possible(Expr),
    /// `(ask-necessary-set q)`: fillers at the marker across answers.
    AskNecessarySet(QueryExpr),
    /// `(ask-description q)`: intensional answer.
    AskDescription(QueryExpr),
    /// `(subsumes? C1 C2)`.
    Subsumes(Expr, Expr),
    /// `(equivalent? C1 C2)`.
    Equivalent(Expr, Expr),
    /// `(disjoint? C1 C2)`.
    Disjoint(Expr, Expr),
    /// `(concept-aspect NAME KIND [role])`.
    ConceptAspect(String, AspectKind, Option<String>),
    /// `(ind-aspect Name KIND [role])`.
    IndAspect(String, AspectKind, Option<String>),
    /// `(describe Name)`: descriptive answer for one individual.
    Describe(String),
    /// `(parents NAME)`: immediate subsumers in the taxonomy.
    Parents(String),
    /// `(children NAME)`: immediate subsumees in the taxonomy.
    Children(String),
    /// `(classify expr)`: immediate named parents/children/equivalents of
    /// an arbitrary concept expression (§3.5.1).
    Classify(Expr),
    /// `(why? Ind NAME)`: explain why the individual is or is not
    /// recognized under the named concept (the explanation extension).
    Why(String, String),
    /// `(what-if? Ind expr)`: hypothetical assertion — report whether the
    /// update would be accepted and what it would derive, then roll it
    /// back unconditionally.
    WhatIf(String, Expr),
    /// `(bulk-load [(into expr)] (roles r…) (row Name v…)…)`: batched
    /// assertion of tabular rows through the deferred-fixpoint bulk
    /// path ([`classic_kb::Kb::bulk_assert`]). Each row asserts
    /// `(AND into (FILLS r1 v1) … (FILLS rk vk))` about its target,
    /// with `_` marking a missing cell. Infallible per row: the
    /// outcome reports per-row accept/reject counts.
    BulkLoad(BulkSpec),
    /// `(lint-kb)` / `(lint-kb cone)`: run the static analyzer
    /// (`classic-analyze`) over the schema, rule base, and ABox.
    /// `cone` asks for only the diagnostics re-derived since the last
    /// lint (the dirty cone); against a stateless evaluator the first
    /// cone is the full report.
    LintKb {
        /// Report only the dirty-cone diagnostics instead of the full set.
        cone: bool,
    },
}

impl Command {
    /// Whether evaluating this command can change the knowledge base.
    /// The server routes mutating commands through the durable write
    /// path and everything else against a pinned read snapshot.
    /// (`what-if?` mutates transiently but always rolls back, so it
    /// counts as read-only; `obs-reset`/`obs-level` touch only
    /// observability state.)
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            Command::DefineRole(_)
                | Command::DefineAttribute(_)
                | Command::DefineConcept(..)
                | Command::CreateInd(_)
                | Command::AssertInd(..)
                | Command::AssertRule(..)
                | Command::RetractInd(..)
                | Command::RetractRule(..)
                | Command::RetractRuleById(_)
                | Command::BulkLoad(_)
        )
    }

    /// The command's surface-language operator name — the request-kind
    /// attribute the server stamps on traces and slowlog entries.
    pub fn kind(&self) -> &'static str {
        match self {
            Command::DefineRole(_) => "define-role",
            Command::DefineAttribute(_) => "define-attribute",
            Command::DefineConcept(..) => "define-concept",
            Command::CreateInd(_) => "create-ind",
            Command::AssertInd(..) => "assert-ind",
            Command::AssertRule(..) => "assert-rule",
            Command::RetractInd(..) => "retract-ind",
            Command::RetractRule(..) | Command::RetractRuleById(_) => "retract-rule",
            Command::ListRules => "list-rules",
            Command::ObsStats { .. } => "obs-stats",
            Command::ObsTrace(_) => "obs-trace",
            Command::ObsReset => "obs-reset",
            Command::ObsLevel(_) => "obs-level",
            Command::ObsSample(_) => "obs-sample",
            Command::ObsSlowlog(_) => "obs-slowlog",
            Command::Provenance(_) => "provenance",
            Command::Retrieve(_) => "retrieve",
            Command::Possible(_) => "possible",
            Command::AskNecessarySet(_) => "ask-necessary-set",
            Command::AskDescription(_) => "ask-description",
            Command::Subsumes(..) => "subsumes?",
            Command::Equivalent(..) => "equivalent?",
            Command::Disjoint(..) => "disjoint?",
            Command::ConceptAspect(..) => "concept-aspect",
            Command::IndAspect(..) => "ind-aspect",
            Command::Describe(_) => "describe",
            Command::Parents(_) => "parents",
            Command::Children(_) => "children",
            Command::Classify(_) => "classify",
            Command::Why(..) => "why?",
            Command::WhatIf(..) => "what-if?",
            Command::BulkLoad(_) => "bulk-load",
            Command::LintKb { .. } => "lint-kb",
        }
    }
}

/// The payload of a `(bulk-load …)` form: an optional concept every row
/// is typed with, a role header, and the rows themselves. Parsed purely
/// (names still strings); resolution happens at [`eval`] time.
///
/// Surface grammar (see `docs/INGEST.md` §"The (bulk-load …) form"):
///
/// ```text
/// (bulk-load
///   (into EXPR)            ; optional — conjoined onto every row
///   (roles r1 … rk)        ; the column header
///   (row Name v1 … vk)     ; one per row; k values each
///   …)
/// ```
///
/// Values are individual literals — a bare symbol is a CLASSIC
/// individual reference, `42`/`1.5`/`"s"`/`'sym` are host values — and
/// the reserved symbol `_` marks a missing cell (no `FILLS` emitted).
#[derive(Debug, Clone, PartialEq)]
pub struct BulkSpec {
    /// Concept expression conjoined onto every row's description.
    pub into: Option<Expr>,
    /// Role names, one per value column.
    pub roles: Vec<String>,
    /// The rows, in submission order.
    pub rows: Vec<BulkRowSpec>,
}

/// One `(row Name v1 … vk)` of a [`BulkSpec`]: the target individual
/// and one optional value per role column (`None` = the `_` cell).
#[derive(Debug, Clone, PartialEq)]
pub struct BulkRowSpec {
    /// Target individual name.
    pub name: String,
    /// Cell values, index-aligned with [`BulkSpec::roles`].
    pub values: Vec<Option<IndLit>>,
}

/// One structured static-analysis finding, mirroring
/// [`classic_analyze::Diagnostic`] as plain serializable data (the span is
/// pre-rendered to a subject string; code and severity stay structured).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiagnostic {
    /// Stable code, `A001`…`A008`.
    pub code: String,
    /// Severity of the finding.
    pub severity: classic_analyze::Severity,
    /// The schema object the finding points at (`concept BAD`,
    /// `rule #2 (on STUDENT)`, `schema`).
    pub subject: String,
    /// One-line human description.
    pub message: String,
    /// Explain-style derivation of *why*.
    pub provenance: Vec<String>,
}

/// A static-analysis report as data (`lint-kb`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    /// Findings, ordered by severity then code.
    pub diagnostics: Vec<LintDiagnostic>,
    /// How many defined concepts were checked.
    pub concepts_checked: usize,
    /// How many rules were checked.
    pub rules_checked: usize,
    /// How many individuals were checked (for a cone report: re-linted).
    pub inds_checked: usize,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(classic_analyze::Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(classic_analyze::Severity::Warning)
    }

    /// Number of findings at exactly `sev`.
    pub fn count(&self, sev: classic_analyze::Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// The cone form: just the diagnostics one incremental refresh
    /// re-derived, with `inds_checked` reporting how many individuals
    /// were actually re-linted (concept/rule totals are not re-counted).
    pub fn from_refresh(refresh: &classic_analyze::Refresh) -> LintReport {
        LintReport {
            diagnostics: refresh.cone.iter().map(LintDiagnostic::from).collect(),
            concepts_checked: 0,
            rules_checked: 0,
            inds_checked: refresh.relinted,
        }
    }
}

impl From<&classic_analyze::Diagnostic> for LintDiagnostic {
    fn from(d: &classic_analyze::Diagnostic) -> LintDiagnostic {
        LintDiagnostic {
            code: d.code.as_str().to_owned(),
            severity: d.severity,
            subject: d.span.to_string(),
            message: d.message.clone(),
            provenance: d.provenance.clone(),
        }
    }
}

impl From<&classic_analyze::Report> for LintReport {
    fn from(report: &classic_analyze::Report) -> LintReport {
        LintReport {
            diagnostics: report
                .diagnostics
                .iter()
                .map(LintDiagnostic::from)
                .collect(),
            concepts_checked: report.concepts_checked,
            rules_checked: report.rules_checked,
            inds_checked: report.inds_checked,
        }
    }
}

/// A structured aspect answer (`concept-aspect` / `ind-aspect`),
/// mirroring [`classic_core::aspect::Aspect`] with individuals rendered
/// to names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AspectValue {
    /// The aspect is absent.
    None,
    /// A numeric bound (`AT-LEAST`/`AT-MOST`).
    Bound(u32),
    /// Whether the role is closed.
    Closed(bool),
    /// An enumeration or filler set, by name/host value.
    Values(Vec<String>),
    /// A value restriction, rendered in the surface syntax.
    Restriction(String),
}

/// The result of evaluating one command: data first, rendering second.
/// [`Outcome::render_text`] is the human form (REPL, CLI);
/// [`Outcome::render_json`] is the wire form (`classic-server`). Both are
/// total over every variant, so the two surfaces can never drift.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Nothing to report (DDL, create).
    Ok,
    /// An accepted rule, with the id `retract-rule` takes back.
    RuleAsserted(usize),
    /// An accepted assertion, with its propagation report.
    Asserted(AssertReport),
    /// An accepted retraction, with its re-derivation report.
    Retracted(RetractReport),
    /// A list of individual names / host values.
    Individuals(Vec<String>),
    /// A yes/no answer.
    Bool(bool),
    /// A description rendered in the surface syntax.
    Description(String),
    /// A list of concept names.
    Concepts(Vec<String>),
    /// A structured aspect value.
    Aspect(AspectValue),
    /// A static-analysis report (`lint-kb`).
    Lint(LintReport),
    /// A completed `bulk-load`, with its per-row accounting.
    BulkLoaded(BulkReport),
}

impl Outcome {
    /// Render for a human: the REPL/CLI form. Multi-valued outcomes
    /// render one item per line; engine reports render as `; `-prefixed
    /// summaries matching the historical REPL output.
    pub fn render_text(&self) -> String {
        match self {
            Outcome::Ok => "; ok".to_owned(),
            Outcome::RuleAsserted(ix) => {
                format!("; rule #{ix} asserted (retract with (retract-rule {ix}))")
            }
            Outcome::Asserted(r) => format!(
                "; accepted (steps={} fills={} corefs={} rules={} reclassified={})",
                r.steps, r.fills_propagated, r.corefs_derived, r.rules_fired, r.reclassified
            ),
            Outcome::Retracted(r) => format!(
                "; retracted (reset={} requeued={} steps={} reclassified={})",
                r.reset, r.requeued, r.steps, r.reclassified
            ),
            Outcome::Individuals(names) => {
                if names.is_empty() {
                    "; no known answers".to_owned()
                } else {
                    names.join("\n")
                }
            }
            Outcome::Bool(b) => b.to_string(),
            Outcome::Description(d) => d.clone(),
            Outcome::Concepts(names) => names.join("\n"),
            Outcome::Aspect(a) => match a {
                AspectValue::None => "none".to_owned(),
                AspectValue::Bound(n) => n.to_string(),
                AspectValue::Closed(b) => b.to_string(),
                AspectValue::Values(v) => format!("({})", v.join(" ")),
                AspectValue::Restriction(c) => c.clone(),
            },
            Outcome::Lint(report) => {
                let mut out = String::new();
                for d in &report.diagnostics {
                    out.push_str(&format!(
                        "{} {}: {}: {}\n",
                        d.code,
                        d.severity.as_str(),
                        d.subject,
                        d.message
                    ));
                    for p in &d.provenance {
                        out.push_str(&format!("    {p}\n"));
                    }
                }
                out.push_str(&format!(
                    "{} error(s), {} warning(s); {} concept(s), {} rule(s), {} individual(s) checked",
                    report.errors(),
                    report.warnings(),
                    report.concepts_checked,
                    report.rules_checked,
                    report.inds_checked,
                ));
                out
            }
            Outcome::BulkLoaded(r) => {
                let mut out = format!(
                    "; bulk-loaded (rows={} accepted={} rejected={} created={} chunks={} fallbacks={})",
                    r.rows, r.accepted, r.rejected, r.inds_created, r.chunks, r.sequential_fallbacks
                );
                for rej in &r.rejections {
                    out.push_str(&format!(
                        "\n;   row {} ({}): {}",
                        rej.row, rej.name, rej.error
                    ));
                }
                out
            }
        }
    }

    /// Render as a single-line JSON object: `{"type": …, …}`. This is the
    /// wire form the server sends; the REPL's `render_text` reads the
    /// same data, so protocol and shell can never disagree about what an
    /// outcome *is*.
    pub fn render_json(&self) -> String {
        match self {
            Outcome::Ok => r#"{"type":"ok"}"#.to_owned(),
            Outcome::RuleAsserted(ix) => {
                format!(r#"{{"type":"rule-asserted","id":{ix}}}"#)
            }
            Outcome::Asserted(r) => format!(
                concat!(
                    r#"{{"type":"asserted","steps":{},"fills":{},"corefs":{},"#,
                    r#""rules":{},"reclassified":{},"created":{}}}"#
                ),
                r.steps,
                r.fills_propagated,
                r.corefs_derived,
                r.rules_fired,
                r.reclassified,
                r.inds_created
            ),
            Outcome::Retracted(r) => format!(
                r#"{{"type":"retracted","reset":{},"requeued":{},"steps":{},"reclassified":{}}}"#,
                r.reset, r.requeued, r.steps, r.reclassified
            ),
            Outcome::Individuals(names) => {
                format!(r#"{{"type":"individuals","names":{}}}"#, json_array(names))
            }
            Outcome::Bool(b) => format!(r#"{{"type":"bool","value":{b}}}"#),
            Outcome::Description(d) => {
                format!(r#"{{"type":"description","text":{}}}"#, json_string(d))
            }
            Outcome::Concepts(names) => {
                format!(r#"{{"type":"concepts","names":{}}}"#, json_array(names))
            }
            Outcome::Aspect(a) => {
                let value = match a {
                    AspectValue::None => r#"{"kind":"none"}"#.to_owned(),
                    AspectValue::Bound(n) => format!(r#"{{"kind":"bound","n":{n}}}"#),
                    AspectValue::Closed(b) => {
                        format!(r#"{{"kind":"closed","value":{b}}}"#)
                    }
                    AspectValue::Values(v) => {
                        format!(r#"{{"kind":"values","values":{}}}"#, json_array(v))
                    }
                    AspectValue::Restriction(c) => {
                        format!(r#"{{"kind":"restriction","concept":{}}}"#, json_string(c))
                    }
                };
                format!(r#"{{"type":"aspect","value":{value}}}"#)
            }
            Outcome::Lint(report) => {
                let diags: Vec<String> = report
                    .diagnostics
                    .iter()
                    .map(|d| {
                        format!(
                            concat!(
                                r#"{{"code":{},"severity":{},"subject":{},"#,
                                r#""message":{},"provenance":{}}}"#
                            ),
                            json_string(&d.code),
                            json_string(d.severity.as_str()),
                            json_string(&d.subject),
                            json_string(&d.message),
                            json_array(&d.provenance),
                        )
                    })
                    .collect();
                format!(
                    concat!(
                        r#"{{"type":"lint","errors":{},"warnings":{},"concepts_checked":{},"#,
                        r#""rules_checked":{},"inds_checked":{},"diagnostics":[{}]}}"#
                    ),
                    report.errors(),
                    report.warnings(),
                    report.concepts_checked,
                    report.rules_checked,
                    report.inds_checked,
                    diags.join(",")
                )
            }
            Outcome::BulkLoaded(r) => {
                let rejections: Vec<String> = r
                    .rejections
                    .iter()
                    .map(|rej| {
                        format!(
                            r#"{{"row":{},"name":{},"error":{}}}"#,
                            rej.row,
                            json_string(&rej.name),
                            json_string(&rej.error)
                        )
                    })
                    .collect();
                format!(
                    concat!(
                        r#"{{"type":"bulk-loaded","rows":{},"accepted":{},"rejected":{},"#,
                        r#""created":{},"steps":{},"rules":{},"reclassified":{},"chunks":{},"#,
                        r#""fallbacks":{},"rejections":[{}]}}"#
                    ),
                    r.rows,
                    r.accepted,
                    r.rejected,
                    r.inds_created,
                    r.steps,
                    r.rules_fired,
                    r.reclassified,
                    r.chunks,
                    r.sequential_fallbacks,
                    rejections.join(",")
                )
            }
        }
    }
}

fn json_array(items: &[String]) -> String {
    let parts: Vec<String> = items.iter().map(|s| json_string(s)).collect();
    format!("[{}]", parts.join(","))
}

/// Split an input string into top-level s-expressions and parse each as a
/// command. **Pure**: no KB, schema, or symbol table is consulted — names
/// stay symbols in the produced [`Command`]s and are resolved by [`eval`].
/// Used by the REPL, the persistence log reader, and the server front.
///
/// ```
/// use classic_kb::Kb;
/// use classic_lang::{eval, parse, Outcome};
///
/// // Parsing touches no KB: an undefined role is fine here…
/// let cmds = parse("(define-role child) (assert-ind Mary (AT-LEAST 2 child))")?;
/// assert_eq!(cmds.len(), 2);
///
/// // …and is only resolved when each command meets a KB in `eval`.
/// let mut kb = Kb::new();
/// kb.create_ind("Mary")?;
/// for cmd in &cmds {
///     assert!(matches!(eval(&mut kb, cmd)?, Outcome::Ok | Outcome::Asserted(_)));
/// }
/// # Ok::<(), classic_core::ClassicError>(())
/// ```
pub fn parse(input: &str) -> Result<Vec<Command>> {
    let tokens = tokenize(input)?;
    split_forms(&tokens)?
        .into_iter()
        .map(parse_command_tokens)
        .collect()
}

/// Parse exactly one command from text. Pure, like [`parse`].
pub fn parse_one(input: &str) -> Result<Command> {
    let mut cmds = parse(input)?;
    match cmds.len() {
        1 => Ok(cmds.pop().expect("one command")),
        n => Err(ClassicError::Malformed(format!(
            "expected exactly one command, found {n}"
        ))),
    }
}

/// Deprecated shim from before the parse/resolve split: parsing no longer
/// needs (or touches) a KB.
#[deprecated(note = "parsing is pure now — use `parse(input)`; names resolve at `eval` time")]
pub fn parse_commands(input: &str, _kb: &mut Kb) -> Result<Vec<Command>> {
    parse(input)
}

/// Deprecated shim from before the parse/resolve split: parsing no longer
/// needs (or touches) a KB.
#[deprecated(note = "parsing is pure now — use `parse_one(input)`; names resolve at `eval` time")]
pub fn parse_command(input: &str, _kb: &mut Kb) -> Result<Command> {
    parse_one(input)
}

/// Parse one command from a balanced token window. Pure.
pub(crate) fn parse_command_tokens(tokens: &[Token]) -> Result<Command> {
    let mut w = TokenWindow { tokens, ix: 0 };
    w.expect(&TokenKind::LParen)?;
    let op = w.symbol()?;
    let cmd = match op.as_str() {
        "define-role" => Command::DefineRole(w.symbol()?),
        "define-attribute" => Command::DefineAttribute(w.symbol()?),
        "define-concept" => {
            let name = w.symbol()?;
            let c = w.concept()?;
            Command::DefineConcept(name, c)
        }
        "create-ind" => Command::CreateInd(w.symbol()?),
        "assert-ind" => {
            let name = w.symbol()?;
            let c = w.concept()?;
            Command::AssertInd(name, c)
        }
        "assert-rule" => {
            let name = w.symbol()?;
            let c = w.concept()?;
            Command::AssertRule(name, c)
        }
        "retract-ind" => {
            let name = w.symbol()?;
            let c = w.concept()?;
            Command::RetractInd(name, c)
        }
        "retract-rule" => match w.optional_int() {
            Some(ix) if ix >= 0 => Command::RetractRuleById(ix as usize),
            Some(ix) => {
                return Err(ClassicError::Malformed(format!(
                    "rule ids are non-negative, got {ix}"
                )))
            }
            None => {
                let name = w.symbol()?;
                let c = w.concept()?;
                Command::RetractRule(name, c)
            }
        },
        "list-rules" => Command::ListRules,
        "obs-stats" => Command::ObsStats {
            json: matches!(w.optional_symbol().as_deref(), Some("json")),
        },
        "obs-trace" => Command::ObsTrace(w.symbol()?),
        "obs-reset" => Command::ObsReset,
        "obs-level" => Command::ObsLevel(w.optional_symbol()),
        "obs-sample" => Command::ObsSample(w.optional_number()),
        "obs-slowlog" => match w.optional_int() {
            Some(n) if n >= 0 => Command::ObsSlowlog(Some(n as usize)),
            Some(n) => {
                return Err(ClassicError::Malformed(format!(
                    "obs-slowlog count is non-negative, got {n}"
                )))
            }
            None => Command::ObsSlowlog(None),
        },
        "provenance" => Command::Provenance(w.symbol()?),
        "retrieve" | "instances" => {
            let q = w.query()?;
            Command::Retrieve(q)
        }
        "possible" => Command::Possible(w.concept()?),
        "ask-necessary-set" => Command::AskNecessarySet(w.query()?),
        "ask-description" => Command::AskDescription(w.query()?),
        "subsumes?" => {
            let a = w.concept()?;
            let b = w.concept()?;
            Command::Subsumes(a, b)
        }
        "equivalent?" => {
            let a = w.concept()?;
            let b = w.concept()?;
            Command::Equivalent(a, b)
        }
        "disjoint?" => {
            let a = w.concept()?;
            let b = w.concept()?;
            Command::Disjoint(a, b)
        }
        "concept-aspect" => {
            let name = w.symbol()?;
            let kind = w.aspect_kind()?;
            let role = w.optional_symbol();
            Command::ConceptAspect(name, kind, role)
        }
        "ind-aspect" => {
            let name = w.symbol()?;
            let kind = w.aspect_kind()?;
            let role = w.optional_symbol();
            Command::IndAspect(name, kind, role)
        }
        "describe" => Command::Describe(w.symbol()?),
        "classify" => Command::Classify(w.concept()?),
        "why?" => {
            let ind = w.symbol()?;
            let concept = w.symbol()?;
            Command::Why(ind, concept)
        }
        "what-if?" => {
            let ind = w.symbol()?;
            let c = w.concept()?;
            Command::WhatIf(ind, c)
        }
        "parents" => Command::Parents(w.symbol()?),
        "children" => Command::Children(w.symbol()?),
        "bulk-load" => Command::BulkLoad(w.bulk_spec()?),
        "lint-kb" => match w.optional_symbol() {
            None => Command::LintKb { cone: false },
            Some(arg) if arg == "cone" => Command::LintKb { cone: true },
            Some(arg) => {
                return Err(ClassicError::Malformed(format!(
                    "lint-kb takes no argument or `cone`, got {arg:?}"
                )))
            }
        },
        other => {
            return Err(ClassicError::Malformed(format!(
                "unknown operator {other:?}"
            )))
        }
    };
    w.expect(&TokenKind::RParen)?;
    w.expect_end()?;
    Ok(cmd)
}

/// Minimal cursor over a token window, delegating concept parsing to the
/// pure [`Parser`] over the sub-span.
struct TokenWindow<'a> {
    tokens: &'a [Token],
    ix: usize,
}

impl TokenWindow<'_> {
    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        match self.tokens.get(self.ix) {
            Some(t) if t.kind == *kind => {
                self.ix += 1;
                Ok(())
            }
            Some(t) => Err(ClassicError::Malformed(format!(
                "{}: expected {kind:?}, found {:?}",
                t.pos, t.kind
            ))),
            None => Err(ClassicError::Malformed("unexpected end of command".into())),
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        if self.ix == self.tokens.len() {
            Ok(())
        } else {
            Err(ClassicError::Malformed(
                "trailing tokens after command".into(),
            ))
        }
    }

    fn symbol(&mut self) -> Result<String> {
        match self.tokens.get(self.ix) {
            Some(Token {
                kind: TokenKind::Symbol(s),
                ..
            }) => {
                self.ix += 1;
                Ok(s.clone())
            }
            Some(t) => Err(ClassicError::Malformed(format!(
                "{}: expected a name, found {:?}",
                t.pos, t.kind
            ))),
            None => Err(ClassicError::Malformed("unexpected end of command".into())),
        }
    }

    fn optional_int(&mut self) -> Option<i64> {
        match self.tokens.get(self.ix) {
            Some(Token {
                kind: TokenKind::Int(i),
                ..
            }) => {
                self.ix += 1;
                Some(*i)
            }
            _ => None,
        }
    }

    /// An optional numeric literal (int or float), consumed if present.
    fn optional_number(&mut self) -> Option<f64> {
        match self.tokens.get(self.ix) {
            Some(Token {
                kind: TokenKind::Int(i),
                ..
            }) => {
                self.ix += 1;
                Some(*i as f64)
            }
            Some(Token {
                kind: TokenKind::Float(f),
                ..
            }) => {
                self.ix += 1;
                Some(f.0)
            }
            _ => None,
        }
    }

    fn optional_symbol(&mut self) -> Option<String> {
        match self.tokens.get(self.ix) {
            Some(Token {
                kind: TokenKind::Symbol(s),
                ..
            }) => {
                self.ix += 1;
                Some(s.clone())
            }
            _ => None,
        }
    }

    fn aspect_kind(&mut self) -> Result<AspectKind> {
        let s = self.symbol()?;
        Ok(match s.as_str() {
            "ONE-OF" => AspectKind::OneOf,
            "ALL" => AspectKind::All,
            "AT-LEAST" => AspectKind::AtLeast,
            "AT-MOST" => AspectKind::AtMost,
            "FILLS" => AspectKind::Fills,
            "CLOSE" => AspectKind::Close,
            other => {
                return Err(ClassicError::Malformed(format!(
                    "unknown aspect kind {other:?}"
                )))
            }
        })
    }

    /// The span of the next complete expression (symbol or balanced
    /// parenthesis group, with optional leading marker).
    fn expression_span(&self) -> Result<(usize, usize)> {
        let mut ix = self.ix;
        if matches!(
            self.tokens.get(ix),
            Some(Token {
                kind: TokenKind::Marker,
                ..
            })
        ) {
            ix += 1;
        }
        match self.tokens.get(ix) {
            Some(Token {
                kind: TokenKind::LParen,
                ..
            }) => {
                let mut depth = 0usize;
                let mut end = ix;
                for (off, t) in self.tokens[ix..].iter().enumerate() {
                    match t.kind {
                        TokenKind::LParen => depth += 1,
                        TokenKind::RParen => {
                            depth -= 1;
                            if depth == 0 {
                                end = ix + off;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if depth != 0 && end == ix {
                    return Err(ClassicError::Malformed("unbalanced expression".into()));
                }
                Ok((self.ix, end + 1))
            }
            Some(_) => Ok((self.ix, ix + 1)),
            None => Err(ClassicError::Malformed("expected an expression".into())),
        }
    }

    fn concept(&mut self) -> Result<Expr> {
        let span = self.expression_span()?;
        let window = self.tokens[span.0..span.1].to_vec();
        self.ix = span.1;
        Parser::expr_from_tokens(window)
    }

    fn query(&mut self) -> Result<QueryExpr> {
        let span = self.expression_span()?;
        let window = self.tokens[span.0..span.1].to_vec();
        self.ix = span.1;
        Parser::query_from_tokens(window)
    }

    fn at_rparen(&self) -> bool {
        matches!(
            self.tokens.get(self.ix),
            Some(Token {
                kind: TokenKind::RParen,
                ..
            })
        )
    }

    /// One `bulk-load` cell: an individual literal, or `_` for missing.
    fn bulk_value(&mut self) -> Result<Option<IndLit>> {
        let lit = match self.tokens.get(self.ix) {
            Some(Token {
                kind: TokenKind::Symbol(s),
                ..
            }) if s == "_" => None,
            Some(Token {
                kind: TokenKind::Symbol(s),
                ..
            }) => Some(IndLit::Name(s.clone())),
            Some(Token {
                kind: TokenKind::Int(i),
                ..
            }) => Some(IndLit::Int(*i)),
            Some(Token {
                kind: TokenKind::Float(v),
                ..
            }) => Some(IndLit::Float(*v)),
            Some(Token {
                kind: TokenKind::Str(s),
                ..
            }) => Some(IndLit::Str(s.clone())),
            Some(Token {
                kind: TokenKind::QuotedSym(s),
                ..
            }) => Some(IndLit::Sym(s.clone())),
            Some(t) => {
                return Err(ClassicError::Malformed(format!(
                    "{}: expected a row value (name, literal, or `_`), found {:?}",
                    t.pos, t.kind
                )))
            }
            None => return Err(ClassicError::Malformed("unexpected end of row".into())),
        };
        self.ix += 1;
        Ok(lit)
    }

    /// The body of a `(bulk-load …)` form: optional `(into expr)`, one
    /// `(roles …)` header, then `(row …)` forms whose arity must match
    /// the header (ragged rows are parse errors).
    fn bulk_spec(&mut self) -> Result<BulkSpec> {
        let mut into = None;
        let mut roles: Option<Vec<String>> = None;
        let mut rows = Vec::new();
        while !self.at_rparen() {
            self.expect(&TokenKind::LParen)?;
            match self.symbol()?.as_str() {
                "into" => {
                    if into.is_some() {
                        return Err(ClassicError::Malformed(
                            "bulk-load: duplicate (into …) clause".into(),
                        ));
                    }
                    if roles.is_some() || !rows.is_empty() {
                        return Err(ClassicError::Malformed(
                            "bulk-load: (into …) must precede (roles …) and rows".into(),
                        ));
                    }
                    into = Some(self.concept()?);
                }
                "roles" => {
                    if roles.is_some() {
                        return Err(ClassicError::Malformed(
                            "bulk-load: duplicate (roles …) header".into(),
                        ));
                    }
                    let mut header = Vec::new();
                    while !self.at_rparen() {
                        header.push(self.symbol()?);
                    }
                    roles = Some(header);
                }
                "row" => {
                    let arity = match &roles {
                        Some(r) => r.len(),
                        None => {
                            return Err(ClassicError::Malformed(
                                "bulk-load: (roles …) header must precede rows".into(),
                            ))
                        }
                    };
                    let name = self.symbol()?;
                    let mut values = Vec::with_capacity(arity);
                    while !self.at_rparen() {
                        values.push(self.bulk_value()?);
                    }
                    if values.len() != arity {
                        return Err(ClassicError::Malformed(format!(
                            "bulk-load: ragged row {:?} has {} value(s), header has {} role(s)",
                            name,
                            values.len(),
                            arity
                        )));
                    }
                    rows.push(BulkRowSpec { name, values });
                }
                other => {
                    return Err(ClassicError::Malformed(format!(
                        "bulk-load: expected (into …), (roles …), or (row …), got {other:?}"
                    )))
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(BulkSpec {
            into,
            roles: roles.unwrap_or_default(),
            rows,
        })
    }
}

/// Resolve a [`BulkSpec`] into KB-level [`classic_kb::BulkRow`]s: the
/// `into` concept (if any) conjoined with one `FILLS` per non-missing
/// cell. Shared by [`eval`] and the durable store's bulk path (which
/// re-renders accepted rows into its log).
pub fn resolve_bulk_rows(kb: &mut Kb, spec: &BulkSpec) -> Result<Vec<classic_kb::BulkRow>> {
    let into = spec
        .into
        .as_ref()
        .map(|e| e.resolve(kb.schema_mut()))
        .transpose()?;
    let roles: Vec<classic_core::RoleId> = spec
        .roles
        .iter()
        .map(|r| {
            kb.schema()
                .symbols
                .find_role(r)
                .ok_or_else(|| unknown_role(kb, r))
        })
        .collect::<Result<_>>()?;
    spec.rows
        .iter()
        .map(|row| {
            let mut parts = Vec::new();
            if let Some(c) = &into {
                parts.push(c.clone());
            }
            for (value, &role) in row.values.iter().zip(&roles) {
                if let Some(lit) = value {
                    parts.push(classic_core::Concept::Fills(
                        role,
                        vec![lit.resolve(kb.schema_mut())],
                    ));
                }
            }
            Ok(classic_kb::BulkRow {
                name: row.name.clone(),
                desc: classic_core::Concept::and(parts),
            })
        })
        .collect()
}

/// `unknown concept NAME` with a nearest-match suggestion when some
/// defined name is within typo distance.
fn unknown_concept(kb: &Kb, name: &str) -> ClassicError {
    ClassicError::Malformed(suggest(
        format!("unknown concept {name:?}"),
        classic_kb::nearest_match(name, kb.schema().symbols.concepts().map(|(_, n)| n)),
    ))
}

fn unknown_individual(kb: &Kb, name: &str) -> ClassicError {
    ClassicError::Malformed(suggest(
        format!("unknown individual {name:?}"),
        classic_kb::nearest_match(name, kb.schema().symbols.individuals().map(|(_, n)| n)),
    ))
}

fn unknown_role(kb: &Kb, name: &str) -> ClassicError {
    ClassicError::Malformed(suggest(
        format!("unknown role {name:?}"),
        classic_kb::nearest_match(name, kb.schema().symbols.roles().map(|(_, n)| n)),
    ))
}

fn suggest(mut msg: String, near: Option<&str>) -> String {
    if let Some(n) = near {
        msg.push_str(&format!(" — did you mean {n:?}?"));
    }
    msg
}

/// Evaluate a parsed command against a knowledge base, resolving names
/// against its schema first.
pub fn eval(kb: &mut Kb, cmd: &Command) -> Result<Outcome> {
    match cmd {
        Command::DefineRole(name) => {
            kb.define_role(name)?;
            Ok(Outcome::Ok)
        }
        Command::DefineAttribute(name) => {
            kb.define_attribute(name)?;
            Ok(Outcome::Ok)
        }
        Command::DefineConcept(name, c) => {
            let c = c.resolve(kb.schema_mut())?;
            kb.define_concept(name, c)?;
            Ok(Outcome::Ok)
        }
        Command::CreateInd(name) => {
            kb.create_ind(name)?;
            Ok(Outcome::Ok)
        }
        Command::AssertInd(name, c) => {
            let c = c.resolve(kb.schema_mut())?;
            let report = kb.assert_ind(name, &c)?;
            Ok(Outcome::Asserted(report))
        }
        Command::AssertRule(name, c) => {
            let c = c.resolve(kb.schema_mut())?;
            let ix = kb.assert_rule(name, c)?;
            Ok(Outcome::RuleAsserted(ix))
        }
        Command::RetractInd(name, c) => {
            let c = c.resolve(kb.schema_mut())?;
            let report = kb.retract_ind(name, &c)?;
            Ok(Outcome::Retracted(report))
        }
        Command::RetractRule(name, c) => {
            let c = c.resolve(kb.schema_mut())?;
            let report = kb.retract_rule(name, &c)?;
            Ok(Outcome::Retracted(report))
        }
        Command::RetractRuleById(ix) => {
            let report = kb.retract_rule_by_id(*ix)?;
            Ok(Outcome::Retracted(report))
        }
        Command::ListRules => {
            let symbols = &kb.schema().symbols;
            let lines: Vec<String> = kb
                .active_rules()
                .map(|(ix, r)| {
                    format!(
                        "#{ix}: {} => {}",
                        symbols.concept_name(r.antecedent),
                        r.consequent.display(symbols)
                    )
                })
                .collect();
            if lines.is_empty() {
                Ok(Outcome::Description("no live rules".into()))
            } else {
                Ok(Outcome::Description(lines.join("\n")))
            }
        }
        Command::ObsStats { json } => {
            let snap = kb.metrics().snapshot();
            Ok(Outcome::Description(if *json {
                classic_obs::render_json(&snap)
            } else {
                classic_obs::render_prometheus(&snap)
            }))
        }
        Command::ObsTrace(op) => {
            let recorder = kb.flight_recorder();
            if op == "*" {
                let mut lines: Vec<String> = recorder
                    .ops()
                    .into_iter()
                    .map(|(name, n)| format!("{name}: {n} trace(s) retained"))
                    .collect();
                lines.sort();
                return Ok(Outcome::Description(if lines.is_empty() {
                    no_traces_hint()
                } else {
                    lines.join("\n")
                }));
            }
            let traces = recorder.traces_for(op);
            if traces.is_empty() {
                return Ok(Outcome::Description(no_traces_hint()));
            }
            Ok(Outcome::Description(
                traces
                    .iter()
                    .map(|t| t.render())
                    .collect::<Vec<_>>()
                    .join("\n"),
            ))
        }
        Command::ObsReset => {
            kb.metrics().reset();
            kb.flight_recorder().clear();
            Ok(Outcome::Ok)
        }
        Command::ObsLevel(level) => {
            use classic_obs::ObsLevel;
            match level.as_deref() {
                None => {}
                Some("off") => {
                    classic_obs::set_level(ObsLevel::Off);
                }
                Some("counters") => {
                    classic_obs::set_level(ObsLevel::Counters);
                }
                Some("full") => {
                    classic_obs::set_level(ObsLevel::Full);
                }
                Some(other) => {
                    return Err(ClassicError::Malformed(format!(
                        "unknown obs level {other:?} (off, counters, full)"
                    )))
                }
            }
            Ok(Outcome::Description(format!(
                "obs level: {:?}",
                classic_obs::level()
            )))
        }
        Command::ObsSample(rate) => {
            if let Some(r) = rate {
                if !(0.0..=1.0).contains(r) {
                    return Err(ClassicError::Malformed(format!(
                        "sample rate must be in [0, 1], got {r}"
                    )));
                }
                classic_obs::set_sample_rate(*r);
            }
            Ok(Outcome::Description(format!(
                "obs sample rate: {}",
                classic_obs::sample_rate()
            )))
        }
        Command::ObsSlowlog(n) => Ok(Outcome::Description(
            classic_obs::global_slowlog()
                .render_text(n.unwrap_or(10))
                .trim_end()
                .to_string(),
        )),
        Command::Provenance(name) => {
            let iname = kb
                .schema()
                .symbols
                .find_individual(name)
                .ok_or_else(|| unknown_individual(kb, name))?;
            let id = kb.ind_id(iname)?;
            let lines = kb.explain_provenance(id);
            if lines.is_empty() {
                Ok(Outcome::Description(format!(
                    "{name}: no recorded derivations (identity only)"
                )))
            } else {
                Ok(Outcome::Description(lines.join("\n")))
            }
        }
        Command::Retrieve(q) => {
            let q = q.resolve(kb.schema_mut())?;
            if q.marker.is_empty() {
                let ans = Query::concept(q.concept)
                    .run(kb)?
                    .into_known()
                    .expect("a Known query yields Answer::Known");
                Ok(Outcome::Individuals(
                    ans.known
                        .into_iter()
                        .map(|id| {
                            kb.schema()
                                .symbols
                                .individual_name(kb.ind(id).name)
                                .to_owned()
                        })
                        .collect(),
                ))
            } else {
                let fillers = Query::marked(q)
                    .run(kb)?
                    .into_necessary_set()
                    .expect("a NecessarySet query yields Answer::NecessarySet");
                Ok(Outcome::Individuals(render_ind_refs(kb, &fillers)))
            }
        }
        Command::Possible(c) => {
            let c = c.resolve(kb.schema_mut())?;
            let ids = Query::concept(c)
                .possible()
                .run(kb)?
                .into_possible()
                .expect("a Possible query yields Answer::Possible");
            Ok(Outcome::Individuals(
                ids.into_iter()
                    .map(|id| {
                        kb.schema()
                            .symbols
                            .individual_name(kb.ind(id).name)
                            .to_owned()
                    })
                    .collect(),
            ))
        }
        Command::AskNecessarySet(q) => {
            let q = q.resolve(kb.schema_mut())?;
            let fillers = Query::marked(q)
                .run(kb)?
                .into_necessary_set()
                .expect("a NecessarySet query yields Answer::NecessarySet");
            Ok(Outcome::Individuals(render_ind_refs(kb, &fillers)))
        }
        Command::AskDescription(q) => {
            let q = q.resolve(kb.schema_mut())?;
            let nf = Query::marked(q)
                .description()
                .run(kb)?
                .into_description()
                .expect("a Description query yields Answer::Description");
            let c = nf.to_concept(kb.schema());
            Ok(Outcome::Description(
                c.display(&kb.schema().symbols).to_string(),
            ))
        }
        Command::Subsumes(a, b) => {
            let a = a.resolve(kb.schema_mut())?;
            let b = b.resolve(kb.schema_mut())?;
            let na = kb.normalize(&a)?;
            let nb = kb.normalize(&b)?;
            Ok(Outcome::Bool(classic_core::subsumes(&na, &nb)))
        }
        Command::Equivalent(a, b) => {
            let a = a.resolve(kb.schema_mut())?;
            let b = b.resolve(kb.schema_mut())?;
            let na = kb.normalize(&a)?;
            let nb = kb.normalize(&b)?;
            Ok(Outcome::Bool(classic_core::equivalent(&na, &nb)))
        }
        Command::Disjoint(a, b) => {
            let a = a.resolve(kb.schema_mut())?;
            let b = b.resolve(kb.schema_mut())?;
            let na = kb.normalize(&a)?;
            let nb = kb.normalize(&b)?;
            Ok(Outcome::Bool(classic_core::disjoint(&na, &nb, kb.schema())))
        }
        Command::ConceptAspect(name, kind, role) => {
            let cname = kb
                .schema()
                .symbols
                .find_concept(name)
                .ok_or_else(|| unknown_concept(kb, name))?;
            let role = resolve_role(kb, role.as_deref())?;
            let nf = kb.schema().concept_nf(cname)?;
            let aspect = classic_core::aspect::concept_aspect(nf, *kind, role);
            Ok(Outcome::Aspect(render_aspect(kb, &aspect)))
        }
        Command::IndAspect(name, kind, role) => {
            let iname = kb
                .schema()
                .symbols
                .find_individual(name)
                .ok_or_else(|| unknown_individual(kb, name))?;
            let id = kb.ind_id(iname)?;
            let role = resolve_role(kb, role.as_deref())?;
            let aspect = kb.ind_aspect(id, *kind, role);
            Ok(Outcome::Aspect(render_aspect(kb, &aspect)))
        }
        Command::Describe(name) => {
            let iname = kb
                .schema()
                .symbols
                .find_individual(name)
                .ok_or_else(|| unknown_individual(kb, name))?;
            let id = kb.ind_id(iname)?;
            let c = classic_query::describe(kb, id);
            Ok(Outcome::Description(
                c.display(&kb.schema().symbols).to_string(),
            ))
        }
        Command::Classify(c) => {
            let c = c.resolve(kb.schema_mut())?;
            let placement = kb.classify_concept(&c)?;
            let render = |kb: &Kb, names: &[classic_core::ConceptName]| -> Vec<String> {
                names
                    .iter()
                    .map(|&n| kb.schema().symbols.concept_name(n).to_owned())
                    .collect()
            };
            let mut lines = Vec::new();
            if !placement.equivalent.is_empty() {
                lines.push(format!(
                    "equivalent: {}",
                    render(kb, &placement.equivalent).join(" ")
                ));
            }
            lines.push(format!(
                "parents: {}",
                render(kb, &placement.parents).join(" ")
            ));
            lines.push(format!(
                "children: {}",
                render(kb, &placement.children).join(" ")
            ));
            Ok(Outcome::Description(lines.join("\n")))
        }
        Command::Why(ind_name, concept_name) => {
            let iname = kb
                .schema()
                .symbols
                .find_individual(ind_name)
                .ok_or_else(|| unknown_individual(kb, ind_name))?;
            let id = kb.ind_id(iname)?;
            let cname = kb
                .schema()
                .symbols
                .find_concept(concept_name)
                .ok_or_else(|| unknown_concept(kb, concept_name))?;
            let e = kb.explain_membership(id, cname)?;
            let verdict = if e.satisfied {
                format!("{ind_name} IS a {concept_name}:\n")
            } else {
                format!("{ind_name} is NOT provably a {concept_name}:\n")
            };
            Ok(Outcome::Description(format!("{verdict}{}", e.render())))
        }
        Command::WhatIf(name, c) => {
            let c = c.resolve(kb.schema_mut())?;
            match kb.what_if(name, &c) {
                Ok(report) => Ok(Outcome::Description(format!(
                    "would be ACCEPTED (steps={} fills={} corefs={} rules={} reclassified={}); nothing was changed",
                    report.steps,
                    report.fills_propagated,
                    report.corefs_derived,
                    report.rules_fired,
                    report.reclassified
                ))),
                Err(ClassicError::Inconsistent { reason, .. }) => Ok(Outcome::Description(
                    format!("would be REJECTED: {reason}; nothing was changed"),
                )),
                Err(other) => Err(other),
            }
        }
        Command::Parents(name) | Command::Children(name) => {
            let cname = kb
                .schema()
                .symbols
                .find_concept(name)
                .ok_or_else(|| unknown_concept(kb, name))?;
            let node = kb
                .taxonomy()
                .node_of(cname)
                .ok_or(ClassicError::UndefinedConcept(cname))?;
            let neighbors = if matches!(cmd, Command::Parents(_)) {
                &kb.taxonomy().node(node).parents
            } else {
                &kb.taxonomy().node(node).children
            };
            let mut names = Vec::new();
            for &n in neighbors {
                for &cn in &kb.taxonomy().node(n).names {
                    names.push(kb.schema().symbols.concept_name(cn).to_owned());
                }
                if n == classic_core::taxonomy::NodeId::TOP {
                    names.push("THING".to_owned());
                }
            }
            names.sort();
            names.dedup();
            Ok(Outcome::Concepts(names))
        }
        Command::BulkLoad(spec) => {
            let rows = resolve_bulk_rows(kb, spec)?;
            Ok(Outcome::BulkLoaded(kb.bulk_assert(&rows)))
        }
        Command::LintKb { .. } => {
            // One-shot evaluation holds no analysis state, so the full
            // report and the first cone coincide; `eval_monitored` (and
            // the server's per-tenant state) serve true cone deltas.
            let report = classic_analyze::analyze(kb);
            Ok(Outcome::Lint(LintReport::from(&report)))
        }
    }
}

/// Evaluate `cmd` while maintaining an incremental
/// [`classic_analyze::AnalysisState`] alongside the KB:
///
/// * `retract-ind` marks its analysis cone **before** evaluation (the
///   retraction removes the very dependency edges that define the cone);
/// * `assert-ind` marks its cone **after** evaluation (so fresh edges and
///   propagation targets are inside it);
/// * concept/rule changes and brand-new individuals are detected by the
///   state itself on the next refresh;
/// * `(lint-kb)` is answered from the state — refreshed in O(cone), full
///   report assembled from the caches; `(lint-kb cone)` returns only the
///   diagnostics the refresh re-derived, with `inds_checked` reporting
///   how many individuals were actually re-linted.
pub fn eval_monitored(
    kb: &mut Kb,
    cmd: &Command,
    state: &mut classic_analyze::AnalysisState,
) -> Result<Outcome> {
    if let Command::LintKb { cone } = cmd {
        let refresh = state.refresh(kb);
        return Ok(Outcome::Lint(if *cone {
            LintReport::from_refresh(&refresh)
        } else {
            LintReport::from(&state.report(kb))
        }));
    }
    if let Command::RetractInd(name, _) = cmd {
        mark_individual_dirty(kb, state, name);
    }
    let out = eval(kb, cmd)?;
    if let Command::AssertInd(name, _) = cmd {
        mark_individual_dirty(kb, state, name);
    }
    if let Command::BulkLoad(spec) = cmd {
        // Mark every row target (brand-new individuals are detected by
        // the state itself, but rows may extend pre-existing ones).
        let mut seen = std::collections::BTreeSet::new();
        for row in &spec.rows {
            if seen.insert(row.name.as_str()) {
                mark_individual_dirty(kb, state, &row.name);
            }
        }
    }
    Ok(out)
}

/// Mark the named individual's analysis cone dirty in `state`, if the
/// individual exists. Call *before* a retraction (the retraction removes
/// the dependency edges the cone is computed from) and *after* an
/// assertion (so fresh edges and propagation targets are inside it) —
/// [`eval_monitored`] does both; this is for callers that drive the KB
/// through another evaluation path (e.g. the server's durable log).
pub fn mark_individual_dirty(kb: &Kb, state: &mut classic_analyze::AnalysisState, name: &str) {
    if let Some(iname) = kb.schema().symbols.find_individual(name) {
        if let Ok(id) = kb.ind_id(iname) {
            state.mark_dirty(kb, &std::collections::BTreeSet::from([id]));
        }
    }
}

fn no_traces_hint() -> String {
    format!(
        "no traces retained (current obs level: {:?}; spans record at Full — try (obs-level full))",
        classic_obs::level()
    )
}

fn resolve_role(kb: &Kb, role: Option<&str>) -> Result<Option<classic_core::RoleId>> {
    match role {
        None => Ok(None),
        Some(r) => kb
            .schema()
            .symbols
            .find_role(r)
            .map(Some)
            .ok_or_else(|| unknown_role(kb, r)),
    }
}

fn render_ind_refs(kb: &Kb, refs: &[IndRef]) -> Vec<String> {
    refs.iter()
        .map(|r| match r {
            IndRef::Classic(n) => kb.schema().symbols.individual_name(*n).to_owned(),
            IndRef::Host(v) => v.to_string(),
        })
        .collect()
}

fn render_aspect(kb: &Kb, aspect: &classic_core::aspect::Aspect) -> AspectValue {
    use classic_core::aspect::Aspect;
    match aspect {
        Aspect::None => AspectValue::None,
        Aspect::Bound(n) => AspectValue::Bound(*n),
        Aspect::Closed(b) => AspectValue::Closed(*b),
        Aspect::Enumeration(v) | Aspect::Fillers(v) => AspectValue::Values(render_ind_refs(kb, v)),
        Aspect::ValueRestriction(nf) => AspectValue::Restriction(
            nf.to_concept(kb.schema())
                .display(&kb.schema().symbols)
                .to_string(),
        ),
    }
}

/// Parse then evaluate each command in `input`, returning all outcomes.
/// Macro-free; for scripts using `define-macro`, use [`Session`].
pub fn run_script(kb: &mut Kb, input: &str) -> Result<Vec<Outcome>> {
    let commands = parse(input)?;
    commands.iter().map(|c| eval(kb, c)).collect()
}

/// A stateful interpreter session: a knowledge base plus the macro table
/// of §2.1.4's anticipated "macro-definition facility". `define-macro`
/// forms register syntactic templates; every other command is
/// macro-expanded before parsing.
///
/// ```
/// use classic_lang::{Outcome, Session};
///
/// let mut s = Session::new();
/// let out = s.run(r#"
///     (define-macro EXACTLY-ONE (r) (AND (AT-LEAST 1 r) (AT-MOST 1 r)))
///     (define-role wheel)
///     (equivalent? (EXACTLY-ONE wheel)
///                  (AND (AT-LEAST 1 wheel) (AT-MOST 1 wheel)))
/// "#)?;
/// assert_eq!(out.last().unwrap(), &Outcome::Bool(true));
/// # Ok::<(), classic_core::ClassicError>(())
/// ```
#[derive(Default)]
pub struct Session {
    /// The knowledge base the session operates on.
    pub kb: Kb,
    macros: crate::macros::MacroTable,
}

impl Session {
    /// A fresh session over an empty knowledge base.
    pub fn new() -> Session {
        Session::default()
    }

    /// A session over an existing knowledge base.
    pub fn with_kb(kb: Kb) -> Session {
        Session {
            kb,
            macros: crate::macros::MacroTable::new(),
        }
    }

    /// Names of the macros defined so far.
    pub fn macro_names(&self) -> Vec<&str> {
        self.macros.names().collect()
    }

    /// Run a script: `define-macro` forms extend the macro table, all
    /// other commands are expanded and evaluated in order.
    pub fn run(&mut self, input: &str) -> Result<Vec<Outcome>> {
        let tokens = tokenize(input)?;
        let mut outcomes = Vec::new();
        for form in split_forms(&tokens)? {
            let is_define_macro = matches!(
                form.get(1).map(|t| &t.kind),
                Some(TokenKind::Symbol(s)) if s == "define-macro"
            );
            if is_define_macro {
                self.macros.define_from_tokens(form)?;
                outcomes.push(Outcome::Ok);
                continue;
            }
            let expanded = self.macros.expand(form.to_vec())?;
            let cmd = parse_command_tokens(&expanded)?;
            outcomes.push(eval(&mut self.kb, &cmd)?);
        }
        Ok(outcomes)
    }
}

/// Split a token stream into top-level balanced forms.
fn split_forms(tokens: &[Token]) -> Result<Vec<&[Token]>> {
    let mut forms = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::LParen => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            TokenKind::RParen => {
                if depth == 0 {
                    return Err(ClassicError::Malformed(format!(
                        "{}: unbalanced ')'",
                        t.pos
                    )));
                }
                depth -= 1;
                if depth == 0 {
                    forms.push(&tokens[start..=i]);
                }
            }
            _ if depth == 0 => {
                return Err(ClassicError::Malformed(format!(
                    "{}: expected '(' to start a command",
                    t.pos
                )))
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(ClassicError::Malformed("unbalanced '('".into()));
    }
    Ok(forms)
}
