//! The operator language: parsed commands and their evaluation against a
//! knowledge base.
//!
//! This is the "simple and uniform interface" of paper §6: "through the
//! use of multiple operators, a single language is used to specify the
//! schema (including integrity constraints), the information added to the
//! database, and the queries to it". Commands are written as
//! s-expressions, e.g.:
//!
//! ```text
//! (define-role thing-driven)
//! (define-concept RICH-KID (AND STUDENT (ALL thing-driven SPORTS-CAR)
//!                                (AT-LEAST 2 thing-driven)))
//! (create-ind Rocky)
//! (assert-ind Rocky (FILLS thing-driven Volvo-17))
//! (assert-rule STUDENT (ALL eat JUNK-FOOD))
//! (retrieve (AND STUDENT (AT-LEAST 2 thing-driven)))
//! (ask-description (AND STUDENT (ALL eat ?:THING)))
//! (subsumes? PERSON STUDENT)
//! ```
//!
//! The same command stream doubles as the persistence format
//! (`classic-store`), honoring the paper's point that one language plays
//! every role.

use crate::lexer::{tokenize, Token, TokenKind};
use crate::parser::Parser;
use classic_core::aspect::AspectKind;
use classic_core::desc::{Concept, IndRef};
use classic_core::error::{ClassicError, Result};
use classic_kb::{AssertReport, Kb, RetractReport};
use classic_query::{MarkedQuery, Query};

/// A parsed top-level command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `(define-role name)` (§3.1).
    DefineRole(String),
    /// `(define-attribute name)`: a single-valued role.
    DefineAttribute(String),
    /// `(define-concept NAME expr)` (§3.1).
    DefineConcept(String, Concept),
    /// `(create-ind Name)` (§3.2).
    CreateInd(String),
    /// `(assert-ind Name expr)` (§3.2).
    AssertInd(String, Concept),
    /// `(assert-rule NAME expr)` (§3.3).
    AssertRule(String, Concept),
    /// `(retract-ind Name expr)`: remove a told description and re-derive
    /// everything that depended on it.
    RetractInd(String, Concept),
    /// `(retract-rule NAME expr)`: retire a rule and re-derive the
    /// individuals it fired on.
    RetractRule(String, Concept),
    /// `(retract-rule 7)`: retire a rule by the id echoed when it was
    /// asserted (`list-rules` shows the live ids).
    RetractRuleById(usize),
    /// `(list-rules)`: every live rule with its id, antecedent, and
    /// consequent.
    ListRules,
    /// `(obs-stats)` / `(obs-stats json)`: dump this KB's metric
    /// registry in Prometheus text or JSON exposition format.
    ObsStats {
        /// Render JSON instead of Prometheus text.
        json: bool,
    },
    /// `(obs-trace op)`: render the flight recorder's retained traces
    /// whose root span matches `op` (e.g. `kb.assert`,
    /// `query.retrieve`); `(obs-trace *)` lists the retained ops.
    ObsTrace(String),
    /// `(obs-reset)`: zero every metric series and clear the flight
    /// recorder.
    ObsReset,
    /// `(obs-level off|counters|full)`: set the process-wide
    /// observability level (`full` enables span tracing for
    /// `obs-trace`); `(obs-level)` reports the current one.
    ObsLevel(Option<String>),
    /// `(provenance Name)`: where the individual's derived information
    /// came from (the dependency journal, rendered).
    Provenance(String),
    /// `(retrieve q)` / `(instances q)`: known answers.
    Retrieve(MarkedQuery),
    /// `(possible q)`: open-world possible answers.
    Possible(Concept),
    /// `(ask-necessary-set q)`: fillers at the marker across answers.
    AskNecessarySet(MarkedQuery),
    /// `(ask-description q)`: intensional answer.
    AskDescription(MarkedQuery),
    /// `(subsumes? C1 C2)`.
    Subsumes(Concept, Concept),
    /// `(equivalent? C1 C2)`.
    Equivalent(Concept, Concept),
    /// `(disjoint? C1 C2)`.
    Disjoint(Concept, Concept),
    /// `(concept-aspect NAME KIND [role])`.
    ConceptAspect(String, AspectKind, Option<String>),
    /// `(ind-aspect Name KIND [role])`.
    IndAspect(String, AspectKind, Option<String>),
    /// `(describe Name)`: descriptive answer for one individual.
    Describe(String),
    /// `(parents NAME)`: immediate subsumers in the taxonomy.
    Parents(String),
    /// `(children NAME)`: immediate subsumees in the taxonomy.
    Children(String),
    /// `(classify expr)`: immediate named parents/children/equivalents of
    /// an arbitrary concept expression (§3.5.1).
    Classify(Concept),
    /// `(why? Ind NAME)`: explain why the individual is or is not
    /// recognized under the named concept (the explanation extension).
    Why(String, String),
    /// `(what-if? Ind expr)`: hypothetical assertion — report whether the
    /// update would be accepted and what it would derive, then roll it
    /// back unconditionally.
    WhatIf(String, Concept),
    /// `(lint-kb)`: run the static analyzer (`classic-analyze`) over the
    /// schema and rule base — incoherent definitions, definition cycles,
    /// dead/shadowed/entailed rules, redundant conjuncts.
    LintKb,
}

/// The result of evaluating one command.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Nothing to report (DDL, create).
    Ok,
    /// An accepted rule, with the id `retract-rule` takes back.
    RuleAsserted(usize),
    /// An accepted assertion, with its propagation report.
    Asserted(AssertReport),
    /// An accepted retraction, with its re-derivation report.
    Retracted(RetractReport),
    /// A list of individual names / host values.
    Individuals(Vec<String>),
    /// A yes/no answer.
    Bool(bool),
    /// A description rendered in the surface syntax.
    Description(String),
    /// A list of concept names.
    Concepts(Vec<String>),
    /// An aspect value rendered as text.
    Aspect(String),
    /// A static-analysis report (`lint-kb`).
    Lint {
        /// The report rendered for display, one diagnostic per paragraph.
        rendered: String,
        /// Number of error-severity findings.
        errors: usize,
        /// Number of warning-severity findings.
        warnings: usize,
    },
}

/// Split an input string into top-level s-expressions and parse each as a
/// command. Used by the REPL and the persistence log reader.
pub fn parse_commands(input: &str, kb: &mut Kb) -> Result<Vec<Command>> {
    let tokens = tokenize(input)?;
    let mut commands = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::LParen => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            TokenKind::RParen => {
                if depth == 0 {
                    return Err(ClassicError::Malformed(format!(
                        "{}: unbalanced ')'",
                        t.pos
                    )));
                }
                depth -= 1;
                if depth == 0 {
                    commands.push(parse_command_tokens(&tokens[start..=i], kb)?);
                }
            }
            _ if depth == 0 => {
                return Err(ClassicError::Malformed(format!(
                    "{}: expected '(' to start a command",
                    t.pos
                )))
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(ClassicError::Malformed("unbalanced '('".into()));
    }
    Ok(commands)
}

/// Parse a single command from text.
pub fn parse_command(input: &str, kb: &mut Kb) -> Result<Command> {
    let mut cmds = parse_commands(input, kb)?;
    match cmds.len() {
        1 => Ok(cmds.pop().expect("one command")),
        n => Err(ClassicError::Malformed(format!(
            "expected exactly one command, found {n}"
        ))),
    }
}

fn parse_command_tokens(tokens: &[Token], kb: &mut Kb) -> Result<Command> {
    // Reconstruct the source slice for sub-parsers: simplest robust path
    // is re-rendering tokens, but we can parse directly from the token
    // window instead by locating the operator and argument boundaries.
    let mut w = TokenWindow { tokens, ix: 0 };
    w.expect(&TokenKind::LParen)?;
    let op = w.symbol()?;
    let cmd = match op.as_str() {
        "define-role" => Command::DefineRole(w.symbol()?),
        "define-attribute" => Command::DefineAttribute(w.symbol()?),
        "define-concept" => {
            let name = w.symbol()?;
            let c = w.concept(kb, false)?;
            Command::DefineConcept(name, c)
        }
        "create-ind" => Command::CreateInd(w.symbol()?),
        "assert-ind" => {
            let name = w.symbol()?;
            let c = w.concept(kb, false)?;
            Command::AssertInd(name, c)
        }
        "assert-rule" => {
            let name = w.symbol()?;
            let c = w.concept(kb, false)?;
            Command::AssertRule(name, c)
        }
        "retract-ind" => {
            let name = w.symbol()?;
            let c = w.concept(kb, false)?;
            Command::RetractInd(name, c)
        }
        "retract-rule" => match w.optional_int() {
            Some(ix) if ix >= 0 => Command::RetractRuleById(ix as usize),
            Some(ix) => {
                return Err(ClassicError::Malformed(format!(
                    "rule ids are non-negative, got {ix}"
                )))
            }
            None => {
                let name = w.symbol()?;
                let c = w.concept(kb, false)?;
                Command::RetractRule(name, c)
            }
        },
        "list-rules" => Command::ListRules,
        "obs-stats" => Command::ObsStats {
            json: matches!(w.optional_symbol().as_deref(), Some("json")),
        },
        "obs-trace" => Command::ObsTrace(w.symbol()?),
        "obs-reset" => Command::ObsReset,
        "obs-level" => Command::ObsLevel(w.optional_symbol()),
        "provenance" => Command::Provenance(w.symbol()?),
        "retrieve" | "instances" => {
            let q = w.query(kb)?;
            Command::Retrieve(q)
        }
        "possible" => Command::Possible(w.concept(kb, false)?),
        "ask-necessary-set" => Command::AskNecessarySet(w.query(kb)?),
        "ask-description" => Command::AskDescription(w.query(kb)?),
        "subsumes?" => {
            let a = w.concept(kb, false)?;
            let b = w.concept(kb, false)?;
            Command::Subsumes(a, b)
        }
        "equivalent?" => {
            let a = w.concept(kb, false)?;
            let b = w.concept(kb, false)?;
            Command::Equivalent(a, b)
        }
        "disjoint?" => {
            let a = w.concept(kb, false)?;
            let b = w.concept(kb, false)?;
            Command::Disjoint(a, b)
        }
        "concept-aspect" => {
            let name = w.symbol()?;
            let kind = w.aspect_kind()?;
            let role = w.optional_symbol();
            Command::ConceptAspect(name, kind, role)
        }
        "ind-aspect" => {
            let name = w.symbol()?;
            let kind = w.aspect_kind()?;
            let role = w.optional_symbol();
            Command::IndAspect(name, kind, role)
        }
        "describe" => Command::Describe(w.symbol()?),
        "classify" => Command::Classify(w.concept(kb, false)?),
        "why?" => {
            let ind = w.symbol()?;
            let concept = w.symbol()?;
            Command::Why(ind, concept)
        }
        "what-if?" => {
            let ind = w.symbol()?;
            let c = w.concept(kb, false)?;
            Command::WhatIf(ind, c)
        }
        "parents" => Command::Parents(w.symbol()?),
        "children" => Command::Children(w.symbol()?),
        "lint-kb" => Command::LintKb,
        other => {
            return Err(ClassicError::Malformed(format!(
                "unknown operator {other:?}"
            )))
        }
    };
    w.expect(&TokenKind::RParen)?;
    w.expect_end()?;
    Ok(cmd)
}

/// Minimal cursor over a token window, delegating concept parsing to
/// [`Parser`] by re-rendering the sub-span.
struct TokenWindow<'a> {
    tokens: &'a [Token],
    ix: usize,
}

impl TokenWindow<'_> {
    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        match self.tokens.get(self.ix) {
            Some(t) if t.kind == *kind => {
                self.ix += 1;
                Ok(())
            }
            Some(t) => Err(ClassicError::Malformed(format!(
                "{}: expected {kind:?}, found {:?}",
                t.pos, t.kind
            ))),
            None => Err(ClassicError::Malformed("unexpected end of command".into())),
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        if self.ix == self.tokens.len() {
            Ok(())
        } else {
            Err(ClassicError::Malformed(
                "trailing tokens after command".into(),
            ))
        }
    }

    fn symbol(&mut self) -> Result<String> {
        match self.tokens.get(self.ix) {
            Some(Token {
                kind: TokenKind::Symbol(s),
                ..
            }) => {
                self.ix += 1;
                Ok(s.clone())
            }
            Some(t) => Err(ClassicError::Malformed(format!(
                "{}: expected a name, found {:?}",
                t.pos, t.kind
            ))),
            None => Err(ClassicError::Malformed("unexpected end of command".into())),
        }
    }

    fn optional_int(&mut self) -> Option<i64> {
        match self.tokens.get(self.ix) {
            Some(Token {
                kind: TokenKind::Int(i),
                ..
            }) => {
                self.ix += 1;
                Some(*i)
            }
            _ => None,
        }
    }

    fn optional_symbol(&mut self) -> Option<String> {
        match self.tokens.get(self.ix) {
            Some(Token {
                kind: TokenKind::Symbol(s),
                ..
            }) => {
                self.ix += 1;
                Some(s.clone())
            }
            _ => None,
        }
    }

    fn aspect_kind(&mut self) -> Result<AspectKind> {
        let s = self.symbol()?;
        Ok(match s.as_str() {
            "ONE-OF" => AspectKind::OneOf,
            "ALL" => AspectKind::All,
            "AT-LEAST" => AspectKind::AtLeast,
            "AT-MOST" => AspectKind::AtMost,
            "FILLS" => AspectKind::Fills,
            "CLOSE" => AspectKind::Close,
            other => {
                return Err(ClassicError::Malformed(format!(
                    "unknown aspect kind {other:?}"
                )))
            }
        })
    }

    /// The span of the next complete expression (symbol or balanced
    /// parenthesis group, with optional leading marker).
    fn expression_span(&self) -> Result<(usize, usize)> {
        let mut ix = self.ix;
        if matches!(
            self.tokens.get(ix),
            Some(Token {
                kind: TokenKind::Marker,
                ..
            })
        ) {
            ix += 1;
        }
        match self.tokens.get(ix) {
            Some(Token {
                kind: TokenKind::LParen,
                ..
            }) => {
                let mut depth = 0usize;
                let mut end = ix;
                for (off, t) in self.tokens[ix..].iter().enumerate() {
                    match t.kind {
                        TokenKind::LParen => depth += 1,
                        TokenKind::RParen => {
                            depth -= 1;
                            if depth == 0 {
                                end = ix + off;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if depth != 0 && end == ix {
                    return Err(ClassicError::Malformed("unbalanced expression".into()));
                }
                Ok((self.ix, end + 1))
            }
            Some(_) => Ok((self.ix, ix + 1)),
            None => Err(ClassicError::Malformed("expected an expression".into())),
        }
    }

    fn render(&self, span: (usize, usize)) -> String {
        let mut out = String::new();
        for t in &self.tokens[span.0..span.1] {
            match &t.kind {
                TokenKind::LParen => out.push('('),
                TokenKind::RParen => {
                    // Trim a space before ')'.
                    if out.ends_with(' ') {
                        out.pop();
                    }
                    out.push_str(") ");
                    continue;
                }
                TokenKind::Symbol(s) => out.push_str(s),
                TokenKind::Int(i) => out.push_str(&i.to_string()),
                TokenKind::Float(v) => out.push_str(&v.to_string()),
                TokenKind::Str(s) => {
                    out.push('"');
                    out.push_str(&s.replace('\\', "\\\\").replace('"', "\\\""));
                    out.push('"');
                }
                TokenKind::QuotedSym(s) => {
                    out.push('\'');
                    out.push_str(s);
                }
                TokenKind::Marker => {
                    out.push_str("?:");
                    continue;
                }
            }
            if !matches!(t.kind, TokenKind::LParen) {
                out.push(' ');
            }
        }
        out.trim_end().to_owned()
    }

    fn concept(&mut self, kb: &mut Kb, _allow_marker: bool) -> Result<Concept> {
        let span = self.expression_span()?;
        let text = self.render(span);
        self.ix = span.1;
        Parser::parse_concept_complete(&text, kb.schema_mut())
    }

    fn query(&mut self, kb: &mut Kb) -> Result<MarkedQuery> {
        let span = self.expression_span()?;
        let text = self.render(span);
        self.ix = span.1;
        Parser::parse_query_complete(&text, kb.schema_mut())
    }
}

/// Evaluate a parsed command against a knowledge base.
pub fn eval(kb: &mut Kb, cmd: &Command) -> Result<Outcome> {
    match cmd {
        Command::DefineRole(name) => {
            kb.define_role(name)?;
            Ok(Outcome::Ok)
        }
        Command::DefineAttribute(name) => {
            kb.define_attribute(name)?;
            Ok(Outcome::Ok)
        }
        Command::DefineConcept(name, c) => {
            kb.define_concept(name, c.clone())?;
            Ok(Outcome::Ok)
        }
        Command::CreateInd(name) => {
            kb.create_ind(name)?;
            Ok(Outcome::Ok)
        }
        Command::AssertInd(name, c) => {
            let report = kb.assert_ind(name, c)?;
            Ok(Outcome::Asserted(report))
        }
        Command::AssertRule(name, c) => {
            let ix = kb.assert_rule(name, c.clone())?;
            Ok(Outcome::RuleAsserted(ix))
        }
        Command::RetractInd(name, c) => {
            let report = kb.retract_ind(name, c)?;
            Ok(Outcome::Retracted(report))
        }
        Command::RetractRule(name, c) => {
            let report = kb.retract_rule(name, c)?;
            Ok(Outcome::Retracted(report))
        }
        Command::RetractRuleById(ix) => {
            let report = kb.retract_rule_by_id(*ix)?;
            Ok(Outcome::Retracted(report))
        }
        Command::ListRules => {
            let symbols = &kb.schema().symbols;
            let lines: Vec<String> = kb
                .active_rules()
                .map(|(ix, r)| {
                    format!(
                        "#{ix}: {} => {}",
                        symbols.concept_name(r.antecedent),
                        r.consequent.display(symbols)
                    )
                })
                .collect();
            if lines.is_empty() {
                Ok(Outcome::Description("no live rules".into()))
            } else {
                Ok(Outcome::Description(lines.join("\n")))
            }
        }
        Command::ObsStats { json } => {
            let snap = kb.metrics().snapshot();
            Ok(Outcome::Description(if *json {
                classic_obs::render_json(&snap)
            } else {
                classic_obs::render_prometheus(&snap)
            }))
        }
        Command::ObsTrace(op) => {
            let recorder = kb.flight_recorder();
            if op == "*" {
                let mut lines: Vec<String> = recorder
                    .ops()
                    .into_iter()
                    .map(|(name, n)| format!("{name}: {n} trace(s) retained"))
                    .collect();
                lines.sort();
                return Ok(Outcome::Description(if lines.is_empty() {
                    no_traces_hint()
                } else {
                    lines.join("\n")
                }));
            }
            let traces = recorder.traces_for(op);
            if traces.is_empty() {
                return Ok(Outcome::Description(no_traces_hint()));
            }
            Ok(Outcome::Description(
                traces
                    .iter()
                    .map(|t| t.render())
                    .collect::<Vec<_>>()
                    .join("\n"),
            ))
        }
        Command::ObsReset => {
            kb.metrics().reset();
            kb.flight_recorder().clear();
            Ok(Outcome::Ok)
        }
        Command::ObsLevel(level) => {
            use classic_obs::ObsLevel;
            match level.as_deref() {
                None => {}
                Some("off") => {
                    classic_obs::set_level(ObsLevel::Off);
                }
                Some("counters") => {
                    classic_obs::set_level(ObsLevel::Counters);
                }
                Some("full") => {
                    classic_obs::set_level(ObsLevel::Full);
                }
                Some(other) => {
                    return Err(ClassicError::Malformed(format!(
                        "unknown obs level {other:?} (off, counters, full)"
                    )))
                }
            }
            Ok(Outcome::Description(format!(
                "obs level: {:?}",
                classic_obs::level()
            )))
        }
        Command::Provenance(name) => {
            let iname = kb
                .schema()
                .symbols
                .find_individual(name)
                .ok_or_else(|| ClassicError::Malformed(format!("unknown individual {name:?}")))?;
            let id = kb.ind_id(iname)?;
            let lines = kb.explain_provenance(id);
            if lines.is_empty() {
                Ok(Outcome::Description(format!(
                    "{name}: no recorded derivations (identity only)"
                )))
            } else {
                Ok(Outcome::Description(lines.join("\n")))
            }
        }
        Command::Retrieve(q) => {
            if q.marker.is_empty() {
                let ans = Query::concept(q.concept.clone())
                    .run(kb)?
                    .into_known()
                    .expect("a Known query yields Answer::Known");
                Ok(Outcome::Individuals(
                    ans.known
                        .into_iter()
                        .map(|id| {
                            kb.schema()
                                .symbols
                                .individual_name(kb.ind(id).name)
                                .to_owned()
                        })
                        .collect(),
                ))
            } else {
                let fillers = Query::marked(q.clone())
                    .run(kb)?
                    .into_necessary_set()
                    .expect("a NecessarySet query yields Answer::NecessarySet");
                Ok(Outcome::Individuals(render_ind_refs(kb, &fillers)))
            }
        }
        Command::Possible(c) => {
            let ids = Query::concept(c.clone())
                .possible()
                .run(kb)?
                .into_possible()
                .expect("a Possible query yields Answer::Possible");
            Ok(Outcome::Individuals(
                ids.into_iter()
                    .map(|id| {
                        kb.schema()
                            .symbols
                            .individual_name(kb.ind(id).name)
                            .to_owned()
                    })
                    .collect(),
            ))
        }
        Command::AskNecessarySet(q) => {
            let fillers = Query::marked(q.clone())
                .run(kb)?
                .into_necessary_set()
                .expect("a NecessarySet query yields Answer::NecessarySet");
            Ok(Outcome::Individuals(render_ind_refs(kb, &fillers)))
        }
        Command::AskDescription(q) => {
            let nf = Query::marked(q.clone())
                .description()
                .run(kb)?
                .into_description()
                .expect("a Description query yields Answer::Description");
            let c = nf.to_concept(kb.schema());
            Ok(Outcome::Description(
                c.display(&kb.schema().symbols).to_string(),
            ))
        }
        Command::Subsumes(a, b) => {
            let na = kb.normalize(a)?;
            let nb = kb.normalize(b)?;
            Ok(Outcome::Bool(classic_core::subsumes(&na, &nb)))
        }
        Command::Equivalent(a, b) => {
            let na = kb.normalize(a)?;
            let nb = kb.normalize(b)?;
            Ok(Outcome::Bool(classic_core::equivalent(&na, &nb)))
        }
        Command::Disjoint(a, b) => {
            let na = kb.normalize(a)?;
            let nb = kb.normalize(b)?;
            Ok(Outcome::Bool(classic_core::disjoint(&na, &nb, kb.schema())))
        }
        Command::ConceptAspect(name, kind, role) => {
            let cname = kb
                .schema()
                .symbols
                .find_concept(name)
                .ok_or_else(|| ClassicError::Malformed(format!("unknown concept {name:?}")))?;
            let role = resolve_role(kb, role.as_deref())?;
            let nf = kb.schema().concept_nf(cname)?;
            let aspect = classic_core::aspect::concept_aspect(nf, *kind, role);
            Ok(Outcome::Aspect(render_aspect(kb, &aspect)))
        }
        Command::IndAspect(name, kind, role) => {
            let iname = kb
                .schema()
                .symbols
                .find_individual(name)
                .ok_or_else(|| ClassicError::Malformed(format!("unknown individual {name:?}")))?;
            let id = kb.ind_id(iname)?;
            let role = resolve_role(kb, role.as_deref())?;
            let aspect = kb.ind_aspect(id, *kind, role);
            Ok(Outcome::Aspect(render_aspect(kb, &aspect)))
        }
        Command::Describe(name) => {
            let iname = kb
                .schema()
                .symbols
                .find_individual(name)
                .ok_or_else(|| ClassicError::Malformed(format!("unknown individual {name:?}")))?;
            let id = kb.ind_id(iname)?;
            let c = classic_query::describe(kb, id);
            Ok(Outcome::Description(
                c.display(&kb.schema().symbols).to_string(),
            ))
        }
        Command::Classify(c) => {
            let placement = kb.classify_concept(c)?;
            let render = |kb: &Kb, names: &[classic_core::ConceptName]| -> Vec<String> {
                names
                    .iter()
                    .map(|&n| kb.schema().symbols.concept_name(n).to_owned())
                    .collect()
            };
            let mut lines = Vec::new();
            if !placement.equivalent.is_empty() {
                lines.push(format!(
                    "equivalent: {}",
                    render(kb, &placement.equivalent).join(" ")
                ));
            }
            lines.push(format!("parents: {}", render(kb, &placement.parents).join(" ")));
            lines.push(format!(
                "children: {}",
                render(kb, &placement.children).join(" ")
            ));
            Ok(Outcome::Description(lines.join("\n")))
        }
        Command::Why(ind_name, concept_name) => {
            let iname = kb
                .schema()
                .symbols
                .find_individual(ind_name)
                .ok_or_else(|| {
                    ClassicError::Malformed(format!("unknown individual {ind_name:?}"))
                })?;
            let id = kb.ind_id(iname)?;
            let cname = kb
                .schema()
                .symbols
                .find_concept(concept_name)
                .ok_or_else(|| {
                    ClassicError::Malformed(format!("unknown concept {concept_name:?}"))
                })?;
            let e = kb.explain_membership(id, cname)?;
            let verdict = if e.satisfied {
                format!("{ind_name} IS a {concept_name}:\n")
            } else {
                format!("{ind_name} is NOT provably a {concept_name}:\n")
            };
            Ok(Outcome::Description(format!("{verdict}{}", e.render())))
        }
        Command::WhatIf(name, c) => match kb.what_if(name, c) {
            Ok(report) => Ok(Outcome::Description(format!(
                "would be ACCEPTED (steps={} fills={} corefs={} rules={} reclassified={}); nothing was changed",
                report.steps,
                report.fills_propagated,
                report.corefs_derived,
                report.rules_fired,
                report.reclassified
            ))),
            Err(ClassicError::Inconsistent { reason, .. }) => Ok(Outcome::Description(
                format!("would be REJECTED: {reason}; nothing was changed"),
            )),
            Err(other) => Err(other),
        },
        Command::Parents(name) | Command::Children(name) => {
            let cname = kb
                .schema()
                .symbols
                .find_concept(name)
                .ok_or_else(|| ClassicError::Malformed(format!("unknown concept {name:?}")))?;
            let node = kb
                .taxonomy()
                .node_of(cname)
                .ok_or(ClassicError::UndefinedConcept(cname))?;
            let neighbors = if matches!(cmd, Command::Parents(_)) {
                &kb.taxonomy().node(node).parents
            } else {
                &kb.taxonomy().node(node).children
            };
            let mut names = Vec::new();
            for &n in neighbors {
                for &cn in &kb.taxonomy().node(n).names {
                    names.push(kb.schema().symbols.concept_name(cn).to_owned());
                }
                if n == classic_core::taxonomy::NodeId::TOP {
                    names.push("THING".to_owned());
                }
            }
            names.sort();
            names.dedup();
            Ok(Outcome::Concepts(names))
        }
        Command::LintKb => {
            let report = classic_analyze::analyze(kb);
            Ok(Outcome::Lint {
                errors: report.count(classic_analyze::Severity::Error),
                warnings: report.count(classic_analyze::Severity::Warning),
                rendered: report.render(),
            })
        }
    }
}

fn no_traces_hint() -> String {
    format!(
        "no traces retained (current obs level: {:?}; spans record at Full — try (obs-level full))",
        classic_obs::level()
    )
}

fn resolve_role(kb: &Kb, role: Option<&str>) -> Result<Option<classic_core::RoleId>> {
    match role {
        None => Ok(None),
        Some(r) => kb
            .schema()
            .symbols
            .find_role(r)
            .map(Some)
            .ok_or_else(|| ClassicError::Malformed(format!("unknown role {r:?}"))),
    }
}

fn render_ind_refs(kb: &Kb, refs: &[IndRef]) -> Vec<String> {
    refs.iter()
        .map(|r| match r {
            IndRef::Classic(n) => kb.schema().symbols.individual_name(*n).to_owned(),
            IndRef::Host(v) => v.to_string(),
        })
        .collect()
}

fn render_aspect(kb: &Kb, aspect: &classic_core::aspect::Aspect) -> String {
    use classic_core::aspect::Aspect;
    match aspect {
        Aspect::None => "none".to_owned(),
        Aspect::Bound(n) => n.to_string(),
        Aspect::Closed(b) => b.to_string(),
        Aspect::Enumeration(v) | Aspect::Fillers(v) => {
            let names = render_ind_refs(kb, v);
            format!("({})", names.join(" "))
        }
        Aspect::ValueRestriction(nf) => nf
            .to_concept(kb.schema())
            .display(&kb.schema().symbols)
            .to_string(),
    }
}

/// Parse then evaluate each command in `input`, returning all outcomes.
/// Macro-free; for scripts using `define-macro`, use [`Session`].
pub fn run_script(kb: &mut Kb, input: &str) -> Result<Vec<Outcome>> {
    let commands = parse_commands(input, kb)?;
    commands.iter().map(|c| eval(kb, c)).collect()
}

/// A stateful interpreter session: a knowledge base plus the macro table
/// of §2.1.4's anticipated "macro-definition facility". `define-macro`
/// forms register syntactic templates; every other command is
/// macro-expanded before parsing.
///
/// ```
/// use classic_lang::{Outcome, Session};
///
/// let mut s = Session::new();
/// let out = s.run(r#"
///     (define-macro EXACTLY-ONE (r) (AND (AT-LEAST 1 r) (AT-MOST 1 r)))
///     (define-role wheel)
///     (equivalent? (EXACTLY-ONE wheel)
///                  (AND (AT-LEAST 1 wheel) (AT-MOST 1 wheel)))
/// "#)?;
/// assert_eq!(out.last().unwrap(), &Outcome::Bool(true));
/// # Ok::<(), classic_core::ClassicError>(())
/// ```
#[derive(Default)]
pub struct Session {
    /// The knowledge base the session operates on.
    pub kb: Kb,
    macros: crate::macros::MacroTable,
}

impl Session {
    /// A fresh session over an empty knowledge base.
    pub fn new() -> Session {
        Session::default()
    }

    /// A session over an existing knowledge base.
    pub fn with_kb(kb: Kb) -> Session {
        Session {
            kb,
            macros: crate::macros::MacroTable::new(),
        }
    }

    /// Names of the macros defined so far.
    pub fn macro_names(&self) -> Vec<&str> {
        self.macros.names().collect()
    }

    /// Run a script: `define-macro` forms extend the macro table, all
    /// other commands are expanded and evaluated in order.
    pub fn run(&mut self, input: &str) -> Result<Vec<Outcome>> {
        let tokens = tokenize(input)?;
        let mut outcomes = Vec::new();
        for form in split_forms(&tokens)? {
            let is_define_macro = matches!(
                form.get(1).map(|t| &t.kind),
                Some(TokenKind::Symbol(s)) if s == "define-macro"
            );
            if is_define_macro {
                self.macros.define_from_tokens(form)?;
                outcomes.push(Outcome::Ok);
                continue;
            }
            let expanded = self.macros.expand(form.to_vec())?;
            let cmd = parse_command_tokens(&expanded, &mut self.kb)?;
            outcomes.push(eval(&mut self.kb, &cmd)?);
        }
        Ok(outcomes)
    }
}

/// Split a token stream into top-level balanced forms.
fn split_forms(tokens: &[Token]) -> Result<Vec<&[Token]>> {
    let mut forms = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::LParen => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            TokenKind::RParen => {
                if depth == 0 {
                    return Err(ClassicError::Malformed(format!(
                        "{}: unbalanced ')'",
                        t.pos
                    )));
                }
                depth -= 1;
                if depth == 0 {
                    forms.push(&tokens[start..=i]);
                }
            }
            _ if depth == 0 => {
                return Err(ClassicError::Malformed(format!(
                    "{}: expected '(' to start a command",
                    t.pos
                )))
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(ClassicError::Malformed("unbalanced '('".into()));
    }
    Ok(forms)
}
