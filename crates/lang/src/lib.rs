//! # classic-lang
//!
//! The concrete surface syntax of the CLASSIC reproduction: a tokenizer
//! and recursive-descent parser for the concept grammar of the paper's
//! Appendix A, the `?:`-marked query form of §3.5.3, and the operator
//! command language of §3 (`define-role`, `define-concept`, `create-ind`,
//! `assert-ind`, `assert-rule`, the query operators, and the
//! introspection operators).
//!
//! Printing lives with the AST in `classic-core` (`Concept::display`);
//! because parse ∘ print is the identity on the surface language, the
//! command stream doubles as the persistence format used by
//! `classic-store` — a direct consequence of the paper's "single language,
//! multiple roles" design.
//!
//! The whole stack in five forms — schema, data, and a query whose
//! answer was *recognized*, never asserted:
//!
//! ```
//! use classic_kb::Kb;
//! use classic_lang::{run_script, Outcome};
//!
//! let mut kb = Kb::new();
//! let out = run_script(&mut kb, r#"
//!     (define-role enrolled-at)
//!     (define-concept STUDENT (AND (PRIMITIVE THING person)
//!                                  (AT-LEAST 1 enrolled-at)))
//!     (create-ind Rocky)
//!     (assert-ind Rocky (AND (PRIMITIVE THING person)
//!                            (FILLS enrolled-at MIT)))
//!     (retrieve STUDENT)
//! "#)?;
//! assert_eq!(
//!     out.last(),
//!     Some(&Outcome::Individuals(vec!["Rocky".into()]))
//! );
//! # Ok::<(), classic_core::ClassicError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ast;
pub mod command;
pub mod lexer;
pub mod macros;
pub mod parser;

pub use ast::{Expr, IndLit, QueryExpr};
pub use command::{
    eval, eval_monitored, mark_individual_dirty, parse, parse_one, resolve_bulk_rows, run_script,
    AspectValue, BulkRowSpec, BulkSpec, Command, LintDiagnostic, LintReport, Outcome, Session,
};
#[allow(deprecated)]
pub use command::{parse_command, parse_commands};
pub use macros::MacroTable;
pub use parser::{parse_concept, parse_expr, parse_query, parse_query_expr, Parser};

#[cfg(test)]
mod tests {
    use super::*;
    use classic_kb::Kb;

    /// The paper's §3 flow, driven end-to-end through the surface syntax.
    #[test]
    fn full_script_round_trip() {
        let mut kb = Kb::new();
        let outcomes = run_script(
            &mut kb,
            r#"
            (define-role thing-driven)
            (define-role enrolled-at)
            (define-concept PERSON (PRIMITIVE THING person))
            (define-concept CAR (PRIMITIVE THING car))
            (define-concept EXPENSIVE-THING (PRIMITIVE THING expensive))
            (define-concept SPORTS-CAR (PRIMITIVE (AND CAR EXPENSIVE-THING) sports-car))
            (define-concept STUDENT (AND PERSON (AT-LEAST 1 enrolled-at)))
            (define-concept RICH-KID (AND STUDENT (ALL thing-driven SPORTS-CAR)
                                          (AT-LEAST 2 thing-driven)))
            (create-ind Rocky)
            (assert-ind Rocky PERSON)
            (assert-ind Rocky (AT-LEAST 1 enrolled-at))
            (assert-ind Rocky (ALL thing-driven SPORTS-CAR))
            (assert-ind Rocky (AT-LEAST 2 thing-driven))
            (retrieve RICH-KID)
            "#,
        )
        .unwrap();
        match outcomes.last().unwrap() {
            Outcome::Individuals(names) => assert_eq!(names, &["Rocky"]),
            other => panic!("expected individuals, got {other:?}"),
        }
    }

    #[test]
    fn subsumption_queries_through_syntax() {
        let mut kb = Kb::new();
        run_script(
            &mut kb,
            "(define-role r)
             (define-concept A (AT-LEAST 2 r))",
        )
        .unwrap();
        let out = run_script(&mut kb, "(subsumes? (AT-LEAST 1 r) A)").unwrap();
        assert_eq!(out, vec![Outcome::Bool(true)]);
        let out = run_script(&mut kb, "(subsumes? A (AT-LEAST 1 r))").unwrap();
        assert_eq!(out, vec![Outcome::Bool(false)]);
        let out = run_script(
            &mut kb,
            "(equivalent? (EXACTLY 1 r) (AND (AT-LEAST 1 r) (AT-MOST 1 r)))",
        )
        .unwrap();
        assert_eq!(out, vec![Outcome::Bool(true)]);
    }

    #[test]
    fn marked_retrieve_returns_fillers() {
        let mut kb = Kb::new();
        let out = run_script(
            &mut kb,
            r#"
            (define-role eat)
            (define-concept PERSON (PRIMITIVE THING person))
            (create-ind Rocky)
            (assert-ind Rocky PERSON)
            (assert-ind Rocky (FILLS eat Pizza-1))
            (retrieve (AND PERSON (ALL eat ?:THING)))
            "#,
        )
        .unwrap();
        match out.last().unwrap() {
            Outcome::Individuals(v) => assert_eq!(v, &["Pizza-1"]),
            other => panic!("expected fillers, got {other:?}"),
        }
    }

    #[test]
    fn ask_description_through_syntax() {
        let mut kb = Kb::new();
        let out = run_script(
            &mut kb,
            r#"
            (define-role eat)
            (define-role enrolled-at)
            (define-concept PERSON (PRIMITIVE THING person))
            (define-concept JUNK-FOOD (PRIMITIVE THING junk))
            (define-concept STUDENT (AND PERSON (AT-LEAST 1 enrolled-at)))
            (assert-rule STUDENT (ALL eat JUNK-FOOD))
            (ask-description (AND STUDENT (ALL eat ?:THING)))
            "#,
        )
        .unwrap();
        match out.last().unwrap() {
            Outcome::Description(d) => assert!(d.contains("JUNK-FOOD"), "got {d}"),
            other => panic!("expected description, got {other:?}"),
        }
    }

    #[test]
    fn aspects_through_syntax() {
        let mut kb = Kb::new();
        let out = run_script(
            &mut kb,
            r#"
            (define-role thing-driven)
            (define-concept C (AND (AT-LEAST 2 thing-driven)
                                   (ALL thing-driven (ONE-OF A B))))
            (concept-aspect C AT-LEAST thing-driven)
            "#,
        )
        .unwrap();
        assert_eq!(*out.last().unwrap(), Outcome::Aspect(AspectValue::Bound(2)));
        // The derived AT-MOST from the enumerated value restriction (§2.2)
        // is visible as an aspect too.
        let out = run_script(&mut kb, "(concept-aspect C AT-MOST thing-driven)").unwrap();
        assert_eq!(*out.last().unwrap(), Outcome::Aspect(AspectValue::Bound(2)));
    }

    #[test]
    fn taxonomy_navigation_through_syntax() {
        let mut kb = Kb::new();
        run_script(
            &mut kb,
            "(define-concept CAR (PRIMITIVE THING car))
             (define-concept SPORTS-CAR (PRIMITIVE CAR sc))",
        )
        .unwrap();
        let out = run_script(&mut kb, "(parents SPORTS-CAR)").unwrap();
        assert_eq!(*out.last().unwrap(), Outcome::Concepts(vec!["CAR".into()]));
        let out = run_script(&mut kb, "(children CAR)").unwrap();
        assert_eq!(
            *out.last().unwrap(),
            Outcome::Concepts(vec!["SPORTS-CAR".into()])
        );
    }

    #[test]
    fn rejected_update_reports_error() {
        let mut kb = Kb::new();
        run_script(
            &mut kb,
            "(define-role r)
             (create-ind X)
             (assert-ind X (FILLS r V))",
        )
        .unwrap();
        let err = run_script(&mut kb, "(assert-ind X (AT-MOST 0 r))").unwrap_err();
        assert!(matches!(
            err,
            classic_core::ClassicError::Inconsistent { .. }
        ));
    }

    #[test]
    fn lint_kb_through_syntax() {
        let mut kb = Kb::new();
        let out = run_script(
            &mut kb,
            r#"
            (define-role r)
            (define-concept BAD (AND (AT-LEAST 2 r) (AT-MOST 1 r)))
            (lint-kb)
            "#,
        )
        .unwrap();
        match out.last().unwrap() {
            Outcome::Lint(report) => {
                assert_eq!(report.errors(), 1);
                assert_eq!(report.diagnostics[0].code, "A001");
                assert!(
                    report.diagnostics[0].subject.contains("BAD"),
                    "got: {:?}",
                    report.diagnostics[0]
                );
                let rendered = out.last().unwrap().render_text();
                assert!(rendered.contains("A001"), "got: {rendered}");
                let json = out.last().unwrap().render_json();
                assert!(json.contains(r#""type":"lint""#), "got: {json}");
                assert!(json.contains(r#""code":"A001""#), "got: {json}");
            }
            other => panic!("expected a lint report, got {other:?}"),
        }
    }

    #[test]
    fn bulk_load_through_syntax() {
        let mut kb = Kb::new();
        let out = run_script(
            &mut kb,
            r#"
            (define-role name)
            (define-role age)
            (define-role owns)
            (define-concept PERSON (PRIMITIVE THING person))
            (bulk-load
              (into PERSON)
              (roles name age owns)
              (row p1 "Ada" 36 Car-1)
              (row p2 "Grace" 45 _)
              (row p3 'anon _ Car-1))
            (retrieve PERSON)
            "#,
        )
        .unwrap();
        let Outcome::BulkLoaded(report) = &out[out.len() - 2] else {
            panic!("expected bulk-loaded, got {:?}", out[out.len() - 2]);
        };
        assert_eq!(report.rows, 3);
        assert_eq!(report.accepted, 3);
        assert_eq!(report.rejected, 0);
        // 3 row targets + Car-1, referenced twice but created once.
        assert_eq!(report.inds_created, 4);
        let Outcome::Individuals(names) = out.last().unwrap() else {
            panic!("expected individuals");
        };
        assert_eq!(names, &["p1", "p2", "p3"]);
        let json = out[out.len() - 2].render_json();
        assert!(json.contains(r#""type":"bulk-loaded""#), "got: {json}");
        assert!(json.contains(r#""accepted":3"#), "got: {json}");
    }

    #[test]
    fn bulk_load_rejects_ragged_and_headerless_rows() {
        let err = parse("(bulk-load (roles a b) (row x 1))").unwrap_err();
        assert!(err.to_string().contains("ragged"), "got: {err}");
        let err = parse("(bulk-load (row x 1))").unwrap_err();
        assert!(err.to_string().contains("header"), "got: {err}");
        let err = parse("(bulk-load (roles a) (into C))").unwrap_err();
        assert!(err.to_string().contains("precede"), "got: {err}");
    }

    #[test]
    fn describe_round_trips() {
        let mut kb = Kb::new();
        let out = run_script(
            &mut kb,
            "(define-role r)
             (define-concept PERSON (PRIMITIVE THING person))
             (create-ind X)
             (assert-ind X (AND PERSON (FILLS r V) (CLOSE r)))
             (describe X)",
        )
        .unwrap();
        let Outcome::Description(d) = out.last().unwrap() else {
            panic!("expected description");
        };
        // Reparse the description: it must normalize to X's derived NF.
        let c = parse_concept(d, kb.schema_mut()).unwrap();
        let nf = kb.normalize(&c).unwrap();
        let x = kb
            .ind_id(kb.schema().symbols.find_individual("X").unwrap())
            .unwrap();
        assert_eq!(nf, kb.ind(x).derived);
    }
}
