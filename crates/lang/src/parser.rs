//! Recursive-descent parser for CLASSIC concept expressions and queries.
//!
//! Implements the grammar of the paper's Appendix A over the token stream
//! of [`crate::lexer`]. Concept expressions parse into
//! [`classic_core::Concept`] trees; query expressions additionally accept
//! one `?:` marker in front of a subexpression reachable through `ALL`
//! chains, producing a [`classic_query::MarkedQuery`] (§3.5.3).
//!
//! Name resolution: bare upper-case-style symbols in concept position are
//! builtin layers (`THING`, `INTEGER`, …) or named concepts; symbols in
//! role position intern as roles; `ONE-OF`/`FILLS` operands are
//! individuals, host integers (`42`), host strings (`"…"`), or host
//! symbols (`'red`). Interning never *declares* anything — undeclared
//! roles and undefined concepts are still rejected by normalization, which
//! is how the paper's "detect errors such as typos" promise is kept.

use crate::lexer::{tokenize, Token, TokenKind};
use classic_core::desc::{Concept, IndRef, Path};
use classic_core::error::{ClassicError, Result};
use classic_core::host::{HostValue, Layer};
use classic_core::schema::Schema;
use classic_core::symbol::RoleId;
use classic_query::MarkedQuery;

/// Parser state over a token slice.
pub struct Parser<'a> {
    tokens: Vec<Token>,
    ix: usize,
    schema: &'a mut Schema,
    /// Marker path discovered so far (query parsing only).
    marker: Option<Path>,
    /// Role chain from the root to the current position.
    role_stack: Path,
    /// Whether the current context permits a marker (only along pure
    /// `ALL`/`AND` chains from the root).
    marker_allowed: bool,
}

impl<'a> Parser<'a> {
    /// Tokenize `input` and prepare to parse against `schema`.
    pub fn new(input: &str, schema: &'a mut Schema) -> Result<Parser<'a>> {
        Ok(Parser {
            tokens: tokenize(input)?,
            ix: 0,
            schema,
            marker: None,
            role_stack: Vec::new(),
            marker_allowed: true,
        })
    }

    /// Parse a single concept expression; trailing tokens are an error.
    pub fn parse_concept_complete(input: &str, schema: &mut Schema) -> Result<Concept> {
        let mut p = Parser::new(input, schema)?;
        p.marker_allowed = false;
        let c = p.concept()?;
        p.expect_end()?;
        Ok(c)
    }

    /// Parse a query: a concept expression with at most one `?:` marker.
    /// A query without a marker gets the subject marker (`?:C` ≡ `C`).
    pub fn parse_query_complete(input: &str, schema: &mut Schema) -> Result<MarkedQuery> {
        let mut p = Parser::new(input, schema)?;
        let c = p.concept()?;
        p.expect_end()?;
        Ok(MarkedQuery {
            concept: c,
            marker: p.marker.unwrap_or_default(),
        })
    }

    // ---- token helpers ---------------------------------------------------

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.ix).map(|t| &t.kind)
    }

    fn pos(&self) -> String {
        self.tokens
            .get(self.ix)
            .map(|t| t.pos.to_string())
            .unwrap_or_else(|| "<eof>".to_owned())
    }

    fn next(&mut self) -> Result<&TokenKind> {
        let t = self
            .tokens
            .get(self.ix)
            .ok_or_else(|| ClassicError::Malformed("unexpected end of input".into()))?;
        self.ix += 1;
        Ok(&t.kind)
    }

    fn expect_lparen(&mut self) -> Result<()> {
        let pos = self.pos();
        match self.next()? {
            TokenKind::LParen => Ok(()),
            other => Err(ClassicError::Malformed(format!(
                "{pos}: expected '(', found {other:?}"
            ))),
        }
    }

    fn expect_rparen(&mut self) -> Result<()> {
        let pos = self.pos();
        match self.next()? {
            TokenKind::RParen => Ok(()),
            other => Err(ClassicError::Malformed(format!(
                "{pos}: expected ')', found {other:?}"
            ))),
        }
    }

    /// Require that all tokens have been consumed.
    pub fn expect_end(&mut self) -> Result<()> {
        if self.ix == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err("trailing tokens after expression".into()))
        }
    }

    fn err(&self, msg: String) -> ClassicError {
        ClassicError::Malformed(format!("{}: {msg}", self.pos()))
    }

    fn symbol(&mut self, what: &str) -> Result<String> {
        let pos = self.pos();
        match self.next()? {
            TokenKind::Symbol(s) => Ok(s.clone()),
            other => Err(ClassicError::Malformed(format!(
                "{pos}: expected {what}, found {other:?}"
            ))),
        }
    }

    fn role(&mut self) -> Result<RoleId> {
        let name = self.symbol("role name")?;
        Ok(self.schema.symbols.role(&name))
    }

    fn number(&mut self) -> Result<u32> {
        let pos = self.pos();
        match self.next()? {
            TokenKind::Int(i) if *i >= 0 => Ok(*i as u32),
            other => Err(ClassicError::Malformed(format!(
                "{pos}: expected non-negative integer, found {other:?}"
            ))),
        }
    }

    /// An individual operand: name, host integer, string, or symbol.
    pub fn individual(&mut self) -> Result<IndRef> {
        let pos = self.pos();
        match self.next()? {
            TokenKind::Symbol(s) => {
                let s = s.clone();
                Ok(IndRef::Classic(self.schema.symbols.individual(&s)))
            }
            TokenKind::Int(i) => Ok(IndRef::Host(HostValue::Int(*i))),
            TokenKind::Float(v) => Ok(IndRef::Host(HostValue::Float(*v))),
            TokenKind::Str(s) => Ok(IndRef::Host(HostValue::Str(s.clone()))),
            TokenKind::QuotedSym(s) => Ok(IndRef::Host(HostValue::Sym(s.clone()))),
            other => Err(ClassicError::Malformed(format!(
                "{pos}: expected an individual, found {other:?}"
            ))),
        }
    }

    fn path(&mut self) -> Result<Path> {
        self.expect_lparen()?;
        let mut path = Path::new();
        loop {
            match self.peek() {
                Some(TokenKind::RParen) => {
                    self.next()?;
                    break;
                }
                Some(_) => path.push(self.role()?),
                None => return Err(self.err("unterminated SAME-AS path".into())),
            }
        }
        Ok(path)
    }

    // ---- grammar ----------------------------------------------------------

    /// `concept := NAME | builtin | (CONSTRUCTOR …)`, optionally preceded
    /// by the `?:` marker when parsing a query.
    pub fn concept(&mut self) -> Result<Concept> {
        if matches!(self.peek(), Some(TokenKind::Marker)) {
            if !self.marker_allowed {
                return Err(
                    self.err("?: marker only allowed along ALL chains from the query root".into())
                );
            }
            if self.marker.is_some() {
                return Err(self.err("a query may contain only one ?: marker".into()));
            }
            self.next()?;
            self.marker = Some(self.role_stack.clone());
            // The marked subexpression itself may not contain another
            // marker (enforced by the is_some check above).
            return self.concept_unmarked();
        }
        self.concept_unmarked()
    }

    fn concept_unmarked(&mut self) -> Result<Concept> {
        let pos = self.pos();
        match self.next()? {
            TokenKind::Symbol(s) => {
                let s = s.clone();
                if let Some(layer) = Layer::from_name(&s) {
                    Ok(Concept::Builtin(layer))
                } else {
                    Ok(Concept::Name(self.schema.symbols.concept(&s)))
                }
            }
            TokenKind::LParen => {
                let head = self.symbol("constructor")?;
                let c = self.constructor(&head)?;
                self.expect_rparen()?;
                Ok(c)
            }
            other => Err(ClassicError::Malformed(format!(
                "{pos}: expected a concept expression, found {other:?}"
            ))),
        }
    }

    fn constructor(&mut self, head: &str) -> Result<Concept> {
        match head {
            "AND" => {
                let mut parts = Vec::new();
                while !matches!(self.peek(), Some(TokenKind::RParen) | None) {
                    parts.push(self.concept()?);
                }
                Ok(Concept::And(parts))
            }
            "ALL" => {
                let role = self.role()?;
                self.role_stack.push(role);
                let inner = self.concept()?;
                self.role_stack.pop();
                Ok(Concept::all(role, inner))
            }
            "AT-LEAST" => {
                let n = self.number()?;
                let role = self.role()?;
                Ok(Concept::AtLeast(n, role))
            }
            "AT-MOST" => {
                let n = self.number()?;
                let role = self.role()?;
                Ok(Concept::AtMost(n, role))
            }
            "EXACTLY" => {
                // The macro facility the paper anticipates (§2.1.4):
                // (EXACTLY n r) expands to AND(AT-LEAST, AT-MOST).
                let n = self.number()?;
                let role = self.role()?;
                Ok(Concept::exactly(n, role))
            }
            "ONE-OF" => {
                let mut inds = Vec::new();
                while !matches!(self.peek(), Some(TokenKind::RParen) | None) {
                    inds.push(self.individual()?);
                }
                Ok(Concept::OneOf(inds))
            }
            "FILLS" => {
                let role = self.role()?;
                let mut inds = Vec::new();
                while !matches!(self.peek(), Some(TokenKind::RParen) | None) {
                    inds.push(self.individual()?);
                }
                Ok(Concept::Fills(role, inds))
            }
            "CLOSE" => {
                let role = self.role()?;
                Ok(Concept::Close(role))
            }
            "SAME-AS" => {
                let p = self.path()?;
                let q = self.path()?;
                Ok(Concept::SameAs(p, q))
            }
            "PRIMITIVE" => {
                let parent = self.no_marker(Self::concept_unmarked)?;
                let index = self.symbol("primitive index")?;
                Ok(Concept::primitive(parent, &index))
            }
            "DISJOINT-PRIMITIVE" => {
                let parent = self.no_marker(Self::concept_unmarked)?;
                let grouping = self.symbol("disjointness grouping")?;
                let index = self.symbol("primitive index")?;
                Ok(Concept::disjoint_primitive(parent, &grouping, &index))
            }
            "TEST" => {
                let name = self.symbol("test name")?;
                let id = self
                    .schema
                    .symbols
                    .find_test(&name)
                    .ok_or_else(|| self.err(format!("unknown TEST function {name:?}")))?;
                Ok(Concept::Test(id))
            }
            other => Err(self.err(format!("unknown constructor {other:?}"))),
        }
    }

    fn no_marker<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        let saved = self.marker_allowed;
        self.marker_allowed = false;
        let r = f(self);
        self.marker_allowed = saved;
        r
    }
}

/// Parse a concept expression (no marker).
pub fn parse_concept(input: &str, schema: &mut Schema) -> Result<Concept> {
    Parser::parse_concept_complete(input, schema)
}

/// Parse a query expression with an optional `?:` marker.
pub fn parse_query(input: &str, schema: &mut Schema) -> Result<MarkedQuery> {
    Parser::parse_query_complete(input, schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.define_role("thing-driven").unwrap();
        s.define_role("maker").unwrap();
        s.define_attribute("driver").unwrap();
        s.define_attribute("insurance").unwrap();
        s.define_attribute("payer").unwrap();
        s.define_role("wheel").unwrap();
        s
    }

    #[test]
    fn parses_paper_rich_kid() {
        let mut s = schema();
        let c = parse_concept(
            "(AND STUDENT (ALL thing-driven SPORTS-CAR) (AT-LEAST 2 thing-driven))",
            &mut s,
        )
        .unwrap();
        assert_eq!(
            c.display(&s.symbols).to_string(),
            "(AND STUDENT (ALL thing-driven SPORTS-CAR) (AT-LEAST 2 thing-driven))"
        );
    }

    #[test]
    fn parses_nested_paper_example() {
        // §2.1.3's full composite example.
        let mut s = schema();
        let c = parse_concept(
            "(AND STUDENT \
               (ALL thing-driven (AND SPORTS-CAR (ALL maker ITALIAN-COMPANY))) \
               (AT-LEAST 1 thing-driven) \
               (AT-MOST 2 thing-driven))",
            &mut s,
        )
        .unwrap();
        assert_eq!(c.size(), 9);
    }

    #[test]
    fn parses_same_as() {
        let mut s = schema();
        let c = parse_concept("(SAME-AS (driver) (insurance payer))", &mut s).unwrap();
        assert_eq!(
            c.display(&s.symbols).to_string(),
            "(SAME-AS (driver) (insurance payer))"
        );
    }

    #[test]
    fn parses_one_of_with_host_values() {
        let mut s = schema();
        let c = parse_concept("(ONE-OF GM Ford 42 \"label\" 'red)", &mut s).unwrap();
        match c {
            Concept::OneOf(v) => {
                assert_eq!(v.len(), 5);
                assert!(matches!(v[2], IndRef::Host(HostValue::Int(42))));
                assert!(matches!(v[3], IndRef::Host(HostValue::Str(_))));
                assert!(matches!(v[4], IndRef::Host(HostValue::Sym(_))));
            }
            other => panic!("expected ONE-OF, got {other:?}"),
        }
    }

    #[test]
    fn parses_builtins() {
        let mut s = schema();
        assert_eq!(
            parse_concept("THING", &mut s).unwrap(),
            Concept::Builtin(Layer::Thing)
        );
        assert_eq!(
            parse_concept("INTEGER", &mut s).unwrap(),
            Concept::Builtin(Layer::Host(Some(classic_core::HostClass::Integer)))
        );
    }

    #[test]
    fn parses_primitive_forms() {
        let mut s = schema();
        let c = parse_concept("(PRIMITIVE THING car)", &mut s).unwrap();
        assert!(matches!(c, Concept::Primitive { .. }));
        let d = parse_concept("(DISJOINT-PRIMITIVE PERSON gender male)", &mut s).unwrap();
        assert!(matches!(d, Concept::DisjointPrimitive { .. }));
    }

    #[test]
    fn exactly_macro() {
        let mut s = schema();
        let c = parse_concept("(EXACTLY 1 wheel)", &mut s).unwrap();
        assert!(matches!(c, Concept::And(v) if v.len() == 2));
    }

    #[test]
    fn query_marker_on_subject() {
        let mut s = schema();
        let q = parse_query("?:PERSON", &mut s).unwrap();
        assert!(q.marker.is_empty());
    }

    #[test]
    fn query_marker_along_all_chain() {
        // (AND STUDENT (ALL thing-driven ?:(ALL maker (ONE-OF Ferrari))))
        let mut s = schema();
        let q = parse_query(
            "(AND STUDENT (ALL thing-driven ?:(ALL maker (ONE-OF Ferrari))))",
            &mut s,
        )
        .unwrap();
        let driven = s.symbols.find_role("thing-driven").unwrap();
        assert_eq!(q.marker, vec![driven]);
    }

    #[test]
    fn double_marker_rejected() {
        let mut s = schema();
        assert!(parse_query("(AND ?:PERSON ?:STUDENT)", &mut s).is_err());
    }

    #[test]
    fn marker_rejected_in_concept_position() {
        let mut s = schema();
        assert!(parse_concept("?:PERSON", &mut s).is_err());
    }

    #[test]
    fn unknown_constructor_rejected() {
        let mut s = schema();
        let err = parse_concept("(OR A B)", &mut s).unwrap_err();
        // The paper deliberately omits OR (§5); the diagnosis names it.
        assert!(err.to_string().contains("OR"));
    }

    #[test]
    fn unknown_test_rejected() {
        let mut s = schema();
        assert!(parse_concept("(TEST even)", &mut s).is_err());
        s.register_test("even", |_| true);
        assert!(parse_concept("(TEST even)", &mut s).is_ok());
    }

    #[test]
    fn arity_errors() {
        let mut s = schema();
        assert!(parse_concept("(AT-LEAST wheel 2)", &mut s).is_err());
        assert!(parse_concept("(AT-LEAST -1 wheel)", &mut s).is_err());
        assert!(parse_concept("(ALL)", &mut s).is_err());
        assert!(parse_concept("(AND PERSON", &mut s).is_err());
        assert!(parse_concept("PERSON STUDENT", &mut s).is_err());
    }
}
