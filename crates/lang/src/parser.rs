//! Recursive-descent parser for CLASSIC concept expressions and queries.
//!
//! Implements the grammar of the paper's Appendix A over the token stream
//! of [`crate::lexer`]. Since the PR-6 API redesign the parser is **pure**:
//! it produces the unresolved [`Expr`]/[`QueryExpr`] AST of [`crate::ast`]
//! — names stay strings, no schema or KB is consulted — so parsing can run
//! concurrently and server-side before any tenant is chosen. Query
//! expressions additionally accept one `?:` marker in front of a
//! subexpression reachable through `ALL` chains (§3.5.3).
//!
//! Name resolution happens separately ([`Expr::resolve`]): bare
//! upper-case-style symbols in concept position become builtin layers
//! (`THING`, `INTEGER`, …) or named concepts, symbols in role position
//! intern as roles, `ONE-OF`/`FILLS` operands become individuals or host
//! values. Resolution never *declares* anything — undeclared roles and
//! undefined concepts are still rejected by normalization, which is how
//! the paper's "detect errors such as typos" promise is kept. The
//! convenience functions [`parse_concept`]/[`parse_query`] compose the two
//! steps for callers that do have a schema at hand.

use crate::ast::{Expr, IndLit, QueryExpr};
use crate::lexer::{tokenize, Token, TokenKind};
use classic_core::desc::Concept;
use classic_core::error::{ClassicError, Result};
use classic_core::schema::Schema;
use classic_query::MarkedQuery;

/// Parser state over a token slice. Pure: owns only tokens and marker
/// bookkeeping, never a schema.
pub struct Parser {
    tokens: Vec<Token>,
    ix: usize,
    /// Marker path discovered so far (query parsing only).
    marker: Option<Vec<String>>,
    /// Role chain from the root to the current position.
    role_stack: Vec<String>,
    /// Whether the current context permits a marker (only along pure
    /// `ALL`/`AND` chains from the root).
    marker_allowed: bool,
}

impl Parser {
    /// Tokenize `input` and prepare to parse.
    pub fn new(input: &str) -> Result<Parser> {
        Ok(Parser::from_tokens(tokenize(input)?))
    }

    /// Prepare to parse an already-tokenized window (the command parser
    /// hands sub-spans over without re-rendering text).
    pub fn from_tokens(tokens: Vec<Token>) -> Parser {
        Parser {
            tokens,
            ix: 0,
            marker: None,
            role_stack: Vec::new(),
            marker_allowed: true,
        }
    }

    /// Parse a single concept expression; trailing tokens are an error.
    pub fn parse_expr_complete(input: &str) -> Result<Expr> {
        Self::expr_from_tokens(tokenize(input)?)
    }

    /// Parse a query: a concept expression with at most one `?:` marker.
    /// A query without a marker gets the subject marker (`?:C` ≡ `C`).
    pub fn parse_query_expr_complete(input: &str) -> Result<QueryExpr> {
        Self::query_from_tokens(tokenize(input)?)
    }

    /// Parse a complete concept expression from a token window (marker
    /// rejected); trailing tokens are an error.
    pub fn expr_from_tokens(tokens: Vec<Token>) -> Result<Expr> {
        let mut p = Parser::from_tokens(tokens);
        p.marker_allowed = false;
        let c = p.expr()?;
        p.expect_end()?;
        Ok(c)
    }

    /// Parse a complete query expression from a token window.
    pub fn query_from_tokens(tokens: Vec<Token>) -> Result<QueryExpr> {
        let mut p = Parser::from_tokens(tokens);
        let c = p.expr()?;
        p.expect_end()?;
        Ok(QueryExpr {
            expr: c,
            marker: p.marker.unwrap_or_default(),
        })
    }

    /// Parse-then-resolve a single concept expression against `schema`.
    pub fn parse_concept_complete(input: &str, schema: &mut Schema) -> Result<Concept> {
        Self::parse_expr_complete(input)?.resolve(schema)
    }

    /// Parse-then-resolve a query expression against `schema`.
    pub fn parse_query_complete(input: &str, schema: &mut Schema) -> Result<MarkedQuery> {
        Self::parse_query_expr_complete(input)?.resolve(schema)
    }

    // ---- token helpers ---------------------------------------------------

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.ix).map(|t| &t.kind)
    }

    fn pos(&self) -> String {
        self.tokens
            .get(self.ix)
            .map(|t| t.pos.to_string())
            .unwrap_or_else(|| "<eof>".to_owned())
    }

    fn next(&mut self) -> Result<&TokenKind> {
        let t = self
            .tokens
            .get(self.ix)
            .ok_or_else(|| ClassicError::Malformed("unexpected end of input".into()))?;
        self.ix += 1;
        Ok(&t.kind)
    }

    fn expect_lparen(&mut self) -> Result<()> {
        let pos = self.pos();
        match self.next()? {
            TokenKind::LParen => Ok(()),
            other => Err(ClassicError::Malformed(format!(
                "{pos}: expected '(', found {other:?}"
            ))),
        }
    }

    fn expect_rparen(&mut self) -> Result<()> {
        let pos = self.pos();
        match self.next()? {
            TokenKind::RParen => Ok(()),
            other => Err(ClassicError::Malformed(format!(
                "{pos}: expected ')', found {other:?}"
            ))),
        }
    }

    /// Require that all tokens have been consumed.
    pub fn expect_end(&mut self) -> Result<()> {
        if self.ix == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err("trailing tokens after expression".into()))
        }
    }

    fn err(&self, msg: String) -> ClassicError {
        ClassicError::Malformed(format!("{}: {msg}", self.pos()))
    }

    fn symbol(&mut self, what: &str) -> Result<String> {
        let pos = self.pos();
        match self.next()? {
            TokenKind::Symbol(s) => Ok(s.clone()),
            other => Err(ClassicError::Malformed(format!(
                "{pos}: expected {what}, found {other:?}"
            ))),
        }
    }

    fn role(&mut self) -> Result<String> {
        self.symbol("role name")
    }

    fn number(&mut self) -> Result<u32> {
        let pos = self.pos();
        match self.next()? {
            TokenKind::Int(i) if *i >= 0 => Ok(*i as u32),
            other => Err(ClassicError::Malformed(format!(
                "{pos}: expected non-negative integer, found {other:?}"
            ))),
        }
    }

    /// An individual operand: name, host integer, string, or symbol.
    pub fn individual(&mut self) -> Result<IndLit> {
        let pos = self.pos();
        match self.next()? {
            TokenKind::Symbol(s) => Ok(IndLit::Name(s.clone())),
            TokenKind::Int(i) => Ok(IndLit::Int(*i)),
            TokenKind::Float(v) => Ok(IndLit::Float(*v)),
            TokenKind::Str(s) => Ok(IndLit::Str(s.clone())),
            TokenKind::QuotedSym(s) => Ok(IndLit::Sym(s.clone())),
            other => Err(ClassicError::Malformed(format!(
                "{pos}: expected an individual, found {other:?}"
            ))),
        }
    }

    fn path(&mut self) -> Result<Vec<String>> {
        self.expect_lparen()?;
        let mut path = Vec::new();
        loop {
            match self.peek() {
                Some(TokenKind::RParen) => {
                    self.next()?;
                    break;
                }
                Some(_) => path.push(self.role()?),
                None => return Err(self.err("unterminated SAME-AS path".into())),
            }
        }
        Ok(path)
    }

    // ---- grammar ----------------------------------------------------------

    /// `concept := NAME | builtin | (CONSTRUCTOR …)`, optionally preceded
    /// by the `?:` marker when parsing a query.
    pub fn expr(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Some(TokenKind::Marker)) {
            if !self.marker_allowed {
                return Err(
                    self.err("?: marker only allowed along ALL chains from the query root".into())
                );
            }
            if self.marker.is_some() {
                return Err(self.err("a query may contain only one ?: marker".into()));
            }
            self.next()?;
            self.marker = Some(self.role_stack.clone());
            // The marked subexpression itself may not contain another
            // marker (enforced by the is_some check above).
            return self.expr_unmarked();
        }
        self.expr_unmarked()
    }

    fn expr_unmarked(&mut self) -> Result<Expr> {
        let pos = self.pos();
        match self.next()? {
            TokenKind::Symbol(s) => Ok(Expr::Name(s.clone())),
            TokenKind::LParen => {
                let head = self.symbol("constructor")?;
                let c = self.constructor(&head)?;
                self.expect_rparen()?;
                Ok(c)
            }
            other => Err(ClassicError::Malformed(format!(
                "{pos}: expected a concept expression, found {other:?}"
            ))),
        }
    }

    fn constructor(&mut self, head: &str) -> Result<Expr> {
        match head {
            "AND" => {
                let mut parts = Vec::new();
                while !matches!(self.peek(), Some(TokenKind::RParen) | None) {
                    parts.push(self.expr()?);
                }
                Ok(Expr::And(parts))
            }
            "ALL" => {
                let role = self.role()?;
                self.role_stack.push(role.clone());
                let inner = self.expr()?;
                self.role_stack.pop();
                Ok(Expr::All(role, Box::new(inner)))
            }
            "AT-LEAST" => {
                let n = self.number()?;
                let role = self.role()?;
                Ok(Expr::AtLeast(n, role))
            }
            "AT-MOST" => {
                let n = self.number()?;
                let role = self.role()?;
                Ok(Expr::AtMost(n, role))
            }
            "EXACTLY" => {
                // The macro facility the paper anticipates (§2.1.4):
                // (EXACTLY n r) expands to AND(AT-LEAST, AT-MOST).
                let n = self.number()?;
                let role = self.role()?;
                Ok(Expr::And(vec![
                    Expr::AtLeast(n, role.clone()),
                    Expr::AtMost(n, role),
                ]))
            }
            "ONE-OF" => {
                let mut inds = Vec::new();
                while !matches!(self.peek(), Some(TokenKind::RParen) | None) {
                    inds.push(self.individual()?);
                }
                Ok(Expr::OneOf(inds))
            }
            "FILLS" => {
                let role = self.role()?;
                let mut inds = Vec::new();
                while !matches!(self.peek(), Some(TokenKind::RParen) | None) {
                    inds.push(self.individual()?);
                }
                Ok(Expr::Fills(role, inds))
            }
            "CLOSE" => {
                let role = self.role()?;
                Ok(Expr::Close(role))
            }
            "SAME-AS" => {
                let p = self.path()?;
                let q = self.path()?;
                Ok(Expr::SameAs(p, q))
            }
            "PRIMITIVE" => {
                let parent = self.no_marker(Self::expr_unmarked)?;
                let index = self.symbol("primitive index")?;
                Ok(Expr::Primitive {
                    parent: Box::new(parent),
                    index,
                })
            }
            "DISJOINT-PRIMITIVE" => {
                let parent = self.no_marker(Self::expr_unmarked)?;
                let grouping = self.symbol("disjointness grouping")?;
                let index = self.symbol("primitive index")?;
                Ok(Expr::DisjointPrimitive {
                    parent: Box::new(parent),
                    grouping,
                    index,
                })
            }
            "TEST" => {
                let name = self.symbol("test name")?;
                Ok(Expr::Test(name))
            }
            other => Err(self.err(format!("unknown constructor {other:?}"))),
        }
    }

    fn no_marker<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        let saved = self.marker_allowed;
        self.marker_allowed = false;
        let r = f(self);
        self.marker_allowed = saved;
        r
    }
}

/// Parse a concept expression into the unresolved AST (no marker). Pure:
/// callable with no `Kb` or `Schema` in scope.
pub fn parse_expr(input: &str) -> Result<Expr> {
    Parser::parse_expr_complete(input)
}

/// Parse a query expression with an optional `?:` marker into the
/// unresolved AST. Pure.
pub fn parse_query_expr(input: &str) -> Result<QueryExpr> {
    Parser::parse_query_expr_complete(input)
}

/// Parse a concept expression (no marker) and resolve it against `schema`.
pub fn parse_concept(input: &str, schema: &mut Schema) -> Result<Concept> {
    Parser::parse_concept_complete(input, schema)
}

/// Parse a query expression with an optional `?:` marker and resolve it
/// against `schema`.
pub fn parse_query(input: &str, schema: &mut Schema) -> Result<MarkedQuery> {
    Parser::parse_query_complete(input, schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use classic_core::desc::{Concept, IndRef};
    use classic_core::host::{HostValue, Layer};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.define_role("thing-driven").unwrap();
        s.define_role("maker").unwrap();
        s.define_attribute("driver").unwrap();
        s.define_attribute("insurance").unwrap();
        s.define_attribute("payer").unwrap();
        s.define_role("wheel").unwrap();
        s
    }

    #[test]
    fn parses_paper_rich_kid() {
        let mut s = schema();
        let c = parse_concept(
            "(AND STUDENT (ALL thing-driven SPORTS-CAR) (AT-LEAST 2 thing-driven))",
            &mut s,
        )
        .unwrap();
        assert_eq!(
            c.display(&s.symbols).to_string(),
            "(AND STUDENT (ALL thing-driven SPORTS-CAR) (AT-LEAST 2 thing-driven))"
        );
    }

    #[test]
    fn parse_is_pure() {
        // No schema, no KB: parsing alone never interns anything.
        let e = parse_expr("(AND STUDENT (ALL thing-driven SPORTS-CAR))").unwrap();
        assert_eq!(
            e,
            Expr::And(vec![
                Expr::Name("STUDENT".into()),
                Expr::All(
                    "thing-driven".into(),
                    Box::new(Expr::Name("SPORTS-CAR".into()))
                ),
            ])
        );
    }

    #[test]
    fn parses_nested_paper_example() {
        // §2.1.3's full composite example.
        let mut s = schema();
        let c = parse_concept(
            "(AND STUDENT \
               (ALL thing-driven (AND SPORTS-CAR (ALL maker ITALIAN-COMPANY))) \
               (AT-LEAST 1 thing-driven) \
               (AT-MOST 2 thing-driven))",
            &mut s,
        )
        .unwrap();
        assert_eq!(c.size(), 9);
    }

    #[test]
    fn parses_same_as() {
        let mut s = schema();
        let c = parse_concept("(SAME-AS (driver) (insurance payer))", &mut s).unwrap();
        assert_eq!(
            c.display(&s.symbols).to_string(),
            "(SAME-AS (driver) (insurance payer))"
        );
    }

    #[test]
    fn parses_one_of_with_host_values() {
        let mut s = schema();
        let c = parse_concept("(ONE-OF GM Ford 42 \"label\" 'red)", &mut s).unwrap();
        match c {
            Concept::OneOf(v) => {
                assert_eq!(v.len(), 5);
                assert!(matches!(v[2], IndRef::Host(HostValue::Int(42))));
                assert!(matches!(v[3], IndRef::Host(HostValue::Str(_))));
                assert!(matches!(v[4], IndRef::Host(HostValue::Sym(_))));
            }
            other => panic!("expected ONE-OF, got {other:?}"),
        }
    }

    #[test]
    fn parses_builtins() {
        let mut s = schema();
        assert_eq!(
            parse_concept("THING", &mut s).unwrap(),
            Concept::Builtin(Layer::Thing)
        );
        assert_eq!(
            parse_concept("INTEGER", &mut s).unwrap(),
            Concept::Builtin(Layer::Host(Some(classic_core::HostClass::Integer)))
        );
    }

    #[test]
    fn parses_primitive_forms() {
        let mut s = schema();
        let c = parse_concept("(PRIMITIVE THING car)", &mut s).unwrap();
        assert!(matches!(c, Concept::Primitive { .. }));
        let d = parse_concept("(DISJOINT-PRIMITIVE PERSON gender male)", &mut s).unwrap();
        assert!(matches!(d, Concept::DisjointPrimitive { .. }));
    }

    #[test]
    fn exactly_macro() {
        let mut s = schema();
        let c = parse_concept("(EXACTLY 1 wheel)", &mut s).unwrap();
        assert!(matches!(c, Concept::And(v) if v.len() == 2));
    }

    #[test]
    fn query_marker_on_subject() {
        let mut s = schema();
        let q = parse_query("?:PERSON", &mut s).unwrap();
        assert!(q.marker.is_empty());
    }

    #[test]
    fn query_marker_along_all_chain() {
        // (AND STUDENT (ALL thing-driven ?:(ALL maker (ONE-OF Ferrari))))
        let mut s = schema();
        let q = parse_query(
            "(AND STUDENT (ALL thing-driven ?:(ALL maker (ONE-OF Ferrari))))",
            &mut s,
        )
        .unwrap();
        let driven = s.symbols.find_role("thing-driven").unwrap();
        assert_eq!(q.marker, vec![driven]);
    }

    #[test]
    fn double_marker_rejected() {
        let mut s = schema();
        assert!(parse_query("(AND ?:PERSON ?:STUDENT)", &mut s).is_err());
    }

    #[test]
    fn marker_rejected_in_concept_position() {
        let mut s = schema();
        assert!(parse_concept("?:PERSON", &mut s).is_err());
    }

    #[test]
    fn unknown_constructor_rejected() {
        let mut s = schema();
        let err = parse_concept("(OR A B)", &mut s).unwrap_err();
        // The paper deliberately omits OR (§5); the diagnosis names it.
        assert!(err.to_string().contains("OR"));
    }

    #[test]
    fn unknown_test_rejected_at_resolve_time() {
        let mut s = schema();
        // Parsing alone accepts any TEST name (it is pure)…
        assert!(parse_expr("(TEST even)").is_ok());
        // …resolution rejects unknown functions, and accepts known ones.
        assert!(parse_concept("(TEST even)", &mut s).is_err());
        s.register_test("even", |_| true);
        assert!(parse_concept("(TEST even)", &mut s).is_ok());
    }

    #[test]
    fn arity_errors() {
        let mut s = schema();
        assert!(parse_concept("(AT-LEAST wheel 2)", &mut s).is_err());
        assert!(parse_concept("(AT-LEAST -1 wheel)", &mut s).is_err());
        assert!(parse_concept("(ALL)", &mut s).is_err());
        assert!(parse_concept("(AND PERSON", &mut s).is_err());
        assert!(parse_concept("PERSON STUDENT", &mut s).is_err());
    }
}
