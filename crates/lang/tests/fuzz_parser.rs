//! Parser robustness: arbitrary input must never panic — every outcome is
//! either a parsed expression or a positioned `Malformed` error. (The
//! paper's `define-role`-catches-typos promise, §3.1 footnote 3, only
//! works if the front end survives the typo.)

use classic_core::schema::Schema;
use classic_lang::{parse_concept, parse_query};
use proptest::prelude::*;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.define_role("r").unwrap();
    s.define_concept(
        "C",
        classic_core::Concept::primitive(classic_core::Concept::thing(), "c"),
    )
    .unwrap();
    s.register_test("t", |_| true);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Completely arbitrary strings (including non-ASCII and control
    /// characters) never panic the lexer/parser.
    #[test]
    fn arbitrary_strings_never_panic(input in ".{0,120}") {
        let mut s = schema();
        let _ = parse_concept(&input, &mut s);
        let _ = parse_query(&input, &mut s);
    }

    /// Syntax-shaped soup: random sequences of plausible tokens.
    #[test]
    fn token_soup_never_panics(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just("AND".to_owned()),
                Just("ALL".to_owned()),
                Just("AT-LEAST".to_owned()),
                Just("AT-MOST".to_owned()),
                Just("ONE-OF".to_owned()),
                Just("FILLS".to_owned()),
                Just("CLOSE".to_owned()),
                Just("SAME-AS".to_owned()),
                Just("PRIMITIVE".to_owned()),
                Just("TEST".to_owned()),
                Just("THING".to_owned()),
                Just("C".to_owned()),
                Just("r".to_owned()),
                Just("?:".to_owned()),
                Just("3".to_owned()),
                Just("-7".to_owned()),
                Just("'sym".to_owned()),
                Just("\"str\"".to_owned()),
                Just("; comment".to_owned()),
            ],
            0..24,
        )
    ) {
        let input = parts.join(" ");
        let mut s = schema();
        let _ = parse_concept(&input, &mut s);
        let _ = parse_query(&input, &mut s);
    }

    /// Valid expressions with one random mutation (deletion, insertion,
    /// duplication) still never panic — the common typo case.
    #[test]
    fn mutated_valid_expressions_never_panic(
        pos in 0usize..60,
        mutation in 0u8..3,
    ) {
        let base = "(AND C (ALL r (ONE-OF A B)) (AT-LEAST 2 r) (TEST t))";
        let bytes: Vec<char> = base.chars().collect();
        let pos = pos % bytes.len();
        let mutated: String = match mutation {
            0 => bytes
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, c)| *c)
                .collect(),
            1 => {
                let mut v = bytes.clone();
                v.insert(pos, '(');
                v.into_iter().collect()
            }
            _ => {
                let mut v = bytes.clone();
                let c = v[pos];
                v.insert(pos, c);
                v.into_iter().collect()
            }
        };
        let mut s = schema();
        let _ = parse_concept(&mutated, &mut s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The command layer (splitting, macro expansion, evaluation) is
    /// panic-free on arbitrary input too; errors come back as values.
    #[test]
    fn command_soup_never_panics(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just("define-role".to_owned()),
                Just("define-concept".to_owned()),
                Just("define-macro".to_owned()),
                Just("create-ind".to_owned()),
                Just("assert-ind".to_owned()),
                Just("retrieve".to_owned()),
                Just("subsumes?".to_owned()),
                Just("why?".to_owned()),
                Just("what-if?".to_owned()),
                Just("classify".to_owned()),
                Just("AND".to_owned()),
                Just("X".to_owned()),
                Just("r".to_owned()),
                Just("?:".to_owned()),
                Just("2".to_owned()),
            ],
            0..20,
        )
    ) {
        let input = parts.join(" ");
        let mut session = classic_lang::Session::new();
        let _ = session.run(&input);
    }
}
