//! Differential oracle for the incremental analyzer: after *any* sequence
//! of surface-language operations (defines, creates, asserts, retracts,
//! rule edits, lints), the incrementally-maintained
//! [`classic_analyze::AnalysisState`] must report exactly what a
//! from-scratch [`classic_analyze::analyze`] reports on the same KB —
//! same codes, same spans, same provenance, same order.
//!
//! Operations are driven through [`classic_lang::eval_monitored`], the
//! same entry point `classic-server` uses, so the marking discipline
//! (retract cones pre-op, assert cones post-op, everything else
//! auto-detected) is what's actually under test. Rejected updates are
//! kept in the stream on purpose: a rolled-back assertion must leave the
//! analysis state consistent too.

use classic_analyze::AnalysisState;
use classic_kb::Kb;
use classic_lang::{eval_monitored, parse_one, Outcome};
use proptest::prelude::*;

const N_ROLES: usize = 3;
const N_INDS: usize = 4;

/// One conjunct of a generated description, rendered to surface syntax.
#[derive(Debug, Clone)]
enum Part {
    Prim(u8),
    DisPrim(u8),
    AtLeast(u8, u32),
    AtMost(u8, u32),
    Fills(u8, u8),
    Close(u8),
    AllOneOf(u8, u8, u8),
    AllPrim(u8, u8),
    SameAs(u8, u8),
    Ref(u8),
}

impl Part {
    /// Render against the current number of defined concepts (`Ref`s may
    /// only point backwards).
    fn render(&self, ndefs: usize) -> String {
        match self {
            Part::Prim(k) => format!("(PRIMITIVE THING p{})", k % 3),
            Part::DisPrim(k) => format!("(DISJOINT-PRIMITIVE THING side d{})", k % 3),
            Part::AtLeast(r, n) => format!("(AT-LEAST {n} r{})", *r as usize % N_ROLES),
            Part::AtMost(r, m) => format!("(AT-MOST {m} r{})", *r as usize % N_ROLES),
            Part::Fills(r, j) => format!(
                "(FILLS r{} x{})",
                *r as usize % N_ROLES,
                *j as usize % N_INDS
            ),
            Part::Close(r) => format!("(CLOSE r{})", *r as usize % N_ROLES),
            Part::AllOneOf(r, j, k) => format!(
                "(ALL r{} (ONE-OF x{} x{}))",
                *r as usize % N_ROLES,
                *j as usize % N_INDS,
                *k as usize % N_INDS
            ),
            Part::AllPrim(r, k) => {
                format!(
                    "(ALL r{} (PRIMITIVE THING p{}))",
                    *r as usize % N_ROLES,
                    k % 3
                )
            }
            Part::SameAs(a, b) => format!("(SAME-AS (a{}) (a{}))", a % 2, b % 2),
            Part::Ref(j) => {
                if ndefs == 0 {
                    "(PRIMITIVE THING p0)".to_owned()
                } else {
                    format!("C{}", *j as usize % ndefs)
                }
            }
        }
    }
}

fn arb_part() -> impl Strategy<Value = Part> {
    prop_oneof![
        (0u8..3).prop_map(Part::Prim),
        (0u8..3).prop_map(Part::DisPrim),
        (0u8..3, 0u32..4).prop_map(|(r, n)| Part::AtLeast(r, n)),
        (0u8..3, 0u32..4).prop_map(|(r, m)| Part::AtMost(r, m)),
        (0u8..3, 0u8..4).prop_map(|(r, j)| Part::Fills(r, j)),
        (0u8..3).prop_map(Part::Close),
        (0u8..3, 0u8..4, 0u8..4).prop_map(|(r, j, k)| Part::AllOneOf(r, j, k)),
        (0u8..3, 0u8..3).prop_map(|(r, k)| Part::AllPrim(r, k)),
        (0u8..2, 0u8..2).prop_map(|(a, b)| Part::SameAs(a, b)),
        (0u8..8).prop_map(Part::Ref),
    ]
}

#[derive(Debug, Clone)]
enum Op {
    Define(Vec<Part>),
    Assert(u8, Vec<Part>),
    Rule(u8, Vec<Part>),
    RetractTold(u8),
    RetractRule(u8),
    Lint(bool),
}

fn arb_parts() -> impl Strategy<Value = Vec<Part>> {
    proptest::collection::vec(arb_part(), 1..4)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => arb_parts().prop_map(Op::Define),
        5 => (0u8..4, arb_parts()).prop_map(|(j, p)| Op::Assert(j, p)),
        2 => (0u8..8, arb_parts()).prop_map(|(j, p)| Op::Rule(j, p)),
        2 => (0u8..8).prop_map(Op::RetractTold),
        1 => (0u8..8).prop_map(Op::RetractRule),
        1 => (0u8..2).prop_map(|b| Op::Lint(b == 1)),
    ]
}

fn and(parts: &[Part], ndefs: usize) -> String {
    let rendered: Vec<String> = parts.iter().map(|p| p.render(ndefs)).collect();
    format!("(AND {})", rendered.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_report_equals_full_analysis(
        ops in proptest::collection::vec(arb_op(), 1..16),
    ) {
        let mut kb = Kb::new();
        let mut state = AnalysisState::new();
        for i in 0..N_ROLES {
            kb.define_role(&format!("r{i}")).unwrap();
        }
        for i in 0..2 {
            kb.define_attribute(&format!("a{i}")).unwrap();
        }
        for j in 0..N_INDS {
            kb.create_ind(&format!("x{j}")).unwrap();
        }

        let mut ndefs = 0usize;
        let mut rules = 0usize;
        // (individual, expression) pairs that were accepted, so retracts
        // can target real told information.
        let mut told: Vec<(String, String)> = Vec::new();

        for op in &ops {
            let text = match op {
                Op::Define(parts) => {
                    Some(format!("(define-concept C{ndefs} {})", and(parts, ndefs)))
                }
                Op::Assert(j, parts) => Some(format!(
                    "(assert-ind x{} {})",
                    *j as usize % N_INDS,
                    and(parts, ndefs)
                )),
                Op::Rule(j, parts) => {
                    if ndefs == 0 {
                        None
                    } else {
                        Some(format!(
                            "(assert-rule C{} {})",
                            *j as usize % ndefs,
                            and(parts, ndefs)
                        ))
                    }
                }
                Op::RetractTold(t) => {
                    if told.is_empty() {
                        None
                    } else {
                        let (name, expr) = &told[*t as usize % told.len()];
                        Some(format!("(retract-ind {name} {expr})"))
                    }
                }
                Op::RetractRule(t) => {
                    if rules == 0 {
                        None
                    } else {
                        Some(format!("(retract-rule {})", *t as usize % rules))
                    }
                }
                Op::Lint(cone) => Some(if *cone {
                    "(lint-kb cone)".to_owned()
                } else {
                    "(lint-kb)".to_owned()
                }),
            };
            let Some(text) = text else { continue };
            let cmd = parse_one(&text).unwrap();
            match eval_monitored(&mut kb, &cmd, &mut state) {
                Ok(Outcome::Ok) => {
                    if let Op::Define(_) = op {
                        ndefs += 1;
                    }
                }
                Ok(Outcome::RuleAsserted(_)) => rules += 1,
                Ok(Outcome::Asserted(_)) => {
                    if let Op::Assert(j, parts) = op {
                        told.push((format!("x{}", *j as usize % N_INDS), and(parts, ndefs)));
                    }
                }
                // Rejections (inconsistent updates, unknown rule ids,
                // never-told retractions) stay in the stream: the rolled
                // back KB must still match the full analysis.
                _ => {}
            }

            state.refresh(&mut kb);
            let incremental = state.report(&kb);
            let full = classic_analyze::analyze(&mut kb.clone());
            prop_assert_eq!(
                &incremental,
                &full,
                "incremental/full divergence after {:?} (op {:?})",
                text,
                op
            );
        }
    }
}
