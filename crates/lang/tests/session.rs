//! Session-level tests: the macro facility (§2.1.4's anticipated
//! extension) working end to end with the rest of the language.

use classic_lang::{AspectValue, Outcome, Session};

#[test]
fn exactly_one_macro_defines_usable_concepts() {
    let mut s = Session::new();
    let out = s
        .run(
            r#"
            (define-macro EXACTLY-ONE (r)
                (AND (AT-LEAST 1 r) (AT-MOST 1 r)))
            (define-role wheel)
            (define-concept UNICYCLE (EXACTLY-ONE wheel))
            (subsumes? (AT-LEAST 1 wheel) UNICYCLE)
            (equivalent? UNICYCLE (AND (AT-LEAST 1 wheel) (AT-MOST 1 wheel)))
            "#,
        )
        .expect("script");
    assert_eq!(out[3], Outcome::Bool(true));
    assert_eq!(out[4], Outcome::Bool(true));
    assert_eq!(s.macro_names(), vec!["EXACTLY-ONE"]);
}

#[test]
fn macros_expand_inside_assertions_and_queries() {
    let mut s = Session::new();
    let out = s
        .run(
            r#"
            (define-macro DRIVES-ONLY (c) (ALL thing-driven c))
            (define-role thing-driven)
            (define-concept CAR (PRIMITIVE THING car))
            (create-ind Rocky)
            (assert-ind Rocky (DRIVES-ONLY CAR))
            (assert-ind Rocky (FILLS thing-driven Volvo-17))
            (retrieve CAR)
            "#,
        )
        .expect("script");
    assert_eq!(
        out.last().expect("one"),
        &Outcome::Individuals(vec!["Volvo-17".into()])
    );
}

#[test]
fn macros_compose() {
    let mut s = Session::new();
    let out = s
        .run(
            r#"
            (define-macro SOME (r) (AT-LEAST 1 r))
            (define-macro BUSY (r) (AND (SOME r) (AT-LEAST 3 r)))
            (define-role calls)
            (define-concept HUB (BUSY calls))
            (subsumes? (AT-LEAST 3 calls) HUB)
            "#,
        )
        .expect("script");
    assert_eq!(out.last().expect("one"), &Outcome::Bool(true));
}

#[test]
fn macro_errors_are_reported() {
    let mut s = Session::new();
    // Recursive macro.
    s.run("(define-macro LOOP (x) (AND (LOOP x)))")
        .expect("definition ok");
    let err = s.run("(define-role r) (classify (LOOP r))").unwrap_err();
    assert!(err.to_string().contains("depth"));
    // Shadowing a builtin.
    let err = s.run("(define-macro AND (x) x)").unwrap_err();
    assert!(err.to_string().contains("shadows"));
}

#[test]
fn session_without_macros_behaves_like_run_script() {
    let mut s = Session::new();
    let out = s
        .run(
            r#"
            (define-role r)
            (define-concept PERSON (PRIMITIVE THING person))
            (create-ind X)
            (assert-ind X PERSON)
            (retrieve PERSON)
            "#,
        )
        .expect("script");
    assert_eq!(
        out.last().expect("one"),
        &Outcome::Individuals(vec!["X".into()])
    );
}

#[test]
fn macros_work_with_query_markers() {
    let mut s = Session::new();
    let out = s
        .run(
            r#"
            (define-macro EATEN-BY (c) (AND c (ALL eat ?:THING)))
            (define-role eat)
            (define-concept PERSON (PRIMITIVE THING person))
            (create-ind Rocky)
            (assert-ind Rocky PERSON)
            (assert-ind Rocky (FILLS eat Pizza-1))
            (retrieve (EATEN-BY PERSON))
            "#,
        )
        .expect("script");
    assert_eq!(
        out.last().expect("one"),
        &Outcome::Individuals(vec!["Pizza-1".into()])
    );
}

#[test]
fn what_if_reports_hypothetically() {
    let mut s = Session::new();
    s.run(
        r#"
        (define-role r)
        (create-ind X)
        (assert-ind X (FILLS r V))
        "#,
    )
    .expect("setup");
    // A contradictory hypothetical reports rejection without mutating.
    let out = s.run("(what-if? X (AT-MOST 0 r))").expect("hypothetical");
    match out.last().expect("one") {
        Outcome::Description(d) => assert!(d.contains("REJECTED"), "got {d}"),
        other => panic!("unexpected {other:?}"),
    }
    // A consistent one reports acceptance — and still nothing changed.
    let out = s.run("(what-if? X (AT-MOST 3 r))").expect("hypothetical");
    match out.last().expect("one") {
        Outcome::Description(d) => assert!(d.contains("ACCEPTED"), "got {d}"),
        other => panic!("unexpected {other:?}"),
    }
    let out = s.run("(ind-aspect X AT-MOST r)").expect("aspect");
    assert_eq!(
        out.last().expect("one"),
        &Outcome::Aspect(AspectValue::None)
    );
}

#[test]
fn rules_are_listed_and_retractable_by_id() {
    let mut s = Session::new();
    let out = s
        .run(
            r#"
            (define-role eat)
            (define-concept PERSON (PRIMITIVE THING person))
            (define-concept GLUTTON (AND PERSON (AT-LEAST 2 eat)))
            (assert-rule PERSON (AT-LEAST 1 eat))
            "#,
        )
        .expect("setup");
    // The rule definition echoes the id retract-rule takes back.
    assert_eq!(out.last().expect("one"), &Outcome::RuleAsserted(0));
    let out = s.run("(list-rules)").expect("list");
    match out.last().expect("one") {
        Outcome::Description(d) => {
            assert!(d.contains("#0: PERSON"), "got {d}")
        }
        other => panic!("unexpected {other:?}"),
    }
    match s.run("(retract-rule 0)").expect("retract").pop() {
        Some(Outcome::Retracted(_)) => {}
        other => panic!("unexpected {other:?}"),
    }
    let out = s.run("(list-rules)").expect("list");
    assert_eq!(
        out.last().expect("one"),
        &Outcome::Description("no live rules".into())
    );
    // A dead id is a structured error, not a panic.
    assert!(s.run("(retract-rule 0)").is_err());
    assert!(s.run("(retract-rule 99)").is_err());
}

#[test]
fn obs_commands_expose_and_reset_metrics() {
    let mut s = Session::new();
    s.run(
        r#"
        (define-concept PERSON (PRIMITIVE THING person))
        (create-ind X)
        (assert-ind X PERSON)
        "#,
    )
    .expect("setup");
    let out = s.run("(obs-stats)").expect("stats");
    match out.last().expect("one") {
        Outcome::Description(d) => {
            assert!(
                d.contains("# TYPE classic_assertions_total counter"),
                "got {d}"
            );
            assert!(d.contains("classic_assertions_total 1"), "got {d}");
        }
        other => panic!("unexpected {other:?}"),
    }
    let out = s.run("(obs-stats json)").expect("stats json");
    match out.last().expect("one") {
        Outcome::Description(d) => {
            assert!(d.contains("\"classic_assertions_total\""), "got {d}")
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(
        s.run("(obs-reset)").expect("reset").pop(),
        Some(Outcome::Ok)
    );
    let out = s.run("(obs-stats)").expect("stats");
    match out.last().expect("one") {
        Outcome::Description(d) => {
            assert!(d.contains("classic_assertions_total 0"), "got {d}")
        }
        other => panic!("unexpected {other:?}"),
    }
}
