//! Property: printing a concept in the surface syntax and re-parsing it
//! yields the identical AST. This is the guarantee the persistence layer
//! (`classic-store`) leans on — the command stream is only a sound
//! serialization format if parse ∘ print is the identity.

use classic_core::desc::{Concept, IndRef};
use classic_core::schema::Schema;
use classic_core::symbol::{RoleId, TestId};
use classic_core::HostValue;
use classic_lang::parse_concept;
use proptest::prelude::*;

const N_ROLES: usize = 4;

fn vocabulary() -> Schema {
    let mut schema = Schema::new();
    for i in 0..N_ROLES {
        schema.define_role(&format!("role-{i}")).unwrap();
    }
    schema.define_attribute("attr-a").unwrap();
    schema.define_attribute("attr-b").unwrap();
    schema
        .define_concept("NAMED-0", Concept::primitive(Concept::thing(), "n0"))
        .unwrap();
    schema
        .define_concept("NAMED-1", Concept::primitive(Concept::thing(), "n1"))
        .unwrap();
    schema.register_test("test-fn", |_| true);
    for i in 0..6 {
        schema.symbols.individual(&format!("Ind-{i}"));
    }
    schema
}

fn role(i: usize) -> RoleId {
    RoleId::from_index(i % N_ROLES)
}

fn ind(i: usize) -> IndRef {
    match i % 6 {
        4 => IndRef::Host(HostValue::Int(i as i64 - 10)),
        5 => IndRef::Host(HostValue::Sym(format!("sym{}", i % 3))),
        k => IndRef::Classic(classic_core::IndName::from_index(k)),
    }
}

/// Strategy over printable concepts (names/tests resolved against the
/// fixed vocabulary built in every test case).
fn concept_strategy() -> impl Strategy<Value = Concept> {
    let leaf = prop_oneof![
        Just(Concept::thing()),
        Just(Concept::Builtin(classic_core::Layer::Classic)),
        Just(Concept::Builtin(classic_core::Layer::Host(Some(
            classic_core::HostClass::Str
        )))),
        (0usize..2).prop_map(|i| Concept::Name(classic_core::ConceptName::from_index(i))),
        (0usize..N_ROLES, 0u32..5).prop_map(|(r, n)| Concept::AtLeast(n, role(r))),
        (0usize..N_ROLES, 0u32..5).prop_map(|(r, n)| Concept::AtMost(n, role(r))),
        (0usize..N_ROLES).prop_map(|r| Concept::Close(role(r))),
        Just(Concept::Test(TestId::from_index(0))),
        proptest::collection::vec(0usize..12, 1..4)
            .prop_map(|v| Concept::OneOf(v.into_iter().map(ind).collect())),
        (0usize..N_ROLES, proptest::collection::vec(0usize..12, 1..3))
            .prop_map(|(r, v)| Concept::Fills(role(r), v.into_iter().map(ind).collect())),
        // SAME-AS over the two attributes.
        Just(Concept::SameAs(
            vec![RoleId::from_index(N_ROLES)],
            vec![RoleId::from_index(N_ROLES + 1)],
        )),
        Just(Concept::primitive(Concept::thing(), "fresh-prim")),
        Just(Concept::disjoint_primitive(Concept::thing(), "grp", "left")),
    ];
    leaf.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            (0usize..N_ROLES, inner.clone()).prop_map(|(r, c)| Concept::all(role(r), c)),
            proptest::collection::vec(inner, 1..4).prop_map(Concept::And),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_then_parse_is_identity(c in concept_strategy()) {
        let mut schema = vocabulary();
        let printed = c.display(&schema.symbols).to_string();
        let reparsed = parse_concept(&printed, &mut schema)
            .unwrap_or_else(|e| panic!("reparse failed on {printed:?}: {e}"));
        prop_assert_eq!(&c, &reparsed, "surface form: {}", printed);
    }

    #[test]
    fn printed_forms_normalize_like_the_original(c in concept_strategy()) {
        let mut schema = vocabulary();
        let printed = c.display(&schema.symbols).to_string();
        let reparsed = parse_concept(&printed, &mut schema).expect("reparse");
        let n1 = classic_core::normalize(&c, &mut schema).expect("normalizes");
        let n2 = classic_core::normalize(&reparsed, &mut schema).expect("normalizes");
        prop_assert_eq!(n1, n2);
    }
}
