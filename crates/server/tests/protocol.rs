//! End-to-end protocol tests: every command over the wire, tenant
//! isolation, snapshot isolation across compaction, sandbox sessions,
//! the HTTP endpoints, and durability across a server restart.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use classic_server::{Json, ServerConfig, ServerHandle};

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("classic-server-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

fn start(dir: &Path) -> ServerHandle {
    classic_server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: dir.to_path_buf(),
        workers: 4,
    })
    .expect("server starts")
}

/// A line-protocol client: send one form, read one JSON reply line.
struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        Client {
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, form: &str) -> Json {
        let stream = self.reader.get_mut();
        stream.write_all(form.as_bytes()).expect("send form");
        stream.write_all(b"\n").expect("send newline");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        Json::parse(line.trim_end()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
    }

    /// Send, assert `ok:true`, return the `result` object.
    fn ok(&mut self, form: &str) -> Json {
        let reply = self.send(form);
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "form {form:?} failed: {reply:?}"
        );
        reply.get("result").expect("ok reply has result").clone()
    }

    /// Send, assert `ok:false`, return the error message.
    fn err(&mut self, form: &str) -> String {
        let reply = self.send(form);
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(false),
            "form {form:?} unexpectedly succeeded: {reply:?}"
        );
        reply
            .get("error")
            .and_then(Json::as_str)
            .expect("error reply has message")
            .to_owned()
    }
}

fn result_type(result: &Json) -> String {
    result
        .get("type")
        .and_then(Json::as_str)
        .expect("result has a type tag")
        .to_owned()
}

fn names_of(result: &Json) -> Vec<String> {
    result
        .get("names")
        .and_then(Json::as_arr)
        .expect("individuals result has names")
        .iter()
        .map(|j| j.as_str().expect("name is a string").to_owned())
        .collect()
}

/// Every `Command` variant crosses the wire and comes back as
/// well-typed JSON. This is the protocol round-trip matrix: surface
/// form in, `{"ok":true,"result":{"type":...}}` out, with the type tag
/// matching what `Outcome::render_json` promises for that command.
#[test]
fn every_command_round_trips_over_the_wire() {
    let dir = tmpdir("matrix");
    let handle = start(&dir);
    let mut c = Client::connect(&handle);

    // (command form, expected result type) in execution order; later
    // commands depend on state the earlier ones built.
    let matrix: &[(&str, &str)] = &[
        // Schema mutations.
        ("(define-role child)", "ok"),
        ("(define-attribute domicile)", "ok"),
        ("(define-concept PERSON (PRIMITIVE THING person))", "ok"),
        (
            "(define-concept PARENT (AND PERSON (AT-LEAST 1 child)))",
            "ok",
        ),
        // Individual mutations.
        ("(create-ind Mary)", "ok"),
        (
            "(assert-ind Mary (AND PERSON (FILLS child Bob)))",
            "asserted",
        ),
        ("(assert-ind Bob PERSON)", "asserted"),
        (
            "(assert-rule PARENT (AT-LEAST 1 domicile))",
            "rule-asserted",
        ),
        // Rule bookkeeping.
        ("(list-rules)", "description"),
        // Queries, all three answer modes.
        ("(retrieve PARENT)", "individuals"),
        ("(instances PARENT)", "individuals"),
        ("(possible PARENT)", "individuals"),
        (
            "(ask-necessary-set (AND PARENT (ALL child ?:PERSON)))",
            "individuals",
        ),
        (
            "(ask-description (AND PARENT (ALL child ?:PERSON)))",
            "description",
        ),
        // Terminological questions.
        ("(subsumes? PERSON PARENT)", "bool"),
        (
            "(equivalent? PARENT (AND PERSON (AT-LEAST 1 child)))",
            "bool",
        ),
        ("(disjoint? PERSON PARENT)", "bool"),
        // Aspects.
        ("(concept-aspect PARENT AT-LEAST child)", "aspect"),
        ("(ind-aspect Mary FILLS child)", "aspect"),
        // Introspection.
        ("(describe Mary)", "description"),
        ("(parents PARENT)", "concepts"),
        ("(children PERSON)", "concepts"),
        ("(classify (AND PERSON (AT-LEAST 2 child)))", "description"),
        ("(why? Mary PARENT)", "description"),
        ("(what-if? Mary (AT-MOST 1 child))", "description"),
        ("(provenance Mary)", "description"),
        // Observability.
        ("(obs-stats)", "description"),
        ("(obs-stats json)", "description"),
        ("(obs-trace *)", "description"),
        ("(obs-level)", "description"),
        ("(obs-reset)", "ok"),
        // Lint.
        ("(lint-kb)", "lint"),
        // Retractions, by form and by id.
        (
            "(retract-ind Mary (AND PERSON (FILLS child Bob)))",
            "retracted",
        ),
        ("(retract-rule PARENT (AT-LEAST 1 domicile))", "retracted"),
        // Session meta commands.
        ("(ping)", "pong"),
    ];
    for (form, want) in matrix {
        let result = c.ok(form);
        assert_eq!(
            result_type(&result),
            *want,
            "result type mismatch for {form:?}: {result:?}"
        );
    }

    // Spot-check payloads, not just type tags. The matrix ended by
    // retracting Mary's whole told description, so only Bob (asserted
    // PERSON directly) remains a known PERSON.
    let r = c.ok("(retrieve PERSON)");
    assert_eq!(names_of(&r), ["Bob"]);

    let r = c.ok("(subsumes? PERSON PARENT)");
    assert_eq!(r.get("value").and_then(Json::as_bool), Some(true));

    // Retraction above removed the only child filler: no longer a PARENT.
    let r = c.ok("(retrieve PARENT)");
    assert_eq!(names_of(&r), Vec::<String>::new());

    let r = c.ok("(concept-aspect PARENT AT-LEAST child)");
    let aspect = r.get("value").expect("aspect value");
    assert_eq!(aspect.get("kind").and_then(Json::as_str), Some("bound"));
    assert_eq!(aspect.get("n").and_then(Json::as_num), Some(1.0));

    // A second rule, retracted by id this time.
    let r = c.ok("(assert-rule PARENT (AT-LEAST 1 domicile))");
    let id = r.get("id").and_then(Json::as_num).expect("rule id") as usize;
    let r = c.ok(&format!("(retract-rule {id})"));
    assert_eq!(result_type(&r), "retracted");

    // Errors come back as ok:false with a message, connection intact.
    let msg = c.err("(retrieve NO-SUCH-CONCEPT)");
    assert!(msg.contains("undefined concept"), "unhelpful error: {msg}");
    let msg = c.err("(frobnicate)");
    assert!(msg.contains("frobnicate"), "unhelpful error: {msg}");
    assert_eq!(result_type(&c.ok("(ping)")), "pong");

    let r = c.ok("(quit)");
    assert_eq!(result_type(&r), "bye");
    handle.shutdown().expect("clean shutdown");
}

/// Two tenants in one process share nothing: schemas, individuals, and
/// on-disk directories are fully separate.
#[test]
fn tenants_are_isolated() {
    let dir = tmpdir("tenants");
    let handle = start(&dir);

    let mut a = Client::connect(&handle);
    a.ok("(tenant alpha)");
    a.ok("(define-role child)");
    a.ok("(define-concept PERSON (PRIMITIVE THING person))");
    a.ok("(create-ind Mary)");
    a.ok("(assert-ind Mary PERSON)");

    let mut b = Client::connect(&handle);
    b.ok("(tenant beta)");
    // alpha's schema is invisible here.
    let msg = b.err("(retrieve PERSON)");
    assert!(msg.contains("undefined concept"), "unhelpful error: {msg}");
    // Same names, different universe: no clash with alpha's Mary.
    b.ok("(define-concept PERSON (PRIMITIVE THING person))");
    b.ok("(create-ind Mary)");

    // alpha still answers with its own Mary.
    let r = a.ok("(retrieve PERSON)");
    assert_eq!(names_of(&r), ["Mary"]);
    // beta's Mary has nothing asserted, so PERSON has no known instances.
    let r = b.ok("(retrieve PERSON)");
    assert_eq!(names_of(&r), Vec::<String>::new());

    // Invalid tenant names are rejected before touching the filesystem.
    let msg = a.err("(tenant ../escape)");
    assert!(msg.contains("tenant name"), "unhelpful error: {msg}");

    handle.shutdown().expect("clean shutdown");
    assert!(dir.join("alpha").join("kb.log").is_file());
    assert!(dir.join("beta").join("kb.log").is_file());
}

/// A reader pinned at generation G keeps a consistent view while the
/// store compacts to G+1 and a writer lands new facts: the old
/// snapshot never sees them, a fresh snapshot does.
#[test]
fn snapshots_pin_generation_across_compaction() {
    let dir = tmpdir("snapshot");
    let handle = start(&dir);
    let shared = handle.shared().clone();
    let tenant = shared.tenant("pinned").expect("tenant opens");

    let run = |form: &str| {
        for cmd in classic_lang::parse(form).expect("parse") {
            tenant.execute(&cmd).expect("execute");
        }
    };
    run("(define-role child)");
    run("(define-concept PERSON (PRIMITIVE THING person))");
    run("(create-ind Mary) (assert-ind Mary PERSON)");

    let pinned = tenant.snapshot().expect("snapshot");
    let gen_before = pinned.generation;

    // Writer side: compact (generation bump) plus a new individual.
    tenant
        .with_store(|s| s.compact())
        .expect("store lock")
        .expect("compaction");
    run("(create-ind Bob) (assert-ind Bob PERSON)");

    let fresh = tenant.snapshot().expect("fresh snapshot");
    assert!(
        fresh.generation > gen_before,
        "compaction should advance the generation ({} -> {})",
        gen_before,
        fresh.generation
    );
    assert_eq!(pinned.generation, gen_before, "pinned snapshot moved");

    let known = |snap: &classic_server::Snapshot| -> Vec<String> {
        let cmd = classic_lang::parse_one("(retrieve PERSON)").expect("parse");
        match snap.eval(&cmd).expect("query") {
            classic_lang::Outcome::Individuals(mut names) => {
                names.sort();
                names
            }
            other => panic!("expected individuals, got {other:?}"),
        }
    };
    assert_eq!(known(&pinned), ["Mary"], "pinned snapshot saw the write");
    assert_eq!(known(&fresh), ["Bob", "Mary"]);

    // Stats reflect the post-compaction, post-write state.
    let stats = tenant.stats().expect("stats");
    assert_eq!(stats.generation, fresh.generation);
    assert_eq!(stats.individuals, 2);

    handle.shutdown().expect("clean shutdown");
}

/// Sandboxes: mutations are visible inside the session, invisible to
/// other sessions, discarded on rollback, and replayed on commit.
#[test]
fn sandboxes_isolate_and_commit() {
    let dir = tmpdir("sandbox");
    let handle = start(&dir);

    let mut a = Client::connect(&handle);
    a.ok("(define-role child)");
    a.ok("(define-concept PERSON (PRIMITIVE THING person))");
    a.ok("(create-ind Mary)");

    let r = a.ok("(sandbox begin)");
    assert_eq!(r.get("state").and_then(Json::as_str), Some("active"));
    a.ok("(assert-ind Mary PERSON)");
    a.ok("(create-ind Bob)");
    a.ok("(assert-ind Bob PERSON)");
    // Inside the sandbox: both are PERSONs.
    let mut names = names_of(&a.ok("(retrieve PERSON)"));
    names.sort();
    assert_eq!(names, ["Bob", "Mary"]);

    // A second session sees none of it.
    let mut b = Client::connect(&handle);
    assert_eq!(names_of(&b.ok("(retrieve PERSON)")), Vec::<String>::new());

    // Rollback discards all three mutations.
    let r = a.ok("(sandbox rollback)");
    assert_eq!(r.get("state").and_then(Json::as_str), Some("rolled-back"));
    assert_eq!(r.get("discarded").and_then(Json::as_num), Some(3.0));
    assert_eq!(names_of(&a.ok("(retrieve PERSON)")), Vec::<String>::new());

    // Begin again; this time commit.
    a.ok("(sandbox begin)");
    a.ok("(assert-ind Mary PERSON)");
    let r = a.ok("(sandbox commit)");
    assert_eq!(r.get("state").and_then(Json::as_str), Some("committed"));
    assert_eq!(r.get("applied").and_then(Json::as_num), Some(1.0));
    // Now the other session sees it too.
    assert_eq!(names_of(&b.ok("(retrieve PERSON)")), ["Mary"]);

    // Guard rails.
    let msg = a.err("(sandbox commit)");
    assert!(msg.contains("no sandbox"), "unhelpful error: {msg}");
    a.ok("(sandbox begin)");
    let msg = a.err("(sandbox begin)");
    assert!(msg.contains("already active"), "unhelpful error: {msg}");
    let msg = a.err("(tenant other)");
    assert!(msg.contains("sandbox"), "unhelpful error: {msg}");
    a.ok("(sandbox rollback)");

    handle.shutdown().expect("clean shutdown");
}

fn http(handle: &ServerHandle, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, payload)
}

/// The HTTP side: health, stateless eval, per-tenant stats, and the
/// Prometheus exposition including the server's own request series.
#[test]
fn http_endpoints_serve_eval_stats_and_metrics() {
    let dir = tmpdir("http");
    let handle = start(&dir);

    let (status, body) = http(&handle, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let script = "(define-role child)\n(define-concept PERSON (PRIMITIVE THING person))\n\
                  (create-ind Mary)\n(assert-ind Mary PERSON)\n(retrieve PERSON)";
    let (status, body) = http(&handle, "POST", "/eval?tenant=web", script);
    assert_eq!(status, 200, "eval failed: {body}");
    let results = Json::parse(body.trim()).expect("eval returns JSON");
    let results = results.as_arr().expect("array of results");
    assert_eq!(results.len(), 5);
    for r in results {
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
    }
    assert_eq!(names_of(results[4].get("result").unwrap()), ["Mary"]);

    // A failing form stops the batch and reports the error in place.
    let (status, body) = http(
        &handle,
        "POST",
        "/eval?tenant=web",
        "(retrieve NO-SUCH)\n(retrieve PERSON)",
    );
    assert_eq!(status, 200);
    let results = Json::parse(body.trim()).expect("JSON");
    let results = results.as_arr().expect("array");
    assert_eq!(results.len(), 1, "batch should stop at the failure");
    assert_eq!(results[0].get("ok").and_then(Json::as_bool), Some(false));

    // Parse errors are a 400 with a JSON error body.
    let (status, body) = http(&handle, "POST", "/eval?tenant=web", "(retrieve");
    assert_eq!(status, 400);
    let err = Json::parse(body.trim()).expect("JSON error body");
    assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));

    let (status, body) = http(&handle, "GET", "/stats", "");
    assert_eq!(status, 200);
    let stats = Json::parse(body.trim()).expect("stats JSON");
    let tenants = stats.get("tenants").and_then(Json::as_arr).expect("list");
    let web = tenants
        .iter()
        .find(|t| t.get("name").and_then(Json::as_str) == Some("web"))
        .expect("web tenant listed");
    assert_eq!(web.get("individuals").and_then(Json::as_num), Some(1.0));
    assert!(web.get("version").and_then(Json::as_num).unwrap_or(0.0) >= 4.0);

    let (status, body) = http(&handle, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("classic_server_requests_total"),
        "server series missing from exposition"
    );
    assert!(
        body.contains("classic_server_connections_total"),
        "connection counter missing"
    );

    let (status, _) = http(&handle, "GET", "/no-such-route", "");
    assert_eq!(status, 404);

    handle.shutdown().expect("clean shutdown");
}

/// Acknowledged writes survive a full server restart: the second
/// process replays the tenant's log and answers the same queries.
#[test]
fn acknowledged_writes_survive_restart() {
    let dir = tmpdir("restart");
    {
        let handle = start(&dir);
        let mut c = Client::connect(&handle);
        c.ok("(tenant durable)");
        c.ok("(define-role child)");
        c.ok("(define-concept PERSON (PRIMITIVE THING person))");
        c.ok("(define-concept PARENT (AND PERSON (AT-LEAST 1 child)))");
        c.ok("(create-ind Mary)");
        c.ok("(assert-ind Mary (AND PERSON (FILLS child Bob)))");
        handle.shutdown().expect("clean shutdown");
    }
    {
        let handle = start(&dir);
        let mut c = Client::connect(&handle);
        c.ok("(tenant durable)");
        // Mary's assertion (and Bob, the auto-created filler) replayed.
        assert_eq!(names_of(&c.ok("(retrieve PERSON)")), ["Mary"]);
        assert_eq!(names_of(&c.ok("(retrieve PARENT)")), ["Mary"]);
        let r = c.ok("(describe Bob)");
        assert_eq!(result_type(&r), "description");
        handle.shutdown().expect("clean shutdown");
    }
}

/// Send raw bytes as one HTTP request and return (status, payload).
/// Unlike [`http`], nothing is added or fixed up — for requests that
/// are deliberately malformed.
fn http_raw(handle: &ServerHandle, request: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.write_all(request).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, payload)
}

/// The line-protocol framer against adversarial input: escaped quotes
/// hiding parens, comments containing parens, and a form dribbled in
/// byte by byte must each produce exactly one reply, on a connection
/// that stays usable afterwards.
#[test]
fn framing_survives_adversarial_strings_and_split_writes() {
    let dir = tmpdir("framing");
    let handle = start(&dir);
    let mut c = Client::connect(&handle);

    // An escaped quote directly before an open paren inside a string:
    // a framer that mishandles the escape sees an unbalanced extra "("
    // and hangs the connection instead of replying.
    let reply = c.send("(create-ind \"a\\\"(\")");
    assert!(
        reply.get("ok").is_some(),
        "no reply to the escaped-quote form"
    );

    // Parens inside comments must not count toward balance.
    let reply = c.send("; distracting ))) ((( comment\n(ping)");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    // A form split across many TCP writes arrives intact: each byte is
    // its own segment, and the reply comes only once it balances.
    let form = "(define-concept SPLIT (PRIMITIVE THING split))\n";
    {
        let stream = c.reader.get_mut();
        for b in form.as_bytes() {
            stream.write_all(&[*b]).expect("send byte");
            stream.flush().expect("flush byte");
        }
    }
    let mut line = String::new();
    c.reader.read_line(&mut line).expect("read reply");
    let reply = Json::parse(line.trim_end()).expect("json reply");
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "split-write form failed: {line:?}"
    );

    // The session is still healthy after all of the above.
    c.ok("(ping)");
    handle.shutdown().expect("clean shutdown");
}

/// An unterminated string never completes a frame: the client gets no
/// reply (the framer is waiting, not wedged), and the server keeps
/// serving other connections.
#[test]
fn unterminated_string_starves_only_its_own_connection() {
    let dir = tmpdir("unterminated");
    let handle = start(&dir);

    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .write_all(b"(create-ind \"never closed\n")
        .expect("send");
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(300)))
        .expect("timeout");
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(0) => panic!("server closed a merely-incomplete connection"),
        Ok(_) => panic!("server replied to an incomplete form"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected read error: {e}"
        ),
    }

    // Other connections are unaffected.
    let mut c = Client::connect(&handle);
    c.ok("(ping)");
    drop(stream);
    handle.shutdown().expect("clean shutdown");
}

/// Hostile frames that can never be served — nesting past the depth cap
/// (which would otherwise stack-overflow the recursive parser and abort
/// the process) — get one error reply, then the connection closes. The
/// server survives to serve the next client.
#[test]
fn hostile_nesting_is_rejected_with_an_error_reply() {
    let dir = tmpdir("nesting");
    let handle = start(&dir);

    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.write_all(&vec![b'('; 2_000]).expect("send parens");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    let reply = Json::parse(line.trim_end()).expect("json reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        reply
            .get("error")
            .and_then(Json::as_str)
            .expect("error message")
            .contains("nests deeper"),
        "unexpected error: {line:?}"
    );
    // The connection closes after the reply…
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read to eof");
    assert!(rest.is_empty(), "data after the rejection: {rest:?}");
    // …and the server is still alive.
    let mut c = Client::connect(&handle);
    c.ok("(ping)");
    handle.shutdown().expect("clean shutdown");
}

/// HTTP request-framing limits: a POST with no Content-Length is 411
/// (it cannot be framed, only guessed at), a declared body over the 16
/// MiB cap is 413, and neither kills the server.
#[test]
fn http_length_limits_are_enforced() {
    let dir = tmpdir("http-limits");
    let handle = start(&dir);

    let (status, body) = http_raw(&handle, b"POST /eval HTTP/1.1\r\nHost: test\r\n\r\n(ping)");
    assert_eq!(status, 411, "missing length must be 411, got: {body}");

    let (status, body) = http_raw(
        &handle,
        format!(
            "POST /eval HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
            17 << 20
        )
        .as_bytes(),
    );
    assert_eq!(status, 413, "oversized body must be 413, got: {body}");

    // GET without a length is still fine, and the server still serves.
    let (status, _) = http(&handle, "GET", "/healthz", "");
    assert_eq!(status, 200);
    handle.shutdown().expect("clean shutdown");
}

/// Codes of the diagnostics in a lint result, in report order.
fn diag_codes(report: &Json) -> Vec<String> {
    report
        .get("diagnostics")
        .and_then(Json::as_arr)
        .expect("lint report has diagnostics")
        .iter()
        .map(|d| {
            d.get("code")
                .and_then(Json::as_str)
                .expect("diagnostic has a code")
                .to_owned()
        })
        .collect()
}

/// Subject strings ("concept C", "individual x") of a lint result.
fn diag_subjects(report: &Json) -> Vec<String> {
    report
        .get("diagnostics")
        .and_then(Json::as_arr)
        .expect("lint report has diagnostics")
        .iter()
        .map(|d| {
            d.get("subject")
                .and_then(Json::as_str)
                .expect("diagnostic has a subject")
                .to_owned()
        })
        .collect()
}

/// The incremental lint surface over the wire: diagnostics stay inside
/// their tenant, `(lint-on-write on)` attaches cone diagnostics to
/// mutation replies, `(lint-kb cone)` reports only the re-linted cone,
/// sandbox lint never leaks into the tenant's analysis state, and
/// `GET /lint` serves the same report over HTTP.
#[test]
fn lint_is_tenant_scoped_incremental_and_served_over_http() {
    let dir = tmpdir("lint");
    let handle = start(&dir);

    // Tenant `noisy` earns an incoherent concept (A001, error) and an
    // orphan individual (A013, info).
    let mut a = Client::connect(&handle);
    a.ok("(tenant noisy)");
    a.ok("(define-role r)");
    a.ok("(define-concept PERSON (PRIMITIVE THING person))");
    a.ok("(define-concept BROKEN (AND (AT-LEAST 2 r) (AT-MOST 1 r)))");
    a.ok("(create-ind x)");
    a.ok("(assert-ind x (AT-LEAST 1 r))");

    let report = a.ok("(lint-kb)");
    assert_eq!(result_type(&report), "lint");
    let codes = diag_codes(&report);
    assert!(
        codes.contains(&"A001".to_owned()),
        "missing A001: {codes:?}"
    );
    assert!(
        codes.contains(&"A013".to_owned()),
        "missing A013: {codes:?}"
    );

    // Tenant `quiet` shares the process but none of the diagnostics.
    let mut b = Client::connect(&handle);
    b.ok("(tenant quiet)");
    b.ok("(define-role r)");
    let clean = b.ok("(lint-kb)");
    assert_eq!(
        diag_codes(&clean),
        Vec::<String>::new(),
        "noisy's diagnostics leaked into quiet"
    );

    // lint-on-write: the mutation reply itself carries the cone
    // diagnostics, and the cone is the write's — x's identical orphan
    // finding is *not* re-derived.
    a.ok("(create-ind y)");
    a.ok("(lint-on-write on)");
    let reply = a.send("(assert-ind y (AT-LEAST 1 r))");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let lint = reply
        .get("lint")
        .expect("lint-on-write mutation reply carries lint");
    assert_eq!(result_type(lint), "lint");
    let codes = diag_codes(lint);
    assert!(
        codes.contains(&"A013".to_owned()),
        "cone misses y: {codes:?}"
    );
    let subjects = diag_subjects(lint);
    assert!(
        subjects.iter().all(|s| s == "individual y"),
        "cone reply should cover only the written individual: {subjects:?}"
    );

    // Switching it off stops the attachment.
    a.ok("(lint-on-write off)");
    let reply = a.send("(create-ind z)");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert!(reply.get("lint").is_none(), "lint attached while off");
    let msg = a.err("(lint-on-write sometimes)");
    assert!(msg.contains("on|off"), "unhelpful error: {msg}");

    // `(lint-kb cone)` reports the dirty cone only: z was just touched,
    // so its orphan finding appears, while the untouched concept-tier
    // A001 does not. The full report still carries everything.
    a.ok("(assert-ind z (AT-LEAST 1 r))");
    let cone = a.ok("(lint-kb cone)");
    assert_eq!(result_type(&cone), "lint");
    let codes = diag_codes(&cone);
    assert!(
        codes.contains(&"A013".to_owned()),
        "cone misses z: {codes:?}"
    );
    assert!(
        !codes.contains(&"A001".to_owned()),
        "cone report re-ran untouched concept checks: {codes:?}"
    );
    let full = a.ok("(lint-kb)");
    assert!(diag_codes(&full).contains(&"A001".to_owned()));

    // Sandbox lint is isolated both ways: a diagnostic introduced in
    // the sandbox shows up in sandbox `(lint-kb)`, and is gone from the
    // tenant after rollback.
    a.ok("(sandbox begin)");
    a.ok("(define-concept ALSOBROKEN (AND (AT-LEAST 3 r) (AT-MOST 2 r)))");
    let inside = a.ok("(lint-kb)");
    assert!(
        diag_subjects(&inside).contains(&"concept ALSOBROKEN".to_owned()),
        "sandbox lint missed its own definition: {inside:?}"
    );
    a.ok("(sandbox rollback)");
    let after = a.ok("(lint-kb)");
    assert!(
        !diag_subjects(&after).contains(&"concept ALSOBROKEN".to_owned()),
        "rolled-back sandbox leaked into tenant lint: {after:?}"
    );

    // The same reports over HTTP, per tenant.
    let (status, body) = http(&handle, "GET", "/lint?tenant=noisy", "");
    assert_eq!(status, 200, "GET /lint failed: {body}");
    let report = Json::parse(body.trim()).expect("lint body is JSON");
    assert_eq!(result_type(&report), "lint");
    assert!(diag_codes(&report).contains(&"A001".to_owned()));

    let (status, body) = http(&handle, "GET", "/lint?tenant=quiet&cone=1", "");
    assert_eq!(status, 200, "GET /lint cone failed: {body}");
    let report = Json::parse(body.trim()).expect("cone lint body is JSON");
    assert_eq!(result_type(&report), "lint");
    assert_eq!(diag_codes(&report), Vec::<String>::new());

    handle.shutdown().expect("clean shutdown");
}

/// `POST /ingest` streams raw CSV through the bulk pipeline: rows land
/// as individuals under an inferred TBox, the reply reports the load,
/// the segment-tier commit survives a restart, and malformed input is
/// a 400 that writes nothing.
#[test]
fn http_ingest_bulk_loads_csv() {
    let dir = tmpdir("ingest");
    {
        let handle = start(&dir);
        let csv = "id,species,legs\nrex,dog,4\ntweety,bird,2\npolly,bird,2\n";
        let (status, body) = http(
            &handle,
            "POST",
            "/ingest?tenant=pets&entity=pet&id=id&infer=1",
            csv,
        );
        assert_eq!(status, 200, "ingest failed: {body}");
        let reply = Json::parse(body.trim()).expect("ingest reply is JSON");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        let result = reply.get("result").expect("result");
        assert_eq!(result_type(result), "ingested");
        assert_eq!(result.get("rows").and_then(Json::as_num), Some(3.0));
        assert_eq!(result.get("accepted").and_then(Json::as_num), Some(3.0));
        assert_eq!(result.get("rejected").and_then(Json::as_num), Some(0.0));
        assert!(
            result
                .get("generation")
                .and_then(Json::as_num)
                .unwrap_or(0.0)
                >= 1.0
        );

        // The inferred concept answers queries immediately (the ingest
        // invalidated the snapshot cache).
        let (status, body) = http(&handle, "POST", "/eval?tenant=pets", "(retrieve PET)");
        assert_eq!(status, 200, "{body}");
        let results = Json::parse(body.trim()).expect("eval reply");
        let results = results.as_arr().expect("array");
        assert_eq!(
            names_of(results[0].get("result").unwrap()),
            ["rex", "tweety", "polly"]
        );

        // Ragged input plans to an error before anything is written.
        let (status, body) = http(
            &handle,
            "POST",
            "/ingest?tenant=pets&entity=pet&id=id",
            "id,a\nx,1,2\n",
        );
        assert_eq!(status, 400, "ragged CSV accepted: {body}");
        let err = Json::parse(body.trim()).expect("error reply is JSON");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));

        handle.shutdown().expect("clean shutdown");
    }
    {
        // Segment-tier commit (no log appends) survives a restart.
        let handle = start(&dir);
        let (status, body) = http(&handle, "POST", "/eval?tenant=pets", "(retrieve PET)");
        assert_eq!(status, 200, "{body}");
        let results = Json::parse(body.trim()).expect("eval reply");
        let results = results.as_arr().expect("array");
        assert_eq!(
            names_of(results[0].get("result").unwrap()),
            ["rex", "tweety", "polly"]
        );
        handle.shutdown().expect("clean shutdown");
    }
}
