//! End-to-end protocol tests: every command over the wire, tenant
//! isolation, snapshot isolation across compaction, sandbox sessions,
//! the HTTP endpoints, and durability across a server restart.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use classic_server::{Json, ServerConfig, ServerHandle};

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("classic-server-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

fn start(dir: &Path) -> ServerHandle {
    start_with(dir, ServerConfig::default())
}

fn start_with(dir: &Path, config: ServerConfig) -> ServerHandle {
    classic_server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: dir.to_path_buf(),
        workers: 4,
        ..config
    })
    .expect("server starts")
}

/// A line-protocol client: send one form, read one JSON reply line.
struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        Client {
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, form: &str) -> Json {
        let stream = self.reader.get_mut();
        stream.write_all(form.as_bytes()).expect("send form");
        stream.write_all(b"\n").expect("send newline");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        Json::parse(line.trim_end()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
    }

    /// Send, assert `ok:true`, return the `result` object.
    fn ok(&mut self, form: &str) -> Json {
        let reply = self.send(form);
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "form {form:?} failed: {reply:?}"
        );
        reply.get("result").expect("ok reply has result").clone()
    }

    /// Send, assert `ok:false`, return the error message.
    fn err(&mut self, form: &str) -> String {
        let reply = self.send(form);
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(false),
            "form {form:?} unexpectedly succeeded: {reply:?}"
        );
        reply
            .get("error")
            .and_then(Json::as_str)
            .expect("error reply has message")
            .to_owned()
    }
}

fn result_type(result: &Json) -> String {
    result
        .get("type")
        .and_then(Json::as_str)
        .expect("result has a type tag")
        .to_owned()
}

fn names_of(result: &Json) -> Vec<String> {
    result
        .get("names")
        .and_then(Json::as_arr)
        .expect("individuals result has names")
        .iter()
        .map(|j| j.as_str().expect("name is a string").to_owned())
        .collect()
}

/// Every `Command` variant crosses the wire and comes back as
/// well-typed JSON. This is the protocol round-trip matrix: surface
/// form in, `{"ok":true,"result":{"type":...}}` out, with the type tag
/// matching what `Outcome::render_json` promises for that command.
#[test]
fn every_command_round_trips_over_the_wire() {
    let dir = tmpdir("matrix");
    let handle = start(&dir);
    let mut c = Client::connect(&handle);

    // (command form, expected result type) in execution order; later
    // commands depend on state the earlier ones built.
    let matrix: &[(&str, &str)] = &[
        // Schema mutations.
        ("(define-role child)", "ok"),
        ("(define-attribute domicile)", "ok"),
        ("(define-concept PERSON (PRIMITIVE THING person))", "ok"),
        (
            "(define-concept PARENT (AND PERSON (AT-LEAST 1 child)))",
            "ok",
        ),
        // Individual mutations.
        ("(create-ind Mary)", "ok"),
        (
            "(assert-ind Mary (AND PERSON (FILLS child Bob)))",
            "asserted",
        ),
        ("(assert-ind Bob PERSON)", "asserted"),
        (
            "(assert-rule PARENT (AT-LEAST 1 domicile))",
            "rule-asserted",
        ),
        // Rule bookkeeping.
        ("(list-rules)", "description"),
        // Queries, all three answer modes.
        ("(retrieve PARENT)", "individuals"),
        ("(instances PARENT)", "individuals"),
        ("(possible PARENT)", "individuals"),
        (
            "(ask-necessary-set (AND PARENT (ALL child ?:PERSON)))",
            "individuals",
        ),
        (
            "(ask-description (AND PARENT (ALL child ?:PERSON)))",
            "description",
        ),
        // Terminological questions.
        ("(subsumes? PERSON PARENT)", "bool"),
        (
            "(equivalent? PARENT (AND PERSON (AT-LEAST 1 child)))",
            "bool",
        ),
        ("(disjoint? PERSON PARENT)", "bool"),
        // Aspects.
        ("(concept-aspect PARENT AT-LEAST child)", "aspect"),
        ("(ind-aspect Mary FILLS child)", "aspect"),
        // Introspection.
        ("(describe Mary)", "description"),
        ("(parents PARENT)", "concepts"),
        ("(children PERSON)", "concepts"),
        ("(classify (AND PERSON (AT-LEAST 2 child)))", "description"),
        ("(why? Mary PARENT)", "description"),
        ("(what-if? Mary (AT-MOST 1 child))", "description"),
        ("(provenance Mary)", "description"),
        // Observability.
        ("(obs-stats)", "description"),
        ("(obs-stats json)", "description"),
        ("(obs-trace *)", "description"),
        ("(obs-level)", "description"),
        ("(obs-reset)", "ok"),
        // Lint.
        ("(lint-kb)", "lint"),
        // Retractions, by form and by id.
        (
            "(retract-ind Mary (AND PERSON (FILLS child Bob)))",
            "retracted",
        ),
        ("(retract-rule PARENT (AT-LEAST 1 domicile))", "retracted"),
        // Session meta commands.
        ("(ping)", "pong"),
    ];
    for (form, want) in matrix {
        let result = c.ok(form);
        assert_eq!(
            result_type(&result),
            *want,
            "result type mismatch for {form:?}: {result:?}"
        );
    }

    // Spot-check payloads, not just type tags. The matrix ended by
    // retracting Mary's whole told description, so only Bob (asserted
    // PERSON directly) remains a known PERSON.
    let r = c.ok("(retrieve PERSON)");
    assert_eq!(names_of(&r), ["Bob"]);

    let r = c.ok("(subsumes? PERSON PARENT)");
    assert_eq!(r.get("value").and_then(Json::as_bool), Some(true));

    // Retraction above removed the only child filler: no longer a PARENT.
    let r = c.ok("(retrieve PARENT)");
    assert_eq!(names_of(&r), Vec::<String>::new());

    let r = c.ok("(concept-aspect PARENT AT-LEAST child)");
    let aspect = r.get("value").expect("aspect value");
    assert_eq!(aspect.get("kind").and_then(Json::as_str), Some("bound"));
    assert_eq!(aspect.get("n").and_then(Json::as_num), Some(1.0));

    // A second rule, retracted by id this time.
    let r = c.ok("(assert-rule PARENT (AT-LEAST 1 domicile))");
    let id = r.get("id").and_then(Json::as_num).expect("rule id") as usize;
    let r = c.ok(&format!("(retract-rule {id})"));
    assert_eq!(result_type(&r), "retracted");

    // Errors come back as ok:false with a message, connection intact.
    let msg = c.err("(retrieve NO-SUCH-CONCEPT)");
    assert!(msg.contains("undefined concept"), "unhelpful error: {msg}");
    let msg = c.err("(frobnicate)");
    assert!(msg.contains("frobnicate"), "unhelpful error: {msg}");
    assert_eq!(result_type(&c.ok("(ping)")), "pong");

    let r = c.ok("(quit)");
    assert_eq!(result_type(&r), "bye");
    handle.shutdown().expect("clean shutdown");
}

/// Two tenants in one process share nothing: schemas, individuals, and
/// on-disk directories are fully separate.
#[test]
fn tenants_are_isolated() {
    let dir = tmpdir("tenants");
    let handle = start(&dir);

    let mut a = Client::connect(&handle);
    a.ok("(tenant alpha)");
    a.ok("(define-role child)");
    a.ok("(define-concept PERSON (PRIMITIVE THING person))");
    a.ok("(create-ind Mary)");
    a.ok("(assert-ind Mary PERSON)");

    let mut b = Client::connect(&handle);
    b.ok("(tenant beta)");
    // alpha's schema is invisible here.
    let msg = b.err("(retrieve PERSON)");
    assert!(msg.contains("undefined concept"), "unhelpful error: {msg}");
    // Same names, different universe: no clash with alpha's Mary.
    b.ok("(define-concept PERSON (PRIMITIVE THING person))");
    b.ok("(create-ind Mary)");

    // alpha still answers with its own Mary.
    let r = a.ok("(retrieve PERSON)");
    assert_eq!(names_of(&r), ["Mary"]);
    // beta's Mary has nothing asserted, so PERSON has no known instances.
    let r = b.ok("(retrieve PERSON)");
    assert_eq!(names_of(&r), Vec::<String>::new());

    // Invalid tenant names are rejected before touching the filesystem.
    let msg = a.err("(tenant ../escape)");
    assert!(msg.contains("tenant name"), "unhelpful error: {msg}");

    handle.shutdown().expect("clean shutdown");
    assert!(dir.join("alpha").join("kb.log").is_file());
    assert!(dir.join("beta").join("kb.log").is_file());
}

/// A reader pinned at generation G keeps a consistent view while the
/// store compacts to G+1 and a writer lands new facts: the old
/// snapshot never sees them, a fresh snapshot does.
#[test]
fn snapshots_pin_generation_across_compaction() {
    let dir = tmpdir("snapshot");
    let handle = start(&dir);
    let shared = handle.shared().clone();
    let tenant = shared.tenant("pinned").expect("tenant opens");

    let run = |form: &str| {
        for cmd in classic_lang::parse(form).expect("parse") {
            tenant.execute(&cmd).expect("execute");
        }
    };
    run("(define-role child)");
    run("(define-concept PERSON (PRIMITIVE THING person))");
    run("(create-ind Mary) (assert-ind Mary PERSON)");

    let pinned = tenant.snapshot().expect("snapshot");
    let gen_before = pinned.generation;

    // Writer side: compact (generation bump) plus a new individual.
    tenant
        .with_store(|s| s.compact())
        .expect("store lock")
        .expect("compaction");
    run("(create-ind Bob) (assert-ind Bob PERSON)");

    let fresh = tenant.snapshot().expect("fresh snapshot");
    assert!(
        fresh.generation > gen_before,
        "compaction should advance the generation ({} -> {})",
        gen_before,
        fresh.generation
    );
    assert_eq!(pinned.generation, gen_before, "pinned snapshot moved");

    let known = |snap: &classic_server::Snapshot| -> Vec<String> {
        let cmd = classic_lang::parse_one("(retrieve PERSON)").expect("parse");
        match snap.eval(&cmd).expect("query") {
            classic_lang::Outcome::Individuals(mut names) => {
                names.sort();
                names
            }
            other => panic!("expected individuals, got {other:?}"),
        }
    };
    assert_eq!(known(&pinned), ["Mary"], "pinned snapshot saw the write");
    assert_eq!(known(&fresh), ["Bob", "Mary"]);

    // Stats reflect the post-compaction, post-write state.
    let stats = tenant.stats().expect("stats");
    assert_eq!(stats.generation, fresh.generation);
    assert_eq!(stats.individuals, 2);

    handle.shutdown().expect("clean shutdown");
}

/// Sandboxes: mutations are visible inside the session, invisible to
/// other sessions, discarded on rollback, and replayed on commit.
#[test]
fn sandboxes_isolate_and_commit() {
    let dir = tmpdir("sandbox");
    let handle = start(&dir);

    let mut a = Client::connect(&handle);
    a.ok("(define-role child)");
    a.ok("(define-concept PERSON (PRIMITIVE THING person))");
    a.ok("(create-ind Mary)");

    let r = a.ok("(sandbox begin)");
    assert_eq!(r.get("state").and_then(Json::as_str), Some("active"));
    a.ok("(assert-ind Mary PERSON)");
    a.ok("(create-ind Bob)");
    a.ok("(assert-ind Bob PERSON)");
    // Inside the sandbox: both are PERSONs.
    let mut names = names_of(&a.ok("(retrieve PERSON)"));
    names.sort();
    assert_eq!(names, ["Bob", "Mary"]);

    // A second session sees none of it.
    let mut b = Client::connect(&handle);
    assert_eq!(names_of(&b.ok("(retrieve PERSON)")), Vec::<String>::new());

    // Rollback discards all three mutations.
    let r = a.ok("(sandbox rollback)");
    assert_eq!(r.get("state").and_then(Json::as_str), Some("rolled-back"));
    assert_eq!(r.get("discarded").and_then(Json::as_num), Some(3.0));
    assert_eq!(names_of(&a.ok("(retrieve PERSON)")), Vec::<String>::new());

    // Begin again; this time commit.
    a.ok("(sandbox begin)");
    a.ok("(assert-ind Mary PERSON)");
    let r = a.ok("(sandbox commit)");
    assert_eq!(r.get("state").and_then(Json::as_str), Some("committed"));
    assert_eq!(r.get("applied").and_then(Json::as_num), Some(1.0));
    // Now the other session sees it too.
    assert_eq!(names_of(&b.ok("(retrieve PERSON)")), ["Mary"]);

    // Guard rails.
    let msg = a.err("(sandbox commit)");
    assert!(msg.contains("no sandbox"), "unhelpful error: {msg}");
    a.ok("(sandbox begin)");
    let msg = a.err("(sandbox begin)");
    assert!(msg.contains("already active"), "unhelpful error: {msg}");
    let msg = a.err("(tenant other)");
    assert!(msg.contains("sandbox"), "unhelpful error: {msg}");
    a.ok("(sandbox rollback)");

    handle.shutdown().expect("clean shutdown");
}

fn http(handle: &ServerHandle, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, payload)
}

/// The HTTP side: health, stateless eval, per-tenant stats, and the
/// Prometheus exposition including the server's own request series.
#[test]
fn http_endpoints_serve_eval_stats_and_metrics() {
    let dir = tmpdir("http");
    let handle = start(&dir);

    let (status, body) = http(&handle, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let script = "(define-role child)\n(define-concept PERSON (PRIMITIVE THING person))\n\
                  (create-ind Mary)\n(assert-ind Mary PERSON)\n(retrieve PERSON)";
    let (status, body) = http(&handle, "POST", "/eval?tenant=web", script);
    assert_eq!(status, 200, "eval failed: {body}");
    let results = Json::parse(body.trim()).expect("eval returns JSON");
    let results = results.as_arr().expect("array of results");
    assert_eq!(results.len(), 5);
    for r in results {
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
    }
    assert_eq!(names_of(results[4].get("result").unwrap()), ["Mary"]);

    // A failing form stops the batch and reports the error in place.
    let (status, body) = http(
        &handle,
        "POST",
        "/eval?tenant=web",
        "(retrieve NO-SUCH)\n(retrieve PERSON)",
    );
    assert_eq!(status, 200);
    let results = Json::parse(body.trim()).expect("JSON");
    let results = results.as_arr().expect("array");
    assert_eq!(results.len(), 1, "batch should stop at the failure");
    assert_eq!(results[0].get("ok").and_then(Json::as_bool), Some(false));

    // Parse errors are a 400 with a JSON error body.
    let (status, body) = http(&handle, "POST", "/eval?tenant=web", "(retrieve");
    assert_eq!(status, 400);
    let err = Json::parse(body.trim()).expect("JSON error body");
    assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));

    let (status, body) = http(&handle, "GET", "/stats", "");
    assert_eq!(status, 200);
    let stats = Json::parse(body.trim()).expect("stats JSON");
    let tenants = stats.get("tenants").and_then(Json::as_arr).expect("list");
    let web = tenants
        .iter()
        .find(|t| t.get("name").and_then(Json::as_str) == Some("web"))
        .expect("web tenant listed");
    assert_eq!(web.get("individuals").and_then(Json::as_num), Some(1.0));
    assert!(web.get("version").and_then(Json::as_num).unwrap_or(0.0) >= 4.0);

    let (status, body) = http(&handle, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("classic_server_requests_total"),
        "server series missing from exposition"
    );
    assert!(
        body.contains("classic_server_connections_total"),
        "connection counter missing"
    );

    let (status, _) = http(&handle, "GET", "/no-such-route", "");
    assert_eq!(status, 404);

    handle.shutdown().expect("clean shutdown");
}

/// Send one HTTP request verbatim and return (status, head, body) — for
/// tests that need to inspect response headers.
fn http_headers(handle: &ServerHandle, request: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_owned(), b.to_owned()))
        .unwrap_or((response.clone(), String::new()));
    (status, head, body)
}

/// The tentpole end to end on the line protocol: a client-adopted trace
/// id flows through the session into the span layer, the resulting span
/// tree roots at `server.request` with tenant/session/kind attribution,
/// and `GET /trace?id=…` exports it as strict, monotonically consistent
/// Chrome trace-event JSON. Malformed, oversize, and zero ids are
/// positioned errors that adopt nothing.
#[test]
fn trace_ids_adopt_propagate_and_export_as_chrome_json() {
    let dir = tmpdir("trace");
    let handle = start(&dir);
    // The level is process-global and tests run in parallel: only ever
    // raise it (Full is a superset of every lower level), never restore,
    // so no test can yank tracing out from under another.
    classic_obs::set_level(classic_obs::ObsLevel::Full);
    let mut c = Client::connect(&handle);
    c.ok("(tenant traced)");

    // Adoption: the reply echoes the zero-extended id, the *next* form
    // runs under it.
    let r = c.ok("(trace-id \"deadbeef\")");
    assert_eq!(
        r.get("id").and_then(Json::as_str),
        Some("000000000000000000000000deadbeef")
    );
    c.ok("(define-role child)");

    let (status, body) = http(&handle, "GET", "/trace?id=deadbeef", "");
    assert_eq!(status, 200, "trace export failed: {body}");
    let dump = Json::parse(body.trim()).expect("chrome dump parses under the strict parser");
    let events = dump
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let spans: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert!(!spans.is_empty(), "no spans exported: {body}");

    // The root span is the wire request, attributed to tenant and kind.
    let root = spans
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("server.request"))
        .expect("span tree roots at server.request");
    let args = root.get("args").expect("root span carries args");
    assert_eq!(
        args.get("trace_id").and_then(Json::as_str),
        Some("000000000000000000000000deadbeef")
    );
    assert_eq!(args.get("tenant").and_then(Json::as_str), Some("traced"));
    assert_eq!(args.get("kind").and_then(Json::as_str), Some("define-role"));
    assert!(args.get("session").and_then(Json::as_num).is_some());

    // ts/dur are monotonically consistent: every span nests inside the
    // request root's [ts, ts+dur] window.
    let ts = |e: &Json| e.get("ts").and_then(Json::as_num).expect("ts");
    let dur = |e: &Json| e.get("dur").and_then(Json::as_num).expect("dur");
    let (rts, rdur) = (ts(root), dur(root));
    for s in &spans {
        assert!(ts(s) + 1e-3 >= rts, "span starts before the root: {s:?}");
        assert!(
            ts(s) + dur(s) <= rts + rdur + 1e-3,
            "span outlives the root: {s:?}"
        );
    }

    // Malformed, oversize, and zero ids: positioned errors, nothing
    // adopted, connection intact.
    let msg = c.err("(trace-id \"xyz\")");
    assert!(
        msg.contains("invalid trace id") && msg.contains("byte"),
        "unpositioned error: {msg}"
    );
    let msg = c.err(&format!("(trace-id \"{}\")", "a".repeat(33)));
    assert!(msg.contains("oversize"), "unhelpful error: {msg}");
    let msg = c.err("(trace-id \"0\")");
    assert!(msg.contains("zero"), "unhelpful error: {msg}");
    let msg = c.err("(trace-id)");
    assert!(msg.contains("trace-id"), "unhelpful error: {msg}");
    c.ok("(ping)");

    handle.shutdown().expect("clean shutdown");
}

/// `POST /eval` adopts `X-Classic-Trace`, echoes the id in effect on
/// the response, and answers a malformed header with a positioned 400
/// rather than silently minting a fresh id.
#[test]
fn http_eval_adopts_and_echoes_trace_ids() {
    let dir = tmpdir("http-trace");
    let handle = start(&dir);

    let post = |trace_header: &str, body: &str| {
        format!(
            "POST /eval?tenant=webtrace HTTP/1.1\r\nHost: test\r\n{trace_header}\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
    };

    // Client-supplied id comes back zero-extended in the echo header.
    // (`(ping)` is a session form the stateless endpoint rejects, so
    // the probe command here is a real one.)
    let (status, head, _) = http_headers(&handle, &post("X-Classic-Trace: abc\r\n", "(obs-stats)"));
    assert_eq!(status, 200);
    assert!(
        head.contains("X-Classic-Trace: 00000000000000000000000000000abc"),
        "echo header missing or wrong: {head}"
    );

    // No header: a minted 32-hex id is echoed.
    let (status, head, _) = http_headers(&handle, &post("", "(obs-stats)"));
    assert_eq!(status, 200);
    let echoed = head
        .lines()
        .find_map(|l| l.strip_prefix("X-Classic-Trace: "))
        .expect("minted id echoed");
    assert_eq!(echoed.trim().len(), 32, "minted id not 32 hex: {echoed:?}");
    assert!(echoed.trim().chars().all(|c| c.is_ascii_hexdigit()));

    // Malformed header: positioned 400 naming the header, not a mint.
    let (status, _, body) = http_headers(
        &handle,
        &post("X-Classic-Trace: not-hex!\r\n", "(obs-stats)"),
    );
    assert_eq!(status, 400, "malformed trace header accepted: {body}");
    let err = Json::parse(body.trim()).expect("error body is JSON");
    let msg = err.get("error").and_then(Json::as_str).expect("message");
    assert!(
        msg.contains("X-Classic-Trace") && msg.contains("byte"),
        "unpositioned error: {msg}"
    );

    handle.shutdown().expect("clean shutdown");
}

/// The process slowlog captures wire requests with tenant attribution
/// and serves them as strict JSON on `GET /slowlog`; at Full the
/// entries carry span trees rooted at `server.request`.
#[test]
fn slowlog_attributes_requests_and_serves_json() {
    let dir = tmpdir("slowlog");
    let handle = start(&dir);
    // Raise, never lower (see the trace test).
    classic_obs::set_level(classic_obs::ObsLevel::Full);
    // The slowlog is process-global (tests share it): clear, then make
    // our entries — admission is guaranteed while it is under capacity.
    classic_obs::global_slowlog().clear();

    let mut c = Client::connect(&handle);
    c.ok("(tenant slowtenant)");
    c.ok("(define-role r)");

    let (status, body) = http(&handle, "GET", "/slowlog?n=32", "");
    assert_eq!(status, 200);
    let log = Json::parse(body.trim()).expect("slowlog is strict JSON");
    let entries = log
        .get("slowlog")
        .and_then(Json::as_arr)
        .expect("slowlog array");
    let ours: Vec<&Json> = entries
        .iter()
        .filter(|e| e.get("tenant").and_then(Json::as_str) == Some("slowtenant"))
        .collect();
    assert!(
        !ours.is_empty(),
        "no slowlog entries for our tenant: {body}"
    );
    for e in &ours {
        let id = e.get("trace_id").and_then(Json::as_str).expect("trace id");
        assert_eq!(id.len(), 32, "trace id not 32 hex: {id:?}");
        assert!(e.get("dur_ns").and_then(Json::as_num).unwrap_or(-1.0) >= 0.0);
        // Entries traced at Full root at the wire request.
        if e.get("sampled").and_then(Json::as_bool) == Some(true) {
            assert_eq!(
                e.get("root").and_then(Json::as_str),
                Some("server.request"),
                "slowlog entry not rooted at the request: {e:?}"
            );
        }
    }
    assert!(
        ours.iter()
            .any(|e| e.get("kind").and_then(Json::as_str) == Some("define-role")),
        "mutation kind missing from slowlog: {body}"
    );

    // The same forensics over the wire as a REPL-style form.
    let r = c.ok("(obs-slowlog 5)");
    assert_eq!(result_type(&r), "description");

    handle.shutdown().expect("clean shutdown");
}

/// `(obs-level)`/`(obs-sample)` over the wire are gated by the operator
/// floors: lowering below the floor is rejected (in and out of
/// sandboxes), raising and querying are allowed.
#[test]
fn obs_switches_are_floor_gated_over_the_wire() {
    let dir = tmpdir("floors");
    let handle = start_with(
        &dir,
        ServerConfig {
            sample_floor: 0.5,
            ..ServerConfig::default()
        },
    );
    let mut c = Client::connect(&handle);

    // Default obs floor is counters: off is below it.
    let msg = c.err("(obs-level off)");
    assert!(msg.contains("operator floor"), "unhelpful error: {msg}");
    let msg = c.err("(obs-sample 0.25)");
    assert!(msg.contains("operator floor"), "unhelpful error: {msg}");

    // Raising and querying pass the gate. (Only raises here: the level
    // and rate are process-global, and parallel tests depend on them
    // never dropping.)
    assert_eq!(result_type(&c.ok("(obs-level)")), "description");
    assert_eq!(result_type(&c.ok("(obs-sample)")), "description");
    assert_eq!(result_type(&c.ok("(obs-sample 1.0)")), "description");
    assert_eq!(result_type(&c.ok("(obs-level full)")), "description");

    // The gate also covers sandboxed evaluation — the switches are
    // global, so the sandbox is no escape hatch.
    c.ok("(sandbox begin)");
    let msg = c.err("(obs-level off)");
    assert!(msg.contains("operator floor"), "sandbox bypassed the gate");
    let msg = c.err("(obs-sample 0.1)");
    assert!(msg.contains("operator floor"), "sandbox bypassed the gate");
    c.ok("(sandbox rollback)");

    // Nonsense levels still get the evaluator's own error.
    let msg = c.err("(obs-level loud)");
    assert!(msg.contains("loud"), "unhelpful error: {msg}");

    handle.shutdown().expect("clean shutdown");
}

/// `/metrics` carries per-tenant labeled sections and an OpenMetrics
/// exemplar on the request-latency histogram.
#[test]
fn metrics_carry_tenant_labels_and_exemplars() {
    let dir = tmpdir("labeled");
    let handle = start(&dir);
    let mut c = Client::connect(&handle);
    c.ok("(tenant acme)");
    c.ok("(ping)");

    let (status, body) = http(&handle, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("classic_tenant_requests_total{tenant=\"acme\"}"),
        "per-tenant labeled series missing: {body}"
    );
    // The tenant's own KB series are labeled too.
    assert!(
        body.lines()
            .any(|l| l.contains("{tenant=\"acme\"") || l.contains(",tenant=\"acme\"")),
        "no labeled section for acme"
    );
    assert!(
        body.lines().any(|l| {
            l.starts_with("classic_server_request_ns_bucket") && l.contains(" # {trace_id=\"")
        }),
        "no exemplar on the request histogram: {body}"
    );

    handle.shutdown().expect("clean shutdown");
}

/// The push-gateway flusher delivers the full exposition over HTTP and
/// performs one final flush during graceful shutdown.
#[test]
fn push_gateway_receives_the_exposition() {
    use std::net::TcpListener;

    let gw = TcpListener::bind("127.0.0.1:0").expect("bind gateway");
    let gw_addr = gw.local_addr().expect("gateway addr");
    let gw_thread = std::thread::spawn(move || -> Vec<String> {
        let mut bodies = Vec::new();
        for stream in gw.incoming() {
            let Ok(mut s) = stream else { break };
            let _ = s.set_read_timeout(Some(std::time::Duration::from_secs(2)));
            let mut data = Vec::new();
            let mut tmp = [0u8; 4096];
            loop {
                // A full request has its declared body; a sentinel (no
                // Content-Length) ends at EOF.
                let done = std::str::from_utf8(&data).ok().is_some_and(|t| {
                    t.split_once("\r\n\r\n").is_some_and(|(head, body)| {
                        head.lines()
                            .filter_map(|l| l.split_once(':'))
                            .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
                            .and_then(|(_, v)| v.trim().parse::<usize>().ok())
                            .is_some_and(|n| body.len() >= n)
                    })
                });
                if done {
                    break;
                }
                match s.read(&mut tmp) {
                    Ok(0) => break,
                    Ok(n) => data.extend_from_slice(&tmp[..n]),
                    Err(_) => break,
                }
            }
            let text = String::from_utf8_lossy(&data).into_owned();
            if text.starts_with("STOP") {
                break;
            }
            let _ =
                s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\nConnection: close\r\n\r\n");
            bodies.push(text);
        }
        bodies
    });

    let dir = tmpdir("push");
    let handle = start_with(
        &dir,
        ServerConfig {
            push_gateway: Some(format!("http://{gw_addr}/push/classic")),
            push_interval_secs: 1,
            ..ServerConfig::default()
        },
    );
    let mut c = Client::connect(&handle);
    c.ok("(ping)");
    drop(c);
    // shutdown() joins the pusher, which flushes once more on its way
    // out — so by the time this returns, the gateway has seen a POST.
    handle.shutdown().expect("clean shutdown");

    let mut stop = TcpStream::connect(gw_addr).expect("stop gateway");
    stop.write_all(b"STOP").expect("send stop");
    let _ = stop.shutdown(std::net::Shutdown::Write);
    drop(stop);
    let bodies = gw_thread.join().expect("gateway thread");
    assert!(!bodies.is_empty(), "gateway never received a push");
    let push = bodies
        .iter()
        .find(|b| b.contains("classic_server_requests_total"))
        .expect("push carries the exposition");
    assert!(
        push.starts_with("POST /push/classic HTTP/1.1"),
        "push used the wrong route: {}",
        push.lines().next().unwrap_or("")
    );
}

/// Acknowledged writes survive a full server restart: the second
/// process replays the tenant's log and answers the same queries.
#[test]
fn acknowledged_writes_survive_restart() {
    let dir = tmpdir("restart");
    {
        let handle = start(&dir);
        let mut c = Client::connect(&handle);
        c.ok("(tenant durable)");
        c.ok("(define-role child)");
        c.ok("(define-concept PERSON (PRIMITIVE THING person))");
        c.ok("(define-concept PARENT (AND PERSON (AT-LEAST 1 child)))");
        c.ok("(create-ind Mary)");
        c.ok("(assert-ind Mary (AND PERSON (FILLS child Bob)))");
        handle.shutdown().expect("clean shutdown");
    }
    {
        let handle = start(&dir);
        let mut c = Client::connect(&handle);
        c.ok("(tenant durable)");
        // Mary's assertion (and Bob, the auto-created filler) replayed.
        assert_eq!(names_of(&c.ok("(retrieve PERSON)")), ["Mary"]);
        assert_eq!(names_of(&c.ok("(retrieve PARENT)")), ["Mary"]);
        let r = c.ok("(describe Bob)");
        assert_eq!(result_type(&r), "description");
        handle.shutdown().expect("clean shutdown");
    }
}

/// Send raw bytes as one HTTP request and return (status, payload).
/// Unlike [`http`], nothing is added or fixed up — for requests that
/// are deliberately malformed.
fn http_raw(handle: &ServerHandle, request: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.write_all(request).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, payload)
}

/// The line-protocol framer against adversarial input: escaped quotes
/// hiding parens, comments containing parens, and a form dribbled in
/// byte by byte must each produce exactly one reply, on a connection
/// that stays usable afterwards.
#[test]
fn framing_survives_adversarial_strings_and_split_writes() {
    let dir = tmpdir("framing");
    let handle = start(&dir);
    let mut c = Client::connect(&handle);

    // An escaped quote directly before an open paren inside a string:
    // a framer that mishandles the escape sees an unbalanced extra "("
    // and hangs the connection instead of replying.
    let reply = c.send("(create-ind \"a\\\"(\")");
    assert!(
        reply.get("ok").is_some(),
        "no reply to the escaped-quote form"
    );

    // Parens inside comments must not count toward balance.
    let reply = c.send("; distracting ))) ((( comment\n(ping)");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    // A form split across many TCP writes arrives intact: each byte is
    // its own segment, and the reply comes only once it balances.
    let form = "(define-concept SPLIT (PRIMITIVE THING split))\n";
    {
        let stream = c.reader.get_mut();
        for b in form.as_bytes() {
            stream.write_all(&[*b]).expect("send byte");
            stream.flush().expect("flush byte");
        }
    }
    let mut line = String::new();
    c.reader.read_line(&mut line).expect("read reply");
    let reply = Json::parse(line.trim_end()).expect("json reply");
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "split-write form failed: {line:?}"
    );

    // The session is still healthy after all of the above.
    c.ok("(ping)");
    handle.shutdown().expect("clean shutdown");
}

/// An unterminated string never completes a frame: the client gets no
/// reply (the framer is waiting, not wedged), and the server keeps
/// serving other connections.
#[test]
fn unterminated_string_starves_only_its_own_connection() {
    let dir = tmpdir("unterminated");
    let handle = start(&dir);

    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .write_all(b"(create-ind \"never closed\n")
        .expect("send");
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(300)))
        .expect("timeout");
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(0) => panic!("server closed a merely-incomplete connection"),
        Ok(_) => panic!("server replied to an incomplete form"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected read error: {e}"
        ),
    }

    // Other connections are unaffected.
    let mut c = Client::connect(&handle);
    c.ok("(ping)");
    drop(stream);
    handle.shutdown().expect("clean shutdown");
}

/// Hostile frames that can never be served — nesting past the depth cap
/// (which would otherwise stack-overflow the recursive parser and abort
/// the process) — get one error reply, then the connection closes. The
/// server survives to serve the next client.
#[test]
fn hostile_nesting_is_rejected_with_an_error_reply() {
    let dir = tmpdir("nesting");
    let handle = start(&dir);

    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.write_all(&vec![b'('; 2_000]).expect("send parens");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    let reply = Json::parse(line.trim_end()).expect("json reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        reply
            .get("error")
            .and_then(Json::as_str)
            .expect("error message")
            .contains("nests deeper"),
        "unexpected error: {line:?}"
    );
    // The connection closes after the reply…
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read to eof");
    assert!(rest.is_empty(), "data after the rejection: {rest:?}");
    // …and the server is still alive.
    let mut c = Client::connect(&handle);
    c.ok("(ping)");
    handle.shutdown().expect("clean shutdown");
}

/// HTTP request-framing limits: a POST with no Content-Length is 411
/// (it cannot be framed, only guessed at), a declared body over the 16
/// MiB cap is 413, and neither kills the server.
#[test]
fn http_length_limits_are_enforced() {
    let dir = tmpdir("http-limits");
    let handle = start(&dir);

    let (status, body) = http_raw(&handle, b"POST /eval HTTP/1.1\r\nHost: test\r\n\r\n(ping)");
    assert_eq!(status, 411, "missing length must be 411, got: {body}");

    let (status, body) = http_raw(
        &handle,
        format!(
            "POST /eval HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
            17 << 20
        )
        .as_bytes(),
    );
    assert_eq!(status, 413, "oversized body must be 413, got: {body}");

    // GET without a length is still fine, and the server still serves.
    let (status, _) = http(&handle, "GET", "/healthz", "");
    assert_eq!(status, 200);
    handle.shutdown().expect("clean shutdown");
}

/// Codes of the diagnostics in a lint result, in report order.
fn diag_codes(report: &Json) -> Vec<String> {
    report
        .get("diagnostics")
        .and_then(Json::as_arr)
        .expect("lint report has diagnostics")
        .iter()
        .map(|d| {
            d.get("code")
                .and_then(Json::as_str)
                .expect("diagnostic has a code")
                .to_owned()
        })
        .collect()
}

/// Subject strings ("concept C", "individual x") of a lint result.
fn diag_subjects(report: &Json) -> Vec<String> {
    report
        .get("diagnostics")
        .and_then(Json::as_arr)
        .expect("lint report has diagnostics")
        .iter()
        .map(|d| {
            d.get("subject")
                .and_then(Json::as_str)
                .expect("diagnostic has a subject")
                .to_owned()
        })
        .collect()
}

/// The incremental lint surface over the wire: diagnostics stay inside
/// their tenant, `(lint-on-write on)` attaches cone diagnostics to
/// mutation replies, `(lint-kb cone)` reports only the re-linted cone,
/// sandbox lint never leaks into the tenant's analysis state, and
/// `GET /lint` serves the same report over HTTP.
#[test]
fn lint_is_tenant_scoped_incremental_and_served_over_http() {
    let dir = tmpdir("lint");
    let handle = start(&dir);

    // Tenant `noisy` earns an incoherent concept (A001, error) and an
    // orphan individual (A013, info).
    let mut a = Client::connect(&handle);
    a.ok("(tenant noisy)");
    a.ok("(define-role r)");
    a.ok("(define-concept PERSON (PRIMITIVE THING person))");
    a.ok("(define-concept BROKEN (AND (AT-LEAST 2 r) (AT-MOST 1 r)))");
    a.ok("(create-ind x)");
    a.ok("(assert-ind x (AT-LEAST 1 r))");

    let report = a.ok("(lint-kb)");
    assert_eq!(result_type(&report), "lint");
    let codes = diag_codes(&report);
    assert!(
        codes.contains(&"A001".to_owned()),
        "missing A001: {codes:?}"
    );
    assert!(
        codes.contains(&"A013".to_owned()),
        "missing A013: {codes:?}"
    );

    // Tenant `quiet` shares the process but none of the diagnostics.
    let mut b = Client::connect(&handle);
    b.ok("(tenant quiet)");
    b.ok("(define-role r)");
    let clean = b.ok("(lint-kb)");
    assert_eq!(
        diag_codes(&clean),
        Vec::<String>::new(),
        "noisy's diagnostics leaked into quiet"
    );

    // lint-on-write: the mutation reply itself carries the cone
    // diagnostics, and the cone is the write's — x's identical orphan
    // finding is *not* re-derived.
    a.ok("(create-ind y)");
    a.ok("(lint-on-write on)");
    let reply = a.send("(assert-ind y (AT-LEAST 1 r))");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let lint = reply
        .get("lint")
        .expect("lint-on-write mutation reply carries lint");
    assert_eq!(result_type(lint), "lint");
    let codes = diag_codes(lint);
    assert!(
        codes.contains(&"A013".to_owned()),
        "cone misses y: {codes:?}"
    );
    let subjects = diag_subjects(lint);
    assert!(
        subjects.iter().all(|s| s == "individual y"),
        "cone reply should cover only the written individual: {subjects:?}"
    );

    // Switching it off stops the attachment.
    a.ok("(lint-on-write off)");
    let reply = a.send("(create-ind z)");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert!(reply.get("lint").is_none(), "lint attached while off");
    let msg = a.err("(lint-on-write sometimes)");
    assert!(msg.contains("on|off"), "unhelpful error: {msg}");

    // `(lint-kb cone)` reports the dirty cone only: z was just touched,
    // so its orphan finding appears, while the untouched concept-tier
    // A001 does not. The full report still carries everything.
    a.ok("(assert-ind z (AT-LEAST 1 r))");
    let cone = a.ok("(lint-kb cone)");
    assert_eq!(result_type(&cone), "lint");
    let codes = diag_codes(&cone);
    assert!(
        codes.contains(&"A013".to_owned()),
        "cone misses z: {codes:?}"
    );
    assert!(
        !codes.contains(&"A001".to_owned()),
        "cone report re-ran untouched concept checks: {codes:?}"
    );
    let full = a.ok("(lint-kb)");
    assert!(diag_codes(&full).contains(&"A001".to_owned()));

    // Sandbox lint is isolated both ways: a diagnostic introduced in
    // the sandbox shows up in sandbox `(lint-kb)`, and is gone from the
    // tenant after rollback.
    a.ok("(sandbox begin)");
    a.ok("(define-concept ALSOBROKEN (AND (AT-LEAST 3 r) (AT-MOST 2 r)))");
    let inside = a.ok("(lint-kb)");
    assert!(
        diag_subjects(&inside).contains(&"concept ALSOBROKEN".to_owned()),
        "sandbox lint missed its own definition: {inside:?}"
    );
    a.ok("(sandbox rollback)");
    let after = a.ok("(lint-kb)");
    assert!(
        !diag_subjects(&after).contains(&"concept ALSOBROKEN".to_owned()),
        "rolled-back sandbox leaked into tenant lint: {after:?}"
    );

    // The same reports over HTTP, per tenant.
    let (status, body) = http(&handle, "GET", "/lint?tenant=noisy", "");
    assert_eq!(status, 200, "GET /lint failed: {body}");
    let report = Json::parse(body.trim()).expect("lint body is JSON");
    assert_eq!(result_type(&report), "lint");
    assert!(diag_codes(&report).contains(&"A001".to_owned()));

    let (status, body) = http(&handle, "GET", "/lint?tenant=quiet&cone=1", "");
    assert_eq!(status, 200, "GET /lint cone failed: {body}");
    let report = Json::parse(body.trim()).expect("cone lint body is JSON");
    assert_eq!(result_type(&report), "lint");
    assert_eq!(diag_codes(&report), Vec::<String>::new());

    handle.shutdown().expect("clean shutdown");
}

/// `POST /ingest` streams raw CSV through the bulk pipeline: rows land
/// as individuals under an inferred TBox, the reply reports the load,
/// the segment-tier commit survives a restart, and malformed input is
/// a 400 that writes nothing.
#[test]
fn http_ingest_bulk_loads_csv() {
    let dir = tmpdir("ingest");
    {
        let handle = start(&dir);
        let csv = "id,species,legs\nrex,dog,4\ntweety,bird,2\npolly,bird,2\n";
        let (status, body) = http(
            &handle,
            "POST",
            "/ingest?tenant=pets&entity=pet&id=id&infer=1",
            csv,
        );
        assert_eq!(status, 200, "ingest failed: {body}");
        let reply = Json::parse(body.trim()).expect("ingest reply is JSON");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        let result = reply.get("result").expect("result");
        assert_eq!(result_type(result), "ingested");
        assert_eq!(result.get("rows").and_then(Json::as_num), Some(3.0));
        assert_eq!(result.get("accepted").and_then(Json::as_num), Some(3.0));
        assert_eq!(result.get("rejected").and_then(Json::as_num), Some(0.0));
        assert!(
            result
                .get("generation")
                .and_then(Json::as_num)
                .unwrap_or(0.0)
                >= 1.0
        );

        // The inferred concept answers queries immediately (the ingest
        // invalidated the snapshot cache).
        let (status, body) = http(&handle, "POST", "/eval?tenant=pets", "(retrieve PET)");
        assert_eq!(status, 200, "{body}");
        let results = Json::parse(body.trim()).expect("eval reply");
        let results = results.as_arr().expect("array");
        assert_eq!(
            names_of(results[0].get("result").unwrap()),
            ["rex", "tweety", "polly"]
        );

        // Ragged input plans to an error before anything is written.
        let (status, body) = http(
            &handle,
            "POST",
            "/ingest?tenant=pets&entity=pet&id=id",
            "id,a\nx,1,2\n",
        );
        assert_eq!(status, 400, "ragged CSV accepted: {body}");
        let err = Json::parse(body.trim()).expect("error reply is JSON");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));

        handle.shutdown().expect("clean shutdown");
    }
    {
        // Segment-tier commit (no log appends) survives a restart.
        let handle = start(&dir);
        let (status, body) = http(&handle, "POST", "/eval?tenant=pets", "(retrieve PET)");
        assert_eq!(status, 200, "{body}");
        let results = Json::parse(body.trim()).expect("eval reply");
        let results = results.as_arr().expect("array");
        assert_eq!(
            names_of(results[0].get("result").unwrap()),
            ["rex", "tweety", "polly"]
        );
        handle.shutdown().expect("clean shutdown");
    }
}
