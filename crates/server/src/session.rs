//! Per-connection protocol state: tenant binding and what-if sandboxes.
//!
//! A [`WireSession`] owns everything one client connection can see. The
//! wire protocol is the CLASSIC surface syntax itself — the same
//! s-expressions the REPL, the persistence log, and the test scripts
//! use — plus four *session* forms that never reach a KB:
//!
//! | form                 | effect                                        |
//! |----------------------|-----------------------------------------------|
//! | `(tenant NAME)`      | bind the session to tenant `NAME`             |
//! | `(sandbox begin)`    | start a private what-if copy of the tenant KB |
//! | `(sandbox commit)`   | replay sandbox mutations into the tenant      |
//! | `(sandbox rollback)` | discard the sandbox                           |
//! | `(lint-on-write on)` | attach cone diagnostics to mutation replies   |
//! | `(trace-id "HEX")`   | adopt a client trace id for the *next* form   |
//! | `(ping)`             | liveness probe                                |
//! | `(quit)`             | close the connection                          |
//!
//! Every form gets exactly one reply line:
//! `{"ok":true,"result":<outcome>}` or `{"ok":false,"error":"..."}`.
//!
//! ## Request tracing
//!
//! Every form is a *request*: the session mints a fresh
//! [`classic_obs::TraceId`] (or takes the one a preceding `(trace-id)`
//! form adopted), opens a `server.request` root span on the bound
//! tenant's flight recorder so every span the evaluation opens nests
//! under it, and on completion feeds the wall time to the server's
//! request histogram (with the trace id as an OpenMetrics exemplar) and
//! the process slowlog. A malformed or oversize client id is answered
//! with a positioned error and **not** adopted — the next form gets a
//! minted id, never a corrupted one. `(obs-level)` and `(obs-sample)`
//! are global switches, so the wire gates them: a session may raise
//! observability above the operator's `--obs-floor`/`--sample-floor`
//! but never lower it below.
//!
//! A sandbox is the paper's `what-if` operator promoted from one
//! assertion to a whole session: the KB is cloned, mutations evaluate
//! against the clone *and* are recorded; `commit` replays the recording
//! through the tenant's durable path, `rollback` drops it. Commit is
//! sequential, not transactional — it stops at the first command the
//! primary rejects (possible when the tenant moved underneath the
//! sandbox) and reports how many landed.

use std::sync::Arc;
use std::time::Instant;

use classic_lang::Command;
use classic_obs::{json_string, RequestCtx, TraceId};

use crate::server::Shared;
use crate::tenant::Tenant;

/// What the connection loop should do after a reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep reading forms.
    Continue,
    /// Client said `(quit)`: flush the reply and close.
    Quit,
}

struct Sandbox {
    kb: classic_kb::Kb,
    recorded: Vec<Command>,
}

/// How a form classifies before evaluation: the split is computed up
/// front so the request root span can carry the command kind.
enum Parsed {
    /// A session form (tenant/sandbox/ping/quit/…): the split words.
    Session(Vec<String>),
    /// Exactly one surface command.
    Command(Command),
    /// Parse failure, empty input, or more than one form.
    Reject(String),
}

/// One client's protocol state.
pub struct WireSession {
    shared: Arc<Shared>,
    tenant: Arc<Tenant>,
    sandbox: Option<Sandbox>,
    /// Server-assigned session number, attached to every request ctx.
    session_id: u64,
    /// A client-adopted trace id waiting for the next form.
    pending_trace: Option<TraceId>,
}

fn ok(result_json: &str) -> String {
    format!("{{\"ok\":true,\"result\":{result_json}}}")
}

fn err(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":{}}}", json_string(message))
}

impl WireSession {
    /// Open a session bound to the `default` tenant.
    pub fn new(shared: Arc<Shared>) -> classic_core::Result<WireSession> {
        let tenant = shared.tenant("default")?;
        Ok(WireSession {
            shared,
            tenant,
            sandbox: None,
            session_id: classic_obs::next_session_id(),
            pending_trace: None,
        })
    }

    /// The server-assigned session number carried in request contexts.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The tenant this session is bound to.
    pub fn tenant(&self) -> &Arc<Tenant> {
        &self.tenant
    }

    /// Whether a sandbox is active.
    pub fn in_sandbox(&self) -> bool {
        self.sandbox.is_some()
    }

    /// Handle one complete top-level form; returns the reply line (no
    /// trailing newline) and whether to keep the connection open.
    ///
    /// This is the tracing front: the form is classified first (so the
    /// root span knows the command kind), evaluated under a
    /// `server.request` root span carrying the request context, and the
    /// wall time lands in `classic_server_request_ns` (with the trace
    /// id as an exemplar) and the process slowlog.
    pub fn handle_form(&mut self, form: &str) -> (String, Control) {
        self.shared.metrics.requests.bump();
        self.tenant.count_request();
        let parsed = classify(form);
        let kind = match &parsed {
            Parsed::Session(_) => "session",
            Parsed::Command(c) => c.kind(),
            Parsed::Reject(_) => "parse-error",
        };
        let ctx = RequestCtx {
            trace_id: self.pending_trace.take().unwrap_or_else(TraceId::mint),
            tenant: self.tenant.name().to_owned(),
            session: self.session_id,
            kind,
        };
        let recorder = Arc::clone(self.tenant.recorder());
        let started = Instant::now();
        let guard = classic_obs::request_span(&recorder, "server.request", ctx.clone());
        let (reply, control) = self.dispatch(parsed);
        let dur_ns = started.elapsed().as_nanos() as u64;
        let trace = guard.finish();
        self.shared.metrics.request_ns.record(dur_ns);
        if classic_obs::counters_enabled() {
            self.shared
                .metrics
                .exemplars
                .observe(dur_ns, &ctx.trace_id.to_string());
            classic_obs::global_slowlog().record(ctx, dur_ns, trace);
        }
        if reply.starts_with("{\"ok\":false") {
            self.shared.metrics.errors.bump();
        }
        (reply, control)
    }

    fn dispatch(&mut self, parsed: Parsed) -> (String, Control) {
        let cmd = match parsed {
            Parsed::Session(words) => return self.session_command(&words),
            Parsed::Reject(msg) => return (err(&msg), Control::Continue),
            Parsed::Command(c) => c,
        };
        if let Some(reply) = self.gate_obs_command(&cmd) {
            return (reply, Control::Continue);
        }
        let outcome = match &mut self.sandbox {
            Some(sandbox) => {
                // Sandbox evaluation is fully isolated: `(lint-kb)` here
                // analyzes the sandbox clone from scratch and never
                // touches the tenant's incremental analysis state.
                let r = classic_lang::eval(&mut sandbox.kb, &cmd);
                if r.is_ok() && cmd.is_mutation() {
                    sandbox.recorded.push(cmd);
                }
                r.map(|o| (o, None))
            }
            None => self.tenant.execute_with_lint(&cmd),
        };
        match outcome {
            Ok((o, None)) => (ok(&o.render_json()), Control::Continue),
            Ok((o, Some(lint))) => {
                let lint_json = classic_lang::Outcome::Lint(lint).render_json();
                (
                    format!(
                        "{{\"ok\":true,\"result\":{},\"lint\":{lint_json}}}",
                        o.render_json()
                    ),
                    Control::Continue,
                )
            }
            Err(e) => (err(&e.to_string()), Control::Continue),
        }
    }

    /// Operator-floor gating for the global observability switches: a
    /// wire session may raise the level or sampling rate, never lower
    /// them below the floors the server was started with. Returns a
    /// rejection reply when the command must not reach evaluation.
    fn gate_obs_command(&self, cmd: &Command) -> Option<String> {
        match cmd {
            Command::ObsLevel(Some(level)) => {
                // Unknown level names fall through to eval's own error.
                let requested = classic_obs::ObsLevel::parse(level)?;
                let floor = self.shared.obs_floor();
                (requested < floor).then(|| {
                    err(&format!(
                        "obs-level {level} is below the server's operator floor \
                         ({}); sessions may raise observability, not lower it",
                        floor.name()
                    ))
                })
            }
            Command::ObsSample(Some(rate)) => {
                let floor = self.shared.sample_floor();
                (*rate < floor).then(|| {
                    err(&format!(
                        "obs-sample {rate} is below the server's operator floor \
                         ({floor}); sessions may raise the sampling rate, not lower it"
                    ))
                })
            }
            _ => None,
        }
    }

    fn session_command(&mut self, words: &[String]) -> (String, Control) {
        match words {
            [w] if w == "ping" => (ok("{\"type\":\"pong\"}"), Control::Continue),
            [w] if w == "quit" => (ok("{\"type\":\"bye\"}"), Control::Quit),
            [w, name] if w == "tenant" => {
                if self.sandbox.is_some() {
                    return (
                        err("sandbox active: commit or rollback before switching tenants"),
                        Control::Continue,
                    );
                }
                match self.shared.tenant(name) {
                    Ok(t) => {
                        self.tenant = t;
                        (
                            ok(&format!(
                                "{{\"type\":\"tenant\",\"name\":{}}}",
                                json_string(name)
                            )),
                            Control::Continue,
                        )
                    }
                    Err(e) => (err(&e.to_string()), Control::Continue),
                }
            }
            [w, id] if w == "trace-id" => {
                // Accept the id bare or quoted. A malformed or oversize
                // id is a positioned error and adopts NOTHING — the next
                // form gets a minted id, never a corrupted one.
                match TraceId::parse(id.trim_matches('"')) {
                    Ok(t) => {
                        self.pending_trace = Some(t);
                        (
                            ok(&format!(
                                "{{\"type\":\"trace-id\",\"id\":{}}}",
                                json_string(&t.to_string())
                            )),
                            Control::Continue,
                        )
                    }
                    Err(e) => (err(&e.to_string()), Control::Continue),
                }
            }
            [w] if w == "trace-id" => (
                err("trace-id takes one hex id of 1-32 digits"),
                Control::Continue,
            ),
            [w, mode] if w == "lint-on-write" => match mode.as_str() {
                "on" | "off" => {
                    self.tenant.set_lint_on_write(mode == "on");
                    (
                        ok(&format!(
                            "{{\"type\":\"lint-on-write\",\"enabled\":{}}}",
                            mode == "on"
                        )),
                        Control::Continue,
                    )
                }
                _ => (err("lint-on-write takes on|off"), Control::Continue),
            },
            [w, sub] if w == "sandbox" && sub == "begin" => {
                if self.sandbox.is_some() {
                    return (err("sandbox already active"), Control::Continue);
                }
                match self
                    .tenant
                    .snapshot()
                    .and_then(|s| s.with_kb(|kb| kb.clone()))
                {
                    Ok(kb) => {
                        self.sandbox = Some(Sandbox {
                            kb,
                            recorded: Vec::new(),
                        });
                        (
                            ok("{\"type\":\"sandbox\",\"state\":\"active\"}"),
                            Control::Continue,
                        )
                    }
                    Err(e) => (err(&e.to_string()), Control::Continue),
                }
            }
            [w, sub] if w == "sandbox" && sub == "rollback" => match self.sandbox.take() {
                Some(s) => (
                    ok(&format!(
                        "{{\"type\":\"sandbox\",\"state\":\"rolled-back\",\"discarded\":{}}}",
                        s.recorded.len()
                    )),
                    Control::Continue,
                ),
                None => (err("no sandbox active"), Control::Continue),
            },
            [w, sub] if w == "sandbox" && sub == "commit" => match self.sandbox.take() {
                Some(s) => {
                    let total = s.recorded.len();
                    for (ix, cmd) in s.recorded.iter().enumerate() {
                        if let Err(e) = self.tenant.execute(cmd) {
                            return (
                                err(&format!(
                                    "sandbox commit failed at mutation {} of {total}: {e}",
                                    ix + 1
                                )),
                                Control::Continue,
                            );
                        }
                    }
                    (
                        ok(&format!(
                            "{{\"type\":\"sandbox\",\"state\":\"committed\",\"applied\":{total}}}"
                        )),
                        Control::Continue,
                    )
                }
                None => (err("no sandbox active"), Control::Continue),
            },
            _ => (err("unknown session form"), Control::Continue),
        }
    }
}

/// Classify one framed form: session form, exactly one surface command,
/// or a rejection message — computed before evaluation so the request
/// root span can name the command kind.
fn classify(form: &str) -> Parsed {
    if let Some(words) = session_form(form) {
        return Parsed::Session(words);
    }
    let commands = match classic_lang::parse(form) {
        Ok(c) => c,
        Err(e) => return Parsed::Reject(e.to_string()),
    };
    let mut cmd_iter = commands.into_iter();
    match (cmd_iter.next(), cmd_iter.next()) {
        (Some(c), None) => Parsed::Command(c),
        (None, _) => Parsed::Reject("empty form".to_owned()),
        // The framing layer feeds one balanced form at a time, so this
        // is unreachable in practice; fail loudly rather than silently
        // evaluate half the input.
        (Some(_), Some(_)) => Parsed::Reject("expected exactly one form".to_owned()),
    }
}

/// Recognize a session form: a single flat s-expression whose head is
/// one of the session keywords. Returns the words inside the parens.
/// Anything else (including all KB commands) returns `None` and flows
/// to the real parser.
fn session_form(form: &str) -> Option<Vec<String>> {
    let t = form.trim();
    let inner = t.strip_prefix('(')?.strip_suffix(')')?;
    if inner.contains('(') || inner.contains(')') {
        return None;
    }
    let words: Vec<String> = inner.split_whitespace().map(str::to_owned).collect();
    match words.first().map(String::as_str) {
        Some("tenant" | "sandbox" | "ping" | "quit" | "lint-on-write" | "trace-id") => Some(words),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_form_recognizes_meta_only() {
        assert!(session_form("(ping)").is_some());
        assert!(session_form(" (tenant t1) ").is_some());
        assert!(session_form("(sandbox begin)").is_some());
        assert!(session_form("(trace-id \"deadbeef\")").is_some());
        assert!(session_form("(define-role r)").is_none());
        assert!(session_form("(retrieve (and A B) ?x)").is_none());
        // Nested parens never match, even with a meta head.
        assert!(session_form("(tenant (and))").is_none());
    }
}
