//! Per-connection protocol state: tenant binding and what-if sandboxes.
//!
//! A [`WireSession`] owns everything one client connection can see. The
//! wire protocol is the CLASSIC surface syntax itself — the same
//! s-expressions the REPL, the persistence log, and the test scripts
//! use — plus four *session* forms that never reach a KB:
//!
//! | form                 | effect                                        |
//! |----------------------|-----------------------------------------------|
//! | `(tenant NAME)`      | bind the session to tenant `NAME`             |
//! | `(sandbox begin)`    | start a private what-if copy of the tenant KB |
//! | `(sandbox commit)`   | replay sandbox mutations into the tenant      |
//! | `(sandbox rollback)` | discard the sandbox                           |
//! | `(lint-on-write on)` | attach cone diagnostics to mutation replies   |
//! | `(ping)`             | liveness probe                                |
//! | `(quit)`             | close the connection                          |
//!
//! Every form gets exactly one reply line:
//! `{"ok":true,"result":<outcome>}` or `{"ok":false,"error":"..."}`.
//!
//! A sandbox is the paper's `what-if` operator promoted from one
//! assertion to a whole session: the KB is cloned, mutations evaluate
//! against the clone *and* are recorded; `commit` replays the recording
//! through the tenant's durable path, `rollback` drops it. Commit is
//! sequential, not transactional — it stops at the first command the
//! primary rejects (possible when the tenant moved underneath the
//! sandbox) and reports how many landed.

use std::sync::Arc;

use classic_lang::Command;
use classic_obs::json_string;

use crate::server::Shared;
use crate::tenant::Tenant;

/// What the connection loop should do after a reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep reading forms.
    Continue,
    /// Client said `(quit)`: flush the reply and close.
    Quit,
}

struct Sandbox {
    kb: classic_kb::Kb,
    recorded: Vec<Command>,
}

/// One client's protocol state.
pub struct WireSession {
    shared: Arc<Shared>,
    tenant: Arc<Tenant>,
    sandbox: Option<Sandbox>,
}

fn ok(result_json: &str) -> String {
    format!("{{\"ok\":true,\"result\":{result_json}}}")
}

fn err(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":{}}}", json_string(message))
}

impl WireSession {
    /// Open a session bound to the `default` tenant.
    pub fn new(shared: Arc<Shared>) -> classic_core::Result<WireSession> {
        let tenant = shared.tenant("default")?;
        Ok(WireSession {
            shared,
            tenant,
            sandbox: None,
        })
    }

    /// The tenant this session is bound to.
    pub fn tenant(&self) -> &Arc<Tenant> {
        &self.tenant
    }

    /// Whether a sandbox is active.
    pub fn in_sandbox(&self) -> bool {
        self.sandbox.is_some()
    }

    /// Handle one complete top-level form; returns the reply line (no
    /// trailing newline) and whether to keep the connection open.
    pub fn handle_form(&mut self, form: &str) -> (String, Control) {
        self.shared.metrics.requests.bump();
        let (reply, control) = self.dispatch(form);
        if reply.starts_with("{\"ok\":false") {
            self.shared.metrics.errors.bump();
        }
        (reply, control)
    }

    fn dispatch(&mut self, form: &str) -> (String, Control) {
        if let Some(words) = session_form(form) {
            return self.session_command(&words);
        }
        let commands = match classic_lang::parse(form) {
            Ok(c) => c,
            Err(e) => return (err(&e.to_string()), Control::Continue),
        };
        let mut cmd_iter = commands.into_iter();
        let cmd = match (cmd_iter.next(), cmd_iter.next()) {
            (Some(c), None) => c,
            (None, _) => return (err("empty form"), Control::Continue),
            (Some(_), Some(_)) => {
                // The framing layer feeds one balanced form at a time,
                // so this is unreachable in practice; fail loudly
                // rather than silently evaluate half the input.
                return (err("expected exactly one form"), Control::Continue);
            }
        };
        let outcome = match &mut self.sandbox {
            Some(sandbox) => {
                // Sandbox evaluation is fully isolated: `(lint-kb)` here
                // analyzes the sandbox clone from scratch and never
                // touches the tenant's incremental analysis state.
                let r = classic_lang::eval(&mut sandbox.kb, &cmd);
                if r.is_ok() && cmd.is_mutation() {
                    sandbox.recorded.push(cmd);
                }
                r.map(|o| (o, None))
            }
            None => self.tenant.execute_with_lint(&cmd),
        };
        match outcome {
            Ok((o, None)) => (ok(&o.render_json()), Control::Continue),
            Ok((o, Some(lint))) => {
                let lint_json = classic_lang::Outcome::Lint(lint).render_json();
                (
                    format!(
                        "{{\"ok\":true,\"result\":{},\"lint\":{lint_json}}}",
                        o.render_json()
                    ),
                    Control::Continue,
                )
            }
            Err(e) => (err(&e.to_string()), Control::Continue),
        }
    }

    fn session_command(&mut self, words: &[String]) -> (String, Control) {
        match words {
            [w] if w == "ping" => (ok("{\"type\":\"pong\"}"), Control::Continue),
            [w] if w == "quit" => (ok("{\"type\":\"bye\"}"), Control::Quit),
            [w, name] if w == "tenant" => {
                if self.sandbox.is_some() {
                    return (
                        err("sandbox active: commit or rollback before switching tenants"),
                        Control::Continue,
                    );
                }
                match self.shared.tenant(name) {
                    Ok(t) => {
                        self.tenant = t;
                        (
                            ok(&format!(
                                "{{\"type\":\"tenant\",\"name\":{}}}",
                                json_string(name)
                            )),
                            Control::Continue,
                        )
                    }
                    Err(e) => (err(&e.to_string()), Control::Continue),
                }
            }
            [w, mode] if w == "lint-on-write" => match mode.as_str() {
                "on" | "off" => {
                    self.tenant.set_lint_on_write(mode == "on");
                    (
                        ok(&format!(
                            "{{\"type\":\"lint-on-write\",\"enabled\":{}}}",
                            mode == "on"
                        )),
                        Control::Continue,
                    )
                }
                _ => (err("lint-on-write takes on|off"), Control::Continue),
            },
            [w, sub] if w == "sandbox" && sub == "begin" => {
                if self.sandbox.is_some() {
                    return (err("sandbox already active"), Control::Continue);
                }
                match self
                    .tenant
                    .snapshot()
                    .and_then(|s| s.with_kb(|kb| kb.clone()))
                {
                    Ok(kb) => {
                        self.sandbox = Some(Sandbox {
                            kb,
                            recorded: Vec::new(),
                        });
                        (
                            ok("{\"type\":\"sandbox\",\"state\":\"active\"}"),
                            Control::Continue,
                        )
                    }
                    Err(e) => (err(&e.to_string()), Control::Continue),
                }
            }
            [w, sub] if w == "sandbox" && sub == "rollback" => match self.sandbox.take() {
                Some(s) => (
                    ok(&format!(
                        "{{\"type\":\"sandbox\",\"state\":\"rolled-back\",\"discarded\":{}}}",
                        s.recorded.len()
                    )),
                    Control::Continue,
                ),
                None => (err("no sandbox active"), Control::Continue),
            },
            [w, sub] if w == "sandbox" && sub == "commit" => match self.sandbox.take() {
                Some(s) => {
                    let total = s.recorded.len();
                    for (ix, cmd) in s.recorded.iter().enumerate() {
                        if let Err(e) = self.tenant.execute(cmd) {
                            return (
                                err(&format!(
                                    "sandbox commit failed at mutation {} of {total}: {e}",
                                    ix + 1
                                )),
                                Control::Continue,
                            );
                        }
                    }
                    (
                        ok(&format!(
                            "{{\"type\":\"sandbox\",\"state\":\"committed\",\"applied\":{total}}}"
                        )),
                        Control::Continue,
                    )
                }
                None => (err("no sandbox active"), Control::Continue),
            },
            _ => (err("unknown session form"), Control::Continue),
        }
    }
}

/// Recognize a session form: a single flat s-expression whose head is
/// one of the session keywords. Returns the words inside the parens.
/// Anything else (including all KB commands) returns `None` and flows
/// to the real parser.
fn session_form(form: &str) -> Option<Vec<String>> {
    let t = form.trim();
    let inner = t.strip_prefix('(')?.strip_suffix(')')?;
    if inner.contains('(') || inner.contains(')') {
        return None;
    }
    let words: Vec<String> = inner.split_whitespace().map(str::to_owned).collect();
    match words.first().map(String::as_str) {
        Some("tenant" | "sandbox" | "ping" | "quit" | "lint-on-write") => Some(words),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_form_recognizes_meta_only() {
        assert!(session_form("(ping)").is_some());
        assert!(session_form(" (tenant t1) ").is_some());
        assert!(session_form("(sandbox begin)").is_some());
        assert!(session_form("(define-role r)").is_none());
        assert!(session_form("(retrieve (and A B) ?x)").is_none());
        // Nested parens never match, even with a meta head.
        assert!(session_form("(tenant (and))").is_none());
    }
}
