//! # classic-server
//!
//! A multi-tenant network front for the CLASSIC reproduction: one
//! process hosts many independent durable knowledge bases, speaking the
//! surface syntax over TCP — the paper's "single language, multiple
//! roles" design extended to its fourth role (REPL input, script files,
//! the persistence log, and now the wire).
//!
//! The paper frames a CLASSIC DBMS as a shared facility: "the DB is
//! best thought of as a cache for persistent information" kept by a
//! server that many applications consult (§1, §5). This crate is that
//! deployment shape at reproduction scale:
//!
//! - **Tenants** ([`Tenant`]): each a [`classic_store::DurableKb`] in
//!   its own directory — separate log, segments, manifest. Writes go
//!   through the fsynced operation log; nothing a client does can
//!   bypass durability.
//! - **Snapshot-isolated reads** ([`Snapshot`]): queries run against a
//!   cloned KB pinned at one (version, generation) pair, so concurrent
//!   writers and background compaction never move the ground under an
//!   in-flight query.
//! - **Sessions** ([`WireSession`]): per-connection tenant binding and
//!   `what-if` **sandboxes** — a private KB copy whose mutations can be
//!   replayed into the tenant (`(sandbox commit)`) or dropped.
//! - **Observability**: `GET /metrics` serves the process-wide
//!   Prometheus roll-up (every tenant KB's counters plus the server's
//!   own request series); `GET /stats` serves per-tenant JSON.
//!
//! Networking is std-only (`TcpListener` + a fixed worker pool); the
//! crate adds no dependencies beyond the workspace's own layers.
//!
//! ## Wire protocol in one netcat session
//!
//! ```text
//! $ nc localhost 7587
//! (tenant demo)
//! {"ok":true,"result":{"type":"tenant","name":"demo"}}
//! (define-role child)
//! {"ok":true,"result":{"type":"ok"}}
//! (create-ind Mary)
//! {"ok":true,"result":{"type":"ok"}}
//! (sandbox begin)
//! {"ok":true,"result":{"type":"sandbox","state":"active"}}
//! (assert-ind Mary (at-least 3 child))
//! {"ok":true,"result":{"type":"asserted","steps":1,...}}
//! (sandbox rollback)
//! {"ok":true,"result":{"type":"sandbox","state":"rolled-back","discarded":1}}
//! (quit)
//! {"ok":true,"result":{"type":"bye"}}
//! ```
//!
//! The same session, embedded (port `0` picks a free port; the handle
//! resolves it):
//!
//! ```
//! use classic_server::{start, ServerConfig};
//! use std::io::{BufRead, BufReader, Write};
//!
//! let dir = std::env::temp_dir().join(format!("classic-doc-lib-{}", std::process::id()));
//! let handle = start(ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     data_dir: dir.clone(),
//!     workers: 1,
//!     ..ServerConfig::default()
//! })?;
//!
//! let conn = std::net::TcpStream::connect(handle.local_addr())?;
//! let mut reader = BufReader::new(conn.try_clone()?);
//! let mut line = String::new();
//! (&conn).write_all(b"(ping)\n")?;
//! reader.read_line(&mut line)?;
//! assert_eq!(line.trim(), r#"{"ok":true,"result":{"type":"pong"}}"#);
//!
//! drop((conn, reader));
//! handle.shutdown()?;
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The wire grammar — framing, session forms, every JSON reply shape,
//! and the HTTP endpoints — is specified in `docs/PROTOCOL.md`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod http;
pub mod push;
pub mod server;
pub mod session;
pub mod tenant;

/// Re-exported JSON value/parser (now lives in `classic-obs` so
/// non-server crates — notably `classic-ingest` — can read JSON too).
pub use classic_obs::{Json, JsonError};
pub use server::{start, ServerConfig, ServerHandle, ServerMetrics, Shared};
pub use session::{Control, WireSession};
pub use tenant::{Snapshot, Tenant, TenantStats};
