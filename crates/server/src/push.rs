//! Background push-gateway export: a std-only thread that POSTs the
//! full `/metrics` exposition (roll-up, per-tenant labeled sections,
//! exemplars) to an HTTP gateway at a fixed interval.
//!
//! Enabled by [`crate::ServerConfig::push_gateway`]; the loop wakes in
//! `POLL`-sized steps so a graceful shutdown is
//! observed within ~100 ms, at which point it performs one final flush
//! and exits — the gateway always receives the server's closing totals.
//!
//! The target URL is `http://host:port[/path]`; with no path the
//! conventional Prometheus push-gateway route `/metrics/job/classic` is
//! used. Delivery is fire-and-forget: a refused connection or non-2xx
//! reply is dropped (and simply not counted in
//! `classic_server_metric_pushes_total`) rather than ever stalling or
//! crashing the serving path.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::server::{Shared, POLL};

/// How long one delivery may spend connecting, writing, or reading.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The push thread body: flush every `interval` until shutdown, then
/// flush once more and exit.
pub(crate) fn push_loop(url: &str, interval: Duration, shared: &Arc<Shared>) {
    loop {
        let mut waited = Duration::ZERO;
        while waited < interval && !shared.shutting_down() {
            std::thread::sleep(POLL);
            waited += POLL;
        }
        let closing = shared.shutting_down();
        if push_once(url, &shared.metrics_exposition()).is_ok() {
            shared.metrics.pushes.bump();
        }
        if closing {
            return;
        }
    }
}

/// POST `body` (a Prometheus text exposition) to `url` once.
///
/// Public so tests and embedders can exercise a delivery without
/// standing up the background thread.
pub fn push_once(url: &str, body: &str) -> std::io::Result<()> {
    let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, m);
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| bad(format!("push gateway URL {url:?} must start with http://")))?;
    let (authority, path) = match rest.find('/') {
        Some(ix) => (&rest[..ix], &rest[ix..]),
        None => (rest, "/metrics/job/classic"),
    };
    let addr = authority
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| bad(format!("push gateway host {authority:?} did not resolve")))?;
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: {authority}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    // Drain (and discard) the gateway's reply so it sees a clean close.
    let mut sink = [0u8; 512];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_scheme_is_required() {
        assert!(push_once("localhost:9091", "x 1\n").is_err());
        assert!(push_once("https://localhost:9091", "x 1\n").is_err());
    }
}
