//! The `classic-server` binary: host CLASSIC knowledge bases over TCP.
//!
//! ```text
//! classic-server [--addr HOST:PORT] [--data-dir DIR] [--workers N]
//!                [--obs-floor off|counters|full] [--sample-floor RATE]
//!                [--push-gateway URL] [--push-interval SECS]
//! ```
//!
//! Defaults: `--addr 127.0.0.1:7587`, `--data-dir ./classic-data`,
//! `--workers 4`, `--obs-floor counters`, `--sample-floor 0`, no push
//! gateway, `--push-interval 5`. The process runs until killed; every
//! mutation is fsynced to the tenant's operation log before it is
//! acknowledged, so an abrupt kill loses nothing acknowledged.
//!
//! `--obs-floor`/`--sample-floor` set the operator floors that wire
//! sessions cannot lower `(obs-level)`/`(obs-sample)` below (they also
//! set the starting global level and sampling rate). `--push-gateway`
//! starts a background thread POSTing the `/metrics` exposition to the
//! given `http://host:port[/path]` URL every `--push-interval` seconds,
//! with a final flush on graceful shutdown.

use std::path::PathBuf;
use std::process::ExitCode;

use classic_server::ServerConfig;

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7587".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => config.addr = v,
                None => return usage("--addr needs a value"),
            },
            "--data-dir" => match args.next() {
                Some(v) => config.data_dir = PathBuf::from(v),
                None => return usage("--data-dir needs a value"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.workers = n,
                _ => return usage("--workers needs a positive integer"),
            },
            "--obs-floor" => match args
                .next()
                .as_deref()
                .and_then(classic_obs::ObsLevel::parse)
            {
                Some(level) => config.obs_floor = level,
                None => return usage("--obs-floor takes off|counters|full"),
            },
            "--sample-floor" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if (0.0..=1.0).contains(&r) => config.sample_floor = r,
                _ => return usage("--sample-floor needs a rate in [0, 1]"),
            },
            "--push-gateway" => match args.next() {
                Some(v) => config.push_gateway = Some(v),
                None => return usage("--push-gateway needs a URL"),
            },
            "--push-interval" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.push_interval_secs = n,
                _ => return usage("--push-interval needs a positive integer (seconds)"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    // The floors are also the starting point: the operator asked for at
    // least this much observability, so begin there.
    if config.obs_floor > classic_obs::level() {
        classic_obs::set_level(config.obs_floor);
    }
    if config.sample_floor > 0.0 && config.sample_floor > classic_obs::sample_rate() {
        classic_obs::set_sample_rate(config.sample_floor);
    }

    match classic_server::start(config) {
        Ok(handle) => {
            println!("classic-server listening on {}", handle.local_addr());
            println!("  line protocol: nc {}", handle.local_addr());
            println!(
                "  metrics:       curl http://{}/metrics",
                handle.local_addr()
            );
            handle.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("classic-server: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("classic-server: {error}");
    }
    eprintln!(
        "usage: classic-server [--addr HOST:PORT] [--data-dir DIR] [--workers N]\n\
         \x20                     [--obs-floor off|counters|full] [--sample-floor RATE]\n\
         \x20                     [--push-gateway URL] [--push-interval SECS]"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
