//! The `classic-server` binary: host CLASSIC knowledge bases over TCP.
//!
//! ```text
//! classic-server [--addr HOST:PORT] [--data-dir DIR] [--workers N]
//! ```
//!
//! Defaults: `--addr 127.0.0.1:7587`, `--data-dir ./classic-data`,
//! `--workers 4`. The process runs until killed; every mutation is
//! fsynced to the tenant's operation log before it is acknowledged, so
//! an abrupt kill loses nothing acknowledged.

use std::path::PathBuf;
use std::process::ExitCode;

use classic_server::ServerConfig;

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7587".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => config.addr = v,
                None => return usage("--addr needs a value"),
            },
            "--data-dir" => match args.next() {
                Some(v) => config.data_dir = PathBuf::from(v),
                None => return usage("--data-dir needs a value"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.workers = n,
                _ => return usage("--workers needs a positive integer"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    match classic_server::start(config) {
        Ok(handle) => {
            println!("classic-server listening on {}", handle.local_addr());
            println!("  line protocol: nc {}", handle.local_addr());
            println!(
                "  metrics:       curl http://{}/metrics",
                handle.local_addr()
            );
            handle.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("classic-server: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("classic-server: {error}");
    }
    eprintln!("usage: classic-server [--addr HOST:PORT] [--data-dir DIR] [--workers N]");
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
