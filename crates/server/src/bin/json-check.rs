//! `json-check` — validate line-delimited JSON on stdin with the same
//! strict parser the server uses for its own protocol tests.
//!
//! Reads stdin line by line (blank lines skipped), parses each with
//! [`classic_server::Json::parse`], and exits nonzero at the first line
//! that fails, naming it. CI pipes `classic-analyze --json` output
//! through this to pin the machine-readable diagnostic format to the
//! wire grammar.

use std::io::BufRead;

fn main() {
    let stdin = std::io::stdin();
    let mut checked = 0usize;
    for (ix, line) in stdin.lock().lines().enumerate() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("json-check: read error on line {}: {e}", ix + 1);
                std::process::exit(2);
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        if let Err(e) = classic_server::Json::parse(&line) {
            eprintln!(
                "json-check: line {} is not valid JSON: {e}\n  {line}",
                ix + 1
            );
            std::process::exit(1);
        }
        checked += 1;
    }
    println!("json-check: {checked} line(s) ok");
}
