//! The server proper: listener, worker pool, framing, shared state.
//!
//! Std-only networking: one accept thread hands connections to a fixed
//! pool of worker threads over a channel. Each worker speaks either the
//! line protocol (s-expression forms in, JSON lines out — see
//! [`crate::session`]) or minimal HTTP (see [`crate::http`]), sniffed
//! from the first bytes of the connection.
//!
//! Framing for the line protocol is *paren balance*, not lines: a form
//! may span lines (exactly as in `.classic` script files), several
//! forms may share a line, and `;` comments and `"..."` strings are
//! honored while counting. Each complete form yields exactly one JSON
//! reply line, in order.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use classic_core::{ClassicError, Result};
use classic_obs::{Counter, ExemplarStore, Histogram, ObsLevel, Registry};

use crate::http;
use crate::session::{Control, WireSession};
use crate::tenant::{Tenant, TenantStats};

/// How long a worker blocks in `read` before re-checking shutdown.
pub(crate) const POLL: Duration = Duration::from_millis(100);

/// Server configuration; `Default` gives a loopback ephemeral port,
/// a `classic-data` directory, and four workers.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7587`. Port 0 picks a free one.
    pub addr: String,
    /// Root directory; each tenant stores under `<data_dir>/<name>/`.
    pub data_dir: PathBuf,
    /// Worker threads (= max concurrent connections served).
    pub workers: usize,
    /// Operator floor for `(obs-level …)` over the wire: sessions may
    /// raise the global level above this but never lower it below.
    pub obs_floor: ObsLevel,
    /// Operator floor for `(obs-sample …)` over the wire: sessions may
    /// not set a head-sampling rate below this.
    pub sample_floor: f64,
    /// When set, a background thread POSTs the full `/metrics`
    /// exposition to this URL (`http://host:port[/path]`) every
    /// [`ServerConfig::push_interval_secs`], with one final flush on
    /// graceful shutdown.
    pub push_gateway: Option<String>,
    /// Seconds between push-gateway deliveries (min 1).
    pub push_interval_secs: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            data_dir: PathBuf::from("classic-data"),
            workers: 4,
            obs_floor: ObsLevel::Counters,
            sample_floor: 0.0,
            push_gateway: None,
            push_interval_secs: 5,
        }
    }
}

/// Request-level counters and timings, enrolled in the process-global
/// metrics roll-up so `GET /metrics` exposes them alongside every
/// tenant KB's own series.
pub struct ServerMetrics {
    /// The registry the series below live in.
    pub registry: Arc<Registry>,
    /// Connections accepted (both protocols).
    pub connections: Counter,
    /// Line-protocol forms handled.
    pub requests: Counter,
    /// Forms that produced an `ok:false` reply.
    pub errors: Counter,
    /// HTTP requests handled.
    pub http_requests: Counter,
    /// Push-gateway deliveries completed.
    pub pushes: Counter,
    /// Per-form wall time, nanoseconds.
    pub request_ns: Histogram,
    /// Recent trace ids per latency bucket of `request_ns`, rendered as
    /// OpenMetrics exemplars on `/metrics`.
    pub exemplars: ExemplarStore,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let registry = Registry::new();
        let mk = |r: std::result::Result<Counter, classic_obs::ObsError>| {
            r.expect("server metric names are static and valid")
        };
        ServerMetrics {
            connections: mk(
                registry.counter("classic_server_connections_total", "connections accepted")
            ),
            requests: mk(registry.counter(
                "classic_server_requests_total",
                "line-protocol forms handled",
            )),
            errors: mk(registry.counter(
                "classic_server_errors_total",
                "forms answered with ok:false",
            )),
            http_requests: mk(registry.counter(
                "classic_server_http_requests_total",
                "HTTP requests handled",
            )),
            pushes: mk(registry.counter(
                "classic_server_metric_pushes_total",
                "push-gateway deliveries completed",
            )),
            request_ns: registry
                .histogram("classic_server_request_ns", "per-form wall time (ns)")
                .expect("server metric names are static and valid"),
            exemplars: ExemplarStore::new(),
            registry,
        }
    }
}

/// State shared by every connection: the tenant table and metrics.
pub struct Shared {
    data_dir: PathBuf,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    /// Request-level counters and timings.
    pub metrics: ServerMetrics,
    shutdown: AtomicBool,
    obs_floor: ObsLevel,
    sample_floor: f64,
}

impl Shared {
    fn new(config: &ServerConfig) -> Shared {
        Shared {
            data_dir: config.data_dir.clone(),
            tenants: Mutex::new(HashMap::new()),
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            obs_floor: config.obs_floor,
            sample_floor: config.sample_floor,
        }
    }

    /// Look up a tenant, opening (and creating on disk) on first use.
    ///
    /// Poisoning recovery: the table's critical sections only read the
    /// map or insert a fully-constructed `Arc<Tenant>`, so a panic
    /// elsewhere on a thread holding this lock cannot leave the map
    /// itself torn — recovering the guard is sound, and keeps one
    /// crashed request from taking every tenant down with it.
    pub fn tenant(&self, name: &str) -> Result<Arc<Tenant>> {
        validate_tenant_name(name)?;
        let mut map = self
            .tenants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(t) = map.get(name) {
            return Ok(Arc::clone(t));
        }
        let tenant = Arc::new(Tenant::open(name, &self.data_dir.join(name))?);
        map.insert(name.to_owned(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Stats for every open tenant, sorted by name. A tenant whose
    /// primary lock is poisoned is skipped here (it also rejects every
    /// command with a descriptive error, so its brokenness is visible on
    /// the eval path, not silently absorbed).
    pub fn all_stats(&self) -> Vec<TenantStats> {
        let tenants: Vec<Arc<Tenant>> = {
            let map = self
                .tenants
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            map.values().cloned().collect()
        };
        // Collect outside the table lock: stats() takes each tenant's
        // primary lock and may wait behind a writer.
        let mut stats: Vec<TenantStats> = tenants.iter().filter_map(|t| t.stats().ok()).collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }

    /// True once shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// The operator floor wire sessions cannot lower `(obs-level)` below.
    pub fn obs_floor(&self) -> ObsLevel {
        self.obs_floor
    }

    /// The operator floor wire sessions cannot lower `(obs-sample)` below.
    pub fn sample_floor(&self) -> f64 {
        self.sample_floor
    }

    /// Every open tenant, sorted by name (for `/metrics` sections).
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        let mut out: Vec<Arc<Tenant>> = {
            let map = self
                .tenants
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            map.values().cloned().collect()
        };
        out.sort_by(|a, b| a.name().cmp(b.name()));
        out
    }

    /// The full `/metrics` exposition: the process-global roll-up (with
    /// OpenMetrics exemplars on the request-latency histogram), followed
    /// by one `tenant="…"`-labeled section per open tenant. The labeled
    /// sections carry no `# TYPE` metadata — the roll-up ahead of them
    /// already types every series name exactly once.
    pub fn metrics_exposition(&self) -> String {
        let mut out = classic_obs::render_all_prometheus_exemplars(&[(
            "classic_server_request_ns",
            self.metrics.exemplars.snapshot(),
        )]);
        for tenant in self.tenants() {
            out.push_str(&classic_obs::render_prometheus_labeled(
                &tenant.registry().snapshot(),
                &[("tenant", tenant.name())],
            ));
        }
        out
    }
}

/// Tenant names become directory names and JSON payloads; keep them
/// boring: `[A-Za-z0-9_-]`, 1–64 chars.
fn validate_tenant_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if ok {
        Ok(())
    } else {
        Err(ClassicError::Malformed(format!(
            "invalid tenant name {name:?}: want 1-64 chars of [A-Za-z0-9_-]"
        )))
    }
}

/// A running server: join or shut it down.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    pusher: Option<JoinHandle<()>>,
    conn_tx: Option<Sender<TcpStream>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared state (tenant table + metrics), e.g. for tests.
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Block until the server shuts down (never, unless another thread
    /// holds a clone of the shared state and requests it). The binary
    /// parks here.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.join_workers();
    }

    /// Graceful shutdown: stop accepting, let workers finish their
    /// current form, then flush every tenant's log and land any
    /// background compaction.
    pub fn shutdown(mut self) -> Result<()> {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.join_workers();
        let stats = self.shared.all_stats();
        for s in &stats {
            self.shared.tenant(&s.name)?.flush()?;
        }
        Ok(())
    }

    fn join_workers(&mut self) {
        // Closing the channel lets idle workers observe disconnect.
        self.conn_tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // The pusher exits after one final flush once it observes the
        // shutdown flag (or never, under plain join()).
        if let Some(h) = self.pusher.take() {
            let _ = h.join();
        }
    }
}

/// Start a server per `config`; returns once the listener is bound.
pub fn start(config: ServerConfig) -> Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr).map_err(|e| ClassicError::Storage {
        path: config.addr.clone(),
        generation: None,
        detail: format!("binding listener: {e}"),
    })?;
    let local_addr = listener.local_addr().map_err(|e| ClassicError::Storage {
        path: config.addr.clone(),
        generation: None,
        detail: format!("resolving bound address: {e}"),
    })?;
    let shared = Arc::new(Shared::new(&config));

    let (conn_tx, conn_rx) = channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    let workers = (0..config.workers.max(1))
        .map(|ix| {
            let rx = Arc::clone(&conn_rx);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("classic-worker-{ix}"))
                .spawn(move || worker_loop(rx, shared))
                .expect("spawning worker thread")
        })
        .collect();

    let accept = {
        let shared = Arc::clone(&shared);
        let tx = conn_tx.clone();
        std::thread::Builder::new()
            .name("classic-accept".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if shared.shutting_down() {
                        break;
                    }
                    match conn {
                        Ok(stream) => {
                            shared.metrics.connections.bump();
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
            })
            .expect("spawning accept thread")
    };

    let pusher = config.push_gateway.as_ref().map(|url| {
        let url = url.clone();
        let shared = Arc::clone(&shared);
        let interval = Duration::from_secs(config.push_interval_secs.max(1));
        std::thread::Builder::new()
            .name("classic-push".to_owned())
            .spawn(move || crate::push::push_loop(&url, interval, &shared))
            .expect("spawning push thread")
    });

    Ok(ServerHandle {
        local_addr,
        shared,
        accept: Some(accept),
        workers,
        pusher,
        conn_tx: Some(conn_tx),
    })
}

fn worker_loop(rx: Arc<Mutex<Receiver<TcpStream>>>, shared: Arc<Shared>) {
    loop {
        let stream = {
            // The queue's critical section is a single `recv_timeout`;
            // a panicking sibling cannot leave the receiver mid-update,
            // so recover the guard rather than cascade worker deaths.
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            match guard.recv_timeout(POLL) {
                Ok(s) => s,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    if shared.shutting_down() {
                        return;
                    }
                    continue;
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        // Connection errors (peer gone, malformed HTTP) end that
        // connection only; the worker survives for the next one.
        let _ = serve_connection(stream, &shared);
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    // One small reply per form: without NODELAY, Nagle + delayed ACK
    // adds ~40ms to every round trip.
    stream.set_nodelay(true)?;
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 4096];

    // Sniff the protocol from the first bytes.
    loop {
        if buf.len() >= 4 {
            break;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return Ok(()), // closed before saying anything
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if timed_out(&e) => {
                if shared.shutting_down() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
    if buf.starts_with(b"GET ") || buf.starts_with(b"POST ") {
        return http::serve_http(stream, buf, shared);
    }

    let mut session = match WireSession::new(Arc::clone(shared)) {
        Ok(s) => s,
        Err(e) => {
            let line = format!(
                "{{\"ok\":false,\"error\":{}}}\n",
                classic_obs::json_string(&e.to_string())
            );
            let _ = stream.write_all(line.as_bytes());
            return Ok(());
        }
    };
    loop {
        // Drain every complete form currently buffered.
        loop {
            let (form, end) = match next_form(&buf) {
                Ok(Some(next)) => next,
                Ok(None) => break,
                Err(violation) => {
                    // No way to resync the stream past a hostile frame:
                    // answer once and close.
                    shared.metrics.errors.bump();
                    let line = format!(
                        "{{\"ok\":false,\"error\":{}}}\n",
                        classic_obs::json_string(violation)
                    );
                    let _ = stream.write_all(line.as_bytes());
                    return Ok(());
                }
            };
            // Timing, tracing, slowlog, and exemplar recording all live
            // in handle_form, which owns the request context.
            let (reply, control) = session.handle_form(&form);
            stream.write_all(reply.as_bytes())?;
            stream.write_all(b"\n")?;
            buf.drain(..end);
            if control == Control::Quit {
                return Ok(());
            }
        }
        match stream.read(&mut tmp) {
            Ok(0) => return Ok(()),
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if timed_out(&e) => {
                if shared.shutting_down() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

pub(crate) fn timed_out(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Deepest paren nesting the framing layer will buffer. The surface
/// parser is recursive descent, so unbounded nesting straight off the
/// wire would overflow the worker's stack — and a stack overflow is an
/// abort of the whole process, not a catchable panic. 512 is orders of
/// magnitude beyond any legitimate form.
const MAX_FORM_DEPTH: usize = 512;

/// Largest single frame (a form, or an unterminated string/comment/
/// whitespace run still waiting for its end) buffered before the
/// connection is rejected, so one client cannot OOM the server by
/// never closing a paren: 16 MiB.
const MAX_FORM_BYTES: usize = 16 << 20;

/// Extract the next complete top-level form from `buf`, if any.
///
/// Skips leading whitespace and `;` comments. A form is either a
/// balanced `( ... )` group (strings and comments honored while
/// counting) or, for anything else at top level, a run up to the next
/// newline — handed to the parser verbatim so the client gets a real
/// parse error instead of a hung connection. Returns the form text and
/// the buffer offset one past its end; `Ok(None)` means the frame is
/// still incomplete. `Err` is a fatal framing violation (nesting past
/// [`MAX_FORM_DEPTH`], or [`MAX_FORM_BYTES`] buffered without a
/// complete frame) — the connection cannot be resynced and must close.
fn next_form(buf: &[u8]) -> std::result::Result<Option<(String, usize)>, &'static str> {
    let incomplete = if buf.len() > MAX_FORM_BYTES {
        Err("frame exceeds the 16 MiB limit without completing a form")
    } else {
        Ok(None)
    };
    let mut ix = 0;
    // Skip top-level whitespace and comments.
    while ix < buf.len() {
        match buf[ix] {
            b' ' | b'\t' | b'\r' | b'\n' => ix += 1,
            b';' => match buf[ix..].iter().position(|&b| b == b'\n') {
                Some(off) => ix += off + 1,
                None => return incomplete, // comment still streaming in
            },
            _ => break,
        }
    }
    if ix >= buf.len() {
        return incomplete;
    }
    let start = ix;
    if buf[ix] != b'(' {
        // Not a form; take the line and let the parser complain.
        let Some(end) = buf[ix..].iter().position(|&b| b == b'\n').map(|o| ix + o) else {
            return incomplete;
        };
        let text = String::from_utf8_lossy(&buf[start..end]).into_owned();
        return Ok(Some((text, end + 1)));
    }
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut in_comment = false;
    while ix < buf.len() {
        let b = buf[ix];
        if in_comment {
            if b == b'\n' {
                in_comment = false;
            }
        } else if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
        } else {
            match b {
                b'"' => in_string = true,
                b';' => in_comment = true,
                b'(' => {
                    depth += 1;
                    if depth > MAX_FORM_DEPTH {
                        return Err("form nests deeper than the 512-paren limit");
                    }
                }
                b')' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        let text = String::from_utf8_lossy(&buf[start..=ix]).into_owned();
                        return Ok(Some((text, ix + 1)));
                    }
                }
                _ => {}
            }
        }
        ix += 1;
    }
    incomplete // form incomplete; wait for more bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forms(input: &str) -> Vec<String> {
        let mut buf = input.as_bytes().to_vec();
        let mut out = Vec::new();
        while let Some((form, end)) = next_form(&buf).expect("well-framed input") {
            out.push(form);
            buf.drain(..end);
        }
        out
    }

    #[test]
    fn splits_multiple_forms_on_one_line() {
        assert_eq!(forms("(ping) (ping)"), vec!["(ping)", "(ping)"]);
    }

    #[test]
    fn multiline_form_waits_for_balance() {
        assert_eq!(forms("(define-concept A\n"), Vec::<String>::new());
        assert_eq!(
            forms("(define-concept A\n  (and B C))\n"),
            vec!["(define-concept A\n  (and B C))"]
        );
    }

    #[test]
    fn comments_and_strings_do_not_confuse_the_scanner() {
        assert_eq!(
            forms("; header comment\n(ping) ; trailing\n"),
            vec!["(ping)"]
        );
        let with_string = "(describe \"unbalanced ) ( inside\")";
        assert_eq!(forms(with_string), vec![with_string]);
    }

    #[test]
    fn bare_garbage_becomes_a_line_form() {
        assert_eq!(
            forms("garbage here\n(ping)"),
            vec!["garbage here", "(ping)"]
        );
    }

    #[test]
    fn hostile_frames_are_rejected_not_buffered() {
        // Nesting past the cap would stack-overflow the recursive parser.
        let deep = "(".repeat(MAX_FORM_DEPTH + 1);
        assert!(next_form(deep.as_bytes()).is_err());
        // A frame that outgrows the byte cap without ever completing —
        // here an unterminated string — must be rejected, not buffered.
        let mut huge = b"(describe \"".to_vec();
        huge.resize(MAX_FORM_BYTES + 2, b'a');
        assert!(next_form(&huge).is_err());
        // At the cap boundary with a complete form, everything is fine.
        assert_eq!(
            next_form(b"(ping)").expect("framed"),
            Some(("(ping)".to_owned(), 6))
        );
    }

    #[test]
    fn tenant_names_validated() {
        assert!(validate_tenant_name("default").is_ok());
        assert!(validate_tenant_name("t-1_A").is_ok());
        assert!(validate_tenant_name("").is_err());
        assert!(validate_tenant_name("../escape").is_err());
        assert!(validate_tenant_name("a b").is_err());
    }
}
