//! Minimal HTTP/1.1 for observability and stateless eval.
//!
//! Just enough of the protocol for `curl` and a Prometheus scraper —
//! one request per connection, `Connection: close`, no chunked
//! encoding, no keep-alive:
//!
//! | route                  | payload                                     |
//! |------------------------|---------------------------------------------|
//! | `GET /healthz`         | `ok` once the listener is up                |
//! | `GET /metrics`         | process-wide Prometheus exposition, plus    |
//! |                        | per-tenant labeled sections and exemplars   |
//! | `GET /stats`           | per-tenant JSON (version, generation, size) |
//! | `GET /lint?tenant=T`   | tenant diagnostics (`&cone=1` for the cone) |
//! | `GET /trace?tenant=T`  | tenant's retained traces as Chrome          |
//! |                        | trace-event JSON (`&id=HEX` for one trace,  |
//! |                        | no params for every recorder's traces)      |
//! | `GET /slowlog?n=K`     | the K slowest requests with span trees      |
//! | `POST /eval?tenant=T`  | body = s-expr forms; JSON array of results  |
//! | `POST /ingest?tenant=T`| body = raw CSV/JSON rows; bulk-load report  |
//!
//! `POST /eval` participates in request tracing: the whole request runs
//! under one `server.request` root span (kind `http.eval`). A client
//! may supply its own trace id via the `X-Classic-Trace` header —
//! malformed or oversize ids are a 400 with a positioned error, not a
//! silently minted fresh id — and the reply echoes the id in effect in
//! the same header.
//!
//! `POST /eval` is stateless: each request parses and executes its
//! body's forms in order against tenant `T` (default `default`),
//! stopping at the first failure. Session forms (`tenant`, `sandbox`,
//! `ping`, `quit`) belong to the line protocol and are rejected here by
//! the parser like any other unknown form.
//!
//! `POST /ingest` streams record-shaped data through the bulk pipeline
//! (`classic-ingest`): the body is raw CSV or JSON rows, and the query
//! string carries the ingest options — `format=csv|json` (default
//! `csv`), `entity=NAME` (the concept rows load into, default
//! `record`), `id=COL` (column holding each row's individual name),
//! `infer=1` (derive a starter TBox from value shapes first). The load
//! commits through the store's segment tier — one compaction, no
//! per-row log appends — and the reply reports rows, accepted,
//! rejected, individuals created, and the committed generation.
//! Malformed input (ragged rows, duplicate ids) rejects the whole
//! request with 400 before anything is written.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use classic_obs::{json_string, RequestCtx, TraceId};

use crate::server::Shared;
use crate::tenant::TenantStats;

/// Cap on the request head (start line + headers): 1 MiB.
const MAX_REQUEST: usize = 1 << 20;

/// Cap on the declared request body: 16 MiB, answered with 413 beyond.
const MAX_BODY: usize = 16 << 20;

/// Serve one HTTP request whose first bytes are already in `buf`.
pub fn serve_http(
    mut stream: TcpStream,
    mut buf: Vec<u8>,
    shared: &Arc<Shared>,
) -> std::io::Result<()> {
    shared.metrics.http_requests.bump();
    let req = match read_request(&mut stream, &mut buf, shared) {
        Ok(Some(r)) => r,
        Ok(None) => return Ok(()), // peer went away mid-request
        Err((status, msg)) => {
            return respond(
                &mut stream,
                status,
                "text/plain; charset=utf-8",
                &format!("{msg}\n"),
            )
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => respond(&mut stream, 200, "text/plain; charset=utf-8", "ok\n"),
        ("GET", "/metrics") => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &shared.metrics_exposition(),
        ),
        ("GET", "/stats") => respond(
            &mut stream,
            200,
            "application/json",
            &stats_json(&shared.all_stats()),
        ),
        ("GET", "/trace") => match trace_dump(shared, &req) {
            Ok(json) => respond(&mut stream, 200, "application/json", &json),
            Err((status, msg)) => respond(
                &mut stream,
                status,
                "application/json",
                &format!("{{\"ok\":false,\"error\":{}}}\n", json_string(&msg)),
            ),
        },
        ("GET", "/slowlog") => {
            let n = req
                .query_param("n")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(10);
            respond(
                &mut stream,
                200,
                "application/json",
                &format!("{}\n", classic_obs::global_slowlog().render_json(n)),
            )
        }
        ("GET", "/lint") => {
            let tenant_name = req.query_param("tenant").unwrap_or("default");
            let cone = matches!(req.query_param("cone"), Some("1" | "true"));
            match lint_tenant(shared, tenant_name, cone) {
                Ok(json) => respond(&mut stream, 200, "application/json", &json),
                Err(msg) => respond(
                    &mut stream,
                    400,
                    "application/json",
                    &format!("{{\"ok\":false,\"error\":{}}}\n", json_string(&msg)),
                ),
            }
        }
        ("POST", "/eval") => {
            let tenant_name = req.query_param("tenant").unwrap_or("default");
            // Adopt the client's trace id or mint one; a bad header is a
            // positioned 400, never a silently minted id.
            let trace_id = match req.trace.as_deref() {
                Some(raw) => match TraceId::parse(raw) {
                    Ok(t) => t,
                    Err(e) => {
                        return respond(
                            &mut stream,
                            400,
                            "application/json",
                            &format!(
                                "{{\"ok\":false,\"error\":{}}}\n",
                                json_string(&format!("X-Classic-Trace: {e}"))
                            ),
                        )
                    }
                },
                None => TraceId::mint(),
            };
            let id_hex = trace_id.to_string();
            let body = match eval_body(shared, tenant_name, &req.body, trace_id) {
                Ok(json) => json,
                Err(msg) => {
                    return respond(
                        &mut stream,
                        400,
                        "application/json",
                        &format!("{{\"ok\":false,\"error\":{}}}\n", json_string(&msg)),
                    )
                }
            };
            respond_traced(&mut stream, 200, "application/json", &body, Some(&id_hex))
        }
        ("POST", "/ingest") => {
            let tenant_name = req.query_param("tenant").unwrap_or("default");
            match ingest_body(shared, tenant_name, &req) {
                Ok(json) => respond(&mut stream, 200, "application/json", &json),
                Err(msg) => respond(
                    &mut stream,
                    400,
                    "application/json",
                    &format!("{{\"ok\":false,\"error\":{}}}\n", json_string(&msg)),
                ),
            }
        }
        ("GET" | "POST", _) => {
            respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n")
        }
        _ => respond(
            &mut stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
        ),
    }
}

struct Request {
    method: String,
    path: String,  // path without query string
    query: String, // query string without '?', may be empty
    body: String,
    trace: Option<String>, // X-Classic-Trace header value, if present
}

impl Request {
    fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Read the rest of the request (headers were possibly split across
/// reads). `Ok(None)` = connection closed early; `Err` = malformed or
/// over-limit, as an HTTP `(status, message)` pair.
fn read_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    shared: &Arc<Shared>,
) -> Result<Option<Request>, (u16, String)> {
    let bad = |msg: &str| (400, msg.to_owned());
    let mut tmp = [0u8; 4096];
    let header_end = loop {
        if let Some(ix) = find(buf, b"\r\n\r\n") {
            break ix + 4;
        }
        if let Some(ix) = find(buf, b"\n\n") {
            break ix + 2;
        }
        if buf.len() > MAX_REQUEST {
            return Err((431, "request headers too large".to_owned()));
        }
        match stream.read(&mut tmp) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if crate::server::timed_out(&e) => {
                if shared.shutting_down() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(bad(&format!("read error: {e}"))),
        }
    };

    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.lines();
    let start = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = start.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_owned();
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    let mut content_length: Option<usize> = None;
    let mut trace: Option<String> = None;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = Some(v.trim().parse().map_err(|_| bad("bad content-length"))?);
            } else if k.trim().eq_ignore_ascii_case("x-classic-trace") {
                trace = Some(v.trim().to_owned());
            }
        }
    }
    let content_length = match content_length {
        Some(n) => n,
        // A POST body with no declared length cannot be framed under
        // `Connection: close`-only HTTP; say so instead of hanging
        // until the read times out or misparsing the stream.
        None if method == "POST" => {
            return Err((411, "POST requires a Content-Length header".to_owned()))
        }
        None => 0,
    };
    if content_length > MAX_BODY {
        return Err((
            413,
            format!("body of {content_length} bytes exceeds the {MAX_BODY}-byte limit"),
        ));
    }

    while buf.len() < header_end + content_length {
        match stream.read(&mut tmp) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if crate::server::timed_out(&e) => {
                if shared.shutting_down() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(bad(&format!("read error: {e}"))),
        }
    }
    let body = String::from_utf8_lossy(&buf[header_end..header_end + content_length]).into_owned();
    Ok(Some(Request {
        method,
        path,
        query,
        body,
        trace,
    }))
}

/// Answer `GET /trace`: Chrome trace-event JSON (Perfetto-loadable).
/// `?id=HEX` exports one trace from any recorder; `?tenant=T` exports
/// everything the tenant's flight recorder retains; no parameters
/// exports every enrolled recorder's traces.
fn trace_dump(shared: &Arc<Shared>, req: &Request) -> Result<String, (u16, String)> {
    if let Some(id) = req.query_param("id") {
        let full = TraceId::parse(id)
            .map_err(|e| (400, e.to_string()))?
            .to_string();
        return match classic_obs::find_trace(&full) {
            Some(t) => Ok(classic_obs::render_chrome_trace(&[t])),
            None => Err((404, format!("no retained trace with id {full}"))),
        };
    }
    let traces = match req.query_param("tenant") {
        Some(name) => shared
            .tenant(name)
            .map_err(|e| (400, e.to_string()))?
            .recorder()
            .traces(),
        None => classic_obs::all_traces(),
    };
    Ok(classic_obs::render_chrome_trace(&traces))
}

/// Answer `GET /lint`: the tenant's diagnostics from its incremental
/// analysis state (refreshed in O(dirty cone) under the primary lock).
fn lint_tenant(shared: &Arc<Shared>, tenant_name: &str, cone: bool) -> Result<String, String> {
    let tenant = shared.tenant(tenant_name).map_err(|e| e.to_string())?;
    shared.metrics.requests.bump();
    let outcome = tenant
        .execute(&classic_lang::Command::LintKb { cone })
        .map_err(|e| {
            shared.metrics.errors.bump();
            e.to_string()
        })?;
    Ok(format!("{}\n", outcome.render_json()))
}

/// Execute the forms in `body` against `tenant_name`, in order,
/// stopping at the first failure (which becomes the final element).
///
/// The whole request evaluates under one `server.request` root span
/// (kind `http.eval`) on the tenant's recorder, and its wall time feeds
/// the request histogram, exemplar store, and slowlog — same pipeline
/// as a line-protocol form.
fn eval_body(
    shared: &Arc<Shared>,
    tenant_name: &str,
    body: &str,
    trace_id: TraceId,
) -> Result<String, String> {
    let tenant = shared.tenant(tenant_name).map_err(|e| e.to_string())?;
    let commands = classic_lang::parse(body).map_err(|e| e.to_string())?;
    let ctx = RequestCtx {
        trace_id,
        tenant: tenant_name.to_owned(),
        session: classic_obs::next_session_id(),
        kind: "http.eval",
    };
    let started = Instant::now();
    let guard = classic_obs::request_span(tenant.recorder(), "server.request", ctx.clone());
    let mut results = Vec::with_capacity(commands.len());
    for cmd in &commands {
        shared.metrics.requests.bump();
        tenant.count_request();
        match tenant.execute(cmd) {
            Ok(o) => results.push(format!("{{\"ok\":true,\"result\":{}}}", o.render_json())),
            Err(e) => {
                shared.metrics.errors.bump();
                results.push(format!(
                    "{{\"ok\":false,\"error\":{}}}",
                    json_string(&e.to_string())
                ));
                break;
            }
        }
    }
    let dur_ns = started.elapsed().as_nanos() as u64;
    let trace = guard.finish();
    shared.metrics.request_ns.record(dur_ns);
    if classic_obs::counters_enabled() {
        shared
            .metrics
            .exemplars
            .observe(dur_ns, &ctx.trace_id.to_string());
        classic_obs::global_slowlog().record(ctx, dur_ns, trace);
    }
    Ok(format!("[{}]\n", results.join(",")))
}

/// Answer `POST /ingest`: plan the bulk load from the raw body, then
/// commit it through the tenant's segment-tier path
/// ([`crate::tenant::Tenant::ingest`]). Planning failures (malformed
/// CSV/JSON, duplicate ids, bad options) surface before any write.
fn ingest_body(shared: &Arc<Shared>, tenant_name: &str, req: &Request) -> Result<String, String> {
    use classic_ingest::{Format, IngestOptions};
    use std::fmt::Write as _;

    let tenant = shared.tenant(tenant_name).map_err(|e| e.to_string())?;
    shared.metrics.requests.bump();
    let fail = |msg: String| {
        shared.metrics.errors.bump();
        msg
    };
    let format = match req.query_param("format") {
        Some(f) => Format::parse(f)
            .ok_or_else(|| fail(format!("unknown format {f:?} (expected csv or json)")))?,
        None => Format::Csv,
    };
    let opts = IngestOptions {
        format,
        entity: req.query_param("entity").unwrap_or("record").to_owned(),
        id_column: req.query_param("id").map(str::to_owned),
        infer: matches!(req.query_param("infer"), Some("1" | "true")),
        source: format!("http://{tenant_name}/ingest"),
    };
    let plan = classic_ingest::plan(req.body.as_bytes(), &opts).map_err(|e| fail(e.to_string()))?;
    let out = tenant.ingest(&plan).map_err(|e| fail(e.to_string()))?;

    let r = &out.report;
    let mut body = format!(
        "{{\"ok\":true,\"result\":{{\"type\":\"ingested\",\"entity\":{},\"rows\":{},\
         \"accepted\":{},\"rejected\":{},\"created\":{},\"ddl_applied\":{},\"generation\":{}",
        json_string(&plan.entity),
        r.rows,
        r.accepted,
        r.rejected,
        r.inds_created,
        out.ddl_applied,
        out.generation,
    );
    body.push_str(",\"rejections\":[");
    for (ix, rej) in r.rejections.iter().enumerate() {
        if ix > 0 {
            body.push(',');
        }
        let _ = write!(
            body,
            "{{\"row\":{},\"name\":{},\"error\":{}}}",
            rej.row,
            json_string(&rej.name),
            json_string(&rej.error)
        );
    }
    body.push_str("]}}\n");
    Ok(body)
}

fn stats_json(stats: &[TenantStats]) -> String {
    let tenants: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":{},\"version\":{},\"generation\":{},\"pending_ops\":{},\
                 \"individuals\":{},\"concepts\":{},\"rules\":{}}}",
                json_string(&s.name),
                s.version,
                s.generation,
                s.pending_ops,
                s.individuals,
                s.concepts,
                s.rules
            )
        })
        .collect();
    format!("{{\"tenants\":[{}]}}\n", tenants.join(","))
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    respond_traced(stream, status, content_type, body, None)
}

/// Like [`respond`], echoing the trace id in effect for the request in
/// an `X-Classic-Trace` response header.
fn respond_traced(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    trace_id: Option<&str>,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        _ => "Internal Server Error",
    };
    let trace_header = match trace_id {
        Some(id) => format!("X-Classic-Trace: {id}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         {trace_header}Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_params_parse() {
        let r = Request {
            method: "POST".into(),
            path: "/eval".into(),
            query: "tenant=t1&x=2".into(),
            body: String::new(),
            trace: None,
        };
        assert_eq!(r.query_param("tenant"), Some("t1"));
        assert_eq!(r.query_param("x"), Some("2"));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn stats_render_as_json() {
        let s = TenantStats {
            name: "default".into(),
            version: 3,
            generation: 1,
            pending_ops: 2,
            individuals: 4,
            concepts: 5,
            rules: 0,
        };
        let json = stats_json(&[s]);
        assert!(json.contains("\"name\":\"default\""));
        assert!(json.contains("\"version\":3"));
        assert!(json.starts_with("{\"tenants\":["));
    }
}
