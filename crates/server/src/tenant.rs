//! One tenant = one [`DurableKb`] plus a cached read snapshot.
//!
//! The server hosts many independent knowledge bases in one process.
//! Each lives in its own directory under the server data root and is
//! wrapped in a [`Tenant`], which arbitrates two access paths:
//!
//! - **Mutations** take the primary store lock, run through
//!   [`DurableKb::eval_durable`] (so every write hits the fsynced
//!   operation log), then bump the tenant *version* and invalidate the
//!   cached snapshot.
//! - **Reads** run against an [`Arc<Snapshot>`] — a clone of the KB
//!   taken at a specific version. Many readers share one clone; a
//!   reader holds its `Arc` for as long as it likes, so a concurrent
//!   writer (or background compaction changing the store generation)
//!   never shifts the ground under an in-flight query. That is
//!   snapshot isolation in the only sense a structural KB needs:
//!   each query sees one consistent version, pinned for its duration.
//!
//! Lock order is `primary` → `snap` never held together from the write
//! path (the writer drops the primary guard before touching the cache),
//! and the read path takes `snap` → `primary` only when the cache is
//! cold. Since no thread ever waits on `snap` while holding `primary`,
//! the pair cannot deadlock.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use classic_analyze::AnalysisState;
use classic_core::{ClassicError, Result};
use classic_kb::Kb;
use classic_lang::{Command, LintReport, Outcome};
use classic_obs::{Counter, FlightRecorder, Registry};
use classic_store::DurableKb;

/// A poisoned tenant lock means some earlier evaluation panicked while
/// holding it, so the guarded KB may be mid-mutation. Rather than let
/// every subsequent request kill its worker thread via `expect`, the
/// server answers with this error — the rest of the process (other
/// tenants, metrics, health checks) keeps serving.
fn poisoned(what: &str, tenant: &str) -> ClassicError {
    ClassicError::Storage {
        path: tenant.to_owned(),
        generation: None,
        detail: format!(
            "{what} lock poisoned: a previous request panicked mid-operation; \
             restart the server to reopen this tenant from its log"
        ),
    }
}

/// An immutable-by-convention copy of a tenant KB at one version.
///
/// The inner `Mutex<Kb>` exists because query evaluation takes
/// `&mut Kb` (normalization caches, `what-if` trial assertions that
/// roll themselves back) — logically the snapshot never changes.
pub struct Snapshot {
    /// Store generation (manifest) the snapshot was cut at.
    pub generation: u64,
    /// Tenant version (monotone per-mutation counter) it reflects.
    pub version: u64,
    kb: Mutex<Kb>,
}

impl Snapshot {
    /// Run `f` against the snapshot KB. Errs if a previous query
    /// panicked mid-evaluation and poisoned the snapshot (a `what-if`
    /// trial may have been left half rolled back), in which case the
    /// snapshot is unusable — the next mutation or version check cuts a
    /// fresh one from the primary.
    pub fn with_kb<T>(&self, f: impl FnOnce(&mut Kb) -> T) -> Result<T> {
        let mut kb = self
            .kb
            .lock()
            .map_err(|_| poisoned("snapshot", "snapshot"))?;
        Ok(f(&mut kb))
    }

    /// Evaluate a read-only command against this snapshot.
    pub fn eval(&self, cmd: &Command) -> Result<Outcome> {
        self.with_kb(|kb| classic_lang::eval(kb, cmd))?
    }
}

/// A named durable KB hosted by the server.
///
/// Lock order: `primary` → `analysis` (the lint path holds both — the
/// analysis state tracks the *primary* KB, so it refreshes under the
/// store lock); never acquire `primary` while holding `analysis` or
/// `snap`.
pub struct Tenant {
    name: String,
    version: AtomicU64,
    primary: Mutex<DurableKb>,
    snap: Mutex<Option<Arc<Snapshot>>>,
    /// Incrementally-maintained analysis over the primary KB: mutation
    /// cones are marked as writes land, `(lint-kb)` refreshes in O(cone).
    analysis: Mutex<AnalysisState>,
    /// When set, every mutation reply carries the cone diagnostics its
    /// write re-derived (`(lint-on-write on)`).
    lint_on_write: AtomicBool,
    /// The tenant KB's metric registry, cached at open so `/metrics`
    /// can render a tenant-labeled section without the primary lock.
    /// `Kb::clone` shares this `Arc`, so snapshot and sandbox evals
    /// land in the same registry.
    registry: Arc<Registry>,
    /// The tenant KB's flight recorder, cached for the same reason:
    /// request root spans and `GET /trace?tenant=…` both need it
    /// without waiting behind a writer.
    recorder: Arc<FlightRecorder>,
    /// Wire requests routed to this tenant (line protocol and HTTP),
    /// registered in the tenant's own registry so the roll-up sums it
    /// and the labeled section attributes it.
    requests: Counter,
}

/// A point-in-time summary of one tenant, for `/stats`.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name (also its directory stem under the data root).
    pub name: String,
    /// Mutations applied since the server opened the tenant.
    pub version: u64,
    /// Snapshot-store generation (advances on compaction).
    pub generation: u64,
    /// Operations in the log suffix not yet folded into segments.
    pub pending_ops: u64,
    /// Individuals in the KB.
    pub individuals: usize,
    /// Named concepts in the schema.
    pub concepts: usize,
    /// Classification rules (including retracted tombstones).
    pub rules: usize,
}

impl Tenant {
    /// Open (or create) the tenant rooted at `dir`, replaying its log.
    ///
    /// The wire protocol has no way to ship host test functions, so the
    /// tenant registers none; a log that references `(test ...)`
    /// predicates from an embedded-use session will fail to open here,
    /// which is the honest outcome.
    pub fn open(name: &str, dir: &Path) -> Result<Tenant> {
        std::fs::create_dir_all(dir).map_err(|e| ClassicError::Storage {
            path: dir.display().to_string(),
            generation: None,
            detail: format!("creating tenant directory: {e}"),
        })?;
        let mut store = DurableKb::open(dir.join("kb.log"), |_| {})?;
        let (registry, recorder) = {
            let kb = store.kb_mut_for_queries();
            (Arc::clone(kb.metrics()), Arc::clone(kb.flight_recorder()))
        };
        let requests = registry
            .counter(
                "classic_tenant_requests_total",
                "wire requests routed to this tenant",
            )
            .map_err(|e| ClassicError::Malformed(e.to_string()))?;
        Ok(Tenant {
            name: name.to_owned(),
            version: AtomicU64::new(0),
            primary: Mutex::new(store),
            snap: Mutex::new(None),
            analysis: Mutex::new(AnalysisState::new()),
            lint_on_write: AtomicBool::new(false),
            registry,
            recorder,
            requests,
        })
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current version: the number of successful mutations so far.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The tenant KB's metric registry (snapshot/sandbox clones share
    /// it); `/metrics` renders its series under a `tenant="…"` label.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The tenant KB's flight recorder: every request root span for
    /// this tenant records here, and `GET /trace?tenant=…` reads it.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Count one wire request (line-protocol form or HTTP eval) routed
    /// to this tenant.
    pub fn count_request(&self) {
        self.requests.bump();
    }

    fn lock_primary(&self) -> Result<MutexGuard<'_, DurableKb>> {
        self.primary
            .lock()
            .map_err(|_| poisoned("primary store", &self.name))
    }

    fn lock_snap(&self) -> Result<MutexGuard<'_, Option<Arc<Snapshot>>>> {
        self.snap
            .lock()
            .map_err(|_| poisoned("snapshot cache", &self.name))
    }

    fn lock_analysis(&self) -> Result<MutexGuard<'_, AnalysisState>> {
        self.analysis
            .lock()
            .map_err(|_| poisoned("analysis state", &self.name))
    }

    /// Whether mutation replies carry their cone diagnostics.
    pub fn lint_on_write(&self) -> bool {
        self.lint_on_write.load(Ordering::Acquire)
    }

    /// Toggle lint-on-write mode for this tenant.
    pub fn set_lint_on_write(&self, on: bool) {
        self.lint_on_write.store(on, Ordering::Release);
    }

    /// Evaluate one command, routing by [`Command::is_mutation`]:
    /// writes through the durable log, reads against a shared snapshot.
    pub fn execute(&self, cmd: &Command) -> Result<Outcome> {
        self.execute_with_lint(cmd).map(|(outcome, _)| outcome)
    }

    /// [`Self::execute`], additionally returning the cone diagnostics
    /// the write re-derived when lint-on-write is enabled.
    ///
    /// Two commands leave the plain read/write split:
    ///
    /// * `(lint-kb [cone])` is a read, but it is answered from the
    ///   tenant's incremental [`AnalysisState`], which tracks the
    ///   *primary* KB — so it refreshes under the store lock (O(cone),
    ///   not O(KB)) instead of evaluating against a snapshot.
    /// * Mutations mark their analysis cone as they land (retraction
    ///   cones before the journal shrinks, assertion cones after it
    ///   grows); with lint-on-write on they also refresh and return the
    ///   cone's diagnostics.
    pub fn execute_with_lint(&self, cmd: &Command) -> Result<(Outcome, Option<LintReport>)> {
        if matches!(cmd, Command::LintKb { .. }) {
            let mut store = self.lock_primary()?;
            let mut analysis = self.lock_analysis()?;
            let outcome =
                classic_lang::eval_monitored(store.kb_mut_for_queries(), cmd, &mut analysis)?;
            return Ok((outcome, None));
        }
        if cmd.is_mutation() {
            let result = {
                let mut store = self.lock_primary()?;
                let mut analysis = self.lock_analysis()?;
                if let Command::RetractInd(name, _) = cmd {
                    classic_lang::mark_individual_dirty(
                        store.kb_mut_for_queries(),
                        &mut analysis,
                        name,
                    );
                }
                let outcome = store.eval_durable(cmd)?;
                if let Command::AssertInd(name, _) = cmd {
                    classic_lang::mark_individual_dirty(
                        store.kb_mut_for_queries(),
                        &mut analysis,
                        name,
                    );
                }
                let lint = if self.lint_on_write() {
                    let refresh = analysis.refresh(store.kb_mut_for_queries());
                    Some(LintReport::from_refresh(&refresh))
                } else {
                    None
                };
                self.version.fetch_add(1, Ordering::AcqRel);
                (outcome, lint)
            };
            // Invalidate after releasing the store lock; a racing
            // reader that re-caches the old version loses only
            // freshness until the *next* version check, never
            // consistency (the stale snapshot is still one version).
            self.lock_snap()?.take();
            Ok(result)
        } else {
            Ok((self.snapshot()?.eval(cmd)?, None))
        }
    }

    /// Bulk-load a prepared ingest plan through the store's segment
    /// tier ([`DurableKb::bulk_load`]): one compaction, no per-row log
    /// appends, manifest rename as the commit point.
    ///
    /// A bulk load can add roles, concepts, and thousands of
    /// individuals at once, so instead of marking cones the tenant
    /// resets its incremental analysis state — the next `(lint-kb)`
    /// recomputes from scratch, which is the honest cost of a batch
    /// write. The version bumps once per ingest (it counts mutation
    /// *requests*, not rows) and the snapshot cache is invalidated
    /// after the primary lock is released, same as [`Self::execute`].
    pub fn ingest(
        &self,
        plan: &classic_ingest::IngestPlan,
    ) -> Result<classic_store::BulkLoadReport> {
        let out = {
            let mut store = self.lock_primary()?;
            let mut analysis = self.lock_analysis()?;
            let out = classic_ingest::run_durable(&mut store, plan)?;
            *analysis = AnalysisState::new();
            self.version.fetch_add(1, Ordering::AcqRel);
            out
        };
        self.lock_snap()?.take();
        Ok(out)
    }

    /// Get the shared snapshot for the current version, cutting a fresh
    /// clone from the primary iff the cache is stale or cold.
    pub fn snapshot(&self) -> Result<Arc<Snapshot>> {
        let version = self.version();
        let mut cache = self.lock_snap()?;
        if let Some(s) = cache.as_ref() {
            if s.version == version {
                return Ok(Arc::clone(s));
            }
        }
        let mut store = self.lock_primary()?;
        // Re-read under the lock: a mutation may have landed between
        // the version load above and acquiring the primary.
        let version = self.version();
        let snapshot = Arc::new(Snapshot {
            generation: store.generation(),
            version,
            kb: Mutex::new(store.kb_mut_for_queries().clone()),
        });
        *cache = Some(Arc::clone(&snapshot));
        Ok(snapshot)
    }

    /// Run `f` with the primary store locked — administrative access
    /// for flush/compaction control and tests.
    pub fn with_store<T>(&self, f: impl FnOnce(&mut DurableKb) -> T) -> Result<T> {
        let mut store = self.lock_primary()?;
        Ok(f(&mut store))
    }

    /// Flush the operation log to disk (used by graceful shutdown).
    pub fn flush(&self) -> Result<()> {
        self.with_store(|s| {
            // Land any background compaction first so the manifest and
            // log agree, then sync the log tail.
            s.wait_for_compaction()?;
            s.flush()
        })?
    }

    /// Summarize the tenant for `/stats`. Errs if the primary lock is
    /// poisoned (the tenant then also rejects every command).
    pub fn stats(&self) -> Result<TenantStats> {
        let mut store = self.lock_primary()?;
        let generation = store.generation();
        let pending_ops = store.pending_ops();
        let kb = store.kb_mut_for_queries();
        Ok(TenantStats {
            name: self.name.clone(),
            version: self.version(),
            generation,
            pending_ops,
            individuals: kb.ind_count(),
            concepts: kb.schema().concept_count(),
            rules: kb.rules().len(),
        })
    }
}
