//! Reclassification cascades: "this might cause other individuals to be
//! reclassified, but this process is guaranteed to end" (paper §5).
//!
//! These tests pin the cascade machinery: information arriving at one
//! individual must re-trigger recognition at every individual whose
//! provable memberships depend on it (through role fillers), transitively,
//! and nowhere else.

use classic_core::desc::{Concept, IndRef};
use classic_kb::Kb;

/// DOG-OWNER = PERSON whose pets are all DOGs, with a closed pet role —
/// provable only by enumerating fillers, so it depends on the fillers'
/// own memberships.
fn schema() -> Kb {
    let mut kb = Kb::new();
    kb.define_role("pet").unwrap();
    kb.define_role("barks-at").unwrap();
    kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
        .unwrap();
    kb.define_concept("ANIMAL", Concept::primitive(Concept::thing(), "animal"))
        .unwrap();
    let animal = Concept::Name(kb.schema().symbols.find_concept("ANIMAL").unwrap());
    let barks = kb.schema().symbols.find_role("barks-at").unwrap();
    // A DOG is *defined*: an animal that barks at something.
    kb.define_concept("DOG", Concept::and([animal, Concept::AtLeast(1, barks)]))
        .unwrap();
    let person = Concept::Name(kb.schema().symbols.find_concept("PERSON").unwrap());
    let dog = Concept::Name(kb.schema().symbols.find_concept("DOG").unwrap());
    let pet = kb.schema().symbols.find_role("pet").unwrap();
    kb.define_concept(
        "DOG-OWNER",
        Concept::and([person, Concept::AtLeast(1, pet), Concept::all(pet, dog)]),
    )
    .unwrap();
    kb
}

#[test]
fn filler_membership_change_reclassifies_the_owner() {
    let mut kb = schema();
    let pet = kb.schema().symbols.find_role("pet").unwrap();
    let barks = kb.schema().symbols.find_role("barks-at").unwrap();
    let person = kb.schema().symbols.find_concept("PERSON").unwrap();
    let animal = kb.schema().symbols.find_concept("ANIMAL").unwrap();
    let owner_c = kb.schema().symbols.find_concept("DOG-OWNER").unwrap();

    let owner = kb.create_ind("Pat").unwrap();
    kb.assert_ind("Pat", &Concept::Name(person)).unwrap();
    let rex = IndRef::Classic(kb.schema_mut().symbols.individual("Rex"));
    kb.assert_ind(
        "Pat",
        &Concept::and([Concept::Fills(pet, vec![rex]), Concept::Close(pet)]),
    )
    .unwrap();
    kb.assert_ind("Rex", &Concept::Name(animal)).unwrap();
    // Rex is not yet provably a DOG, so Pat is not a DOG-OWNER.
    assert!(!kb.is_instance_of(owner, owner_c).unwrap());

    // Information about *Rex* arrives; the cascade must reach Pat.
    kb.assert_ind("Rex", &Concept::AtLeast(1, barks)).unwrap();
    assert!(
        kb.is_instance_of(owner, owner_c).unwrap(),
        "owner must be reclassified when its filler becomes a DOG"
    );
}

#[test]
fn cascades_chain_through_multiple_levels() {
    // GRAND-OWNER = person all of whose pets are DOG-OWNERs' pets? Build a
    // two-level chain instead: OBSERVER closed over watched DOG-OWNERs.
    let mut kb = schema();
    kb.define_role("watches").unwrap();
    let watches = kb.schema().symbols.find_role("watches").unwrap();
    let owner_c = Concept::Name(kb.schema().symbols.find_concept("DOG-OWNER").unwrap());
    kb.define_concept(
        "OWNER-WATCHER",
        Concept::and([Concept::AtLeast(1, watches), Concept::all(watches, owner_c)]),
    )
    .unwrap();
    let watcher_c = kb.schema().symbols.find_concept("OWNER-WATCHER").unwrap();

    let pet = kb.schema().symbols.find_role("pet").unwrap();
    let barks = kb.schema().symbols.find_role("barks-at").unwrap();
    let person = kb.schema().symbols.find_concept("PERSON").unwrap();
    let animal = kb.schema().symbols.find_concept("ANIMAL").unwrap();

    // cam watches Pat; Pat owns Rex (closed); Rex is an animal.
    let cam = kb.create_ind("Cam").unwrap();
    let pat = IndRef::Classic(kb.schema_mut().symbols.individual("Pat"));
    kb.assert_ind(
        "Cam",
        &Concept::and([Concept::Fills(watches, vec![pat]), Concept::Close(watches)]),
    )
    .unwrap();
    kb.assert_ind("Pat", &Concept::Name(person)).unwrap();
    let rex = IndRef::Classic(kb.schema_mut().symbols.individual("Rex"));
    kb.assert_ind(
        "Pat",
        &Concept::and([Concept::Fills(pet, vec![rex]), Concept::Close(pet)]),
    )
    .unwrap();
    kb.assert_ind("Rex", &Concept::Name(animal)).unwrap();
    assert!(!kb.is_instance_of(cam, watcher_c).unwrap());

    // One fact about Rex cascades two levels: Rex→DOG, Pat→DOG-OWNER,
    // Cam→OWNER-WATCHER.
    let report = kb.assert_ind("Rex", &Concept::AtLeast(1, barks)).unwrap();
    assert!(kb.is_instance_of(cam, watcher_c).unwrap());
    assert!(
        report.reclassified >= 2,
        "at least Pat and Cam reclassified"
    );
}

#[test]
fn rejected_cascade_rolls_back_every_level() {
    let mut kb = schema();
    let pet = kb.schema().symbols.find_role("pet").unwrap();
    let person = kb.schema().symbols.find_concept("PERSON").unwrap();
    // CAT-PEOPLE: pets all provably non-dogs — model with AT-MOST 0
    // barks-at propagated through ALL.
    let barks = kb.schema().symbols.find_role("barks-at").unwrap();
    kb.create_ind("Pat").unwrap();
    kb.assert_ind("Pat", &Concept::Name(person)).unwrap();
    let rex = IndRef::Classic(kb.schema_mut().symbols.individual("Rex"));
    kb.assert_ind("Pat", &Concept::Fills(pet, vec![rex]))
        .unwrap();
    // Rex barks at the mailman.
    let mailman = IndRef::Classic(kb.schema_mut().symbols.individual("Mailman"));
    kb.assert_ind("Rex", &Concept::Fills(barks, vec![mailman]))
        .unwrap();
    let rex_id = kb
        .ind_id(kb.schema().symbols.find_individual("Rex").unwrap())
        .unwrap();
    let before = kb.ind(rex_id).derived.clone();
    // Asserting that Pat's pets never bark contradicts Rex's filler — the
    // propagation reaches Rex, clashes there, and must roll back both.
    let err = kb
        .assert_ind("Pat", &Concept::all(pet, Concept::AtMost(0, barks)))
        .unwrap_err();
    assert!(matches!(
        err,
        classic_core::ClassicError::Inconsistent { .. }
    ));
    assert_eq!(kb.ind(rex_id).derived, before, "Rex fully restored");
    let pat_id = kb
        .ind_id(kb.schema().symbols.find_individual("Pat").unwrap())
        .unwrap();
    let vr = kb.ind(pat_id).derived.value_restriction(pet);
    assert!(vr.is_top(), "Pat's rejected ALL restriction removed");
}

#[test]
fn cascade_does_not_disturb_unrelated_individuals() {
    let mut kb = schema();
    let barks = kb.schema().symbols.find_role("barks-at").unwrap();
    let animal = kb.schema().symbols.find_concept("ANIMAL").unwrap();
    kb.create_ind("Rex").unwrap();
    kb.assert_ind("Rex", &Concept::Name(animal)).unwrap();
    kb.create_ind("Unrelated").unwrap();
    let u = kb
        .ind_id(kb.schema().symbols.find_individual("Unrelated").unwrap())
        .unwrap();
    let before = kb.ind(u).derived.clone();
    let before_msc = kb.ind(u).msc.clone();
    kb.assert_ind("Rex", &Concept::AtLeast(1, barks)).unwrap();
    assert_eq!(kb.ind(u).derived, before);
    assert_eq!(kb.ind(u).msc, before_msc);
}

#[test]
fn what_if_reports_without_mutating() {
    let mut kb = schema();
    let pet = kb.schema().symbols.find_role("pet").unwrap();
    let barks = kb.schema().symbols.find_role("barks-at").unwrap();
    let person = kb.schema().symbols.find_concept("PERSON").unwrap();
    kb.create_ind("Pat").unwrap();
    kb.assert_ind("Pat", &Concept::Name(person)).unwrap();
    let rex = IndRef::Classic(kb.schema_mut().symbols.individual("Rex"));
    kb.assert_ind("Pat", &Concept::Fills(pet, vec![rex]))
        .unwrap();
    let count_before = kb.ind_count();
    let pat = kb
        .ind_id(kb.schema().symbols.find_individual("Pat").unwrap())
        .unwrap();
    let derived_before = kb.ind(pat).derived.clone();

    // Hypothetical: what if all of Pat's pets bark at the mailman?
    let mailman = IndRef::Classic(kb.schema_mut().symbols.individual("Mailman"));
    let report = kb
        .what_if(
            "Pat",
            &Concept::all(pet, Concept::Fills(barks, vec![mailman])),
        )
        .expect("would be accepted");
    assert!(report.fills_propagated >= 1, "Rex would gain the filler");
    // Nothing actually changed — including the hypothetical Mailman.
    assert_eq!(kb.ind_count(), count_before, "Mailman rolled back");
    assert_eq!(kb.ind(pat).derived, derived_before);
    assert!(
        kb.schema().symbols.find_individual("Mailman").is_some(),
        "interned is fine"
    );
    let mailman_name = kb.schema().symbols.find_individual("Mailman").unwrap();
    assert!(kb.ind_id(mailman_name).is_err(), "but never created");

    // A contradictory hypothetical reports the rejection, equally without
    // side effects.
    let err = kb
        .what_if("Pat", &Concept::AtMost(0, pet))
        .expect_err("contradicts the known filler");
    assert!(matches!(
        err,
        classic_core::ClassicError::Inconsistent { .. }
    ));
    assert_eq!(kb.ind(pat).derived, derived_before);
}
