//! Oracle: `bulk_assert` is observationally equal to one-at-a-time
//! replay.
//!
//! The bulk path batches rule firing and realization into chunked
//! fixpoints and rolls rejected rows back with a journal, so it is a
//! different *mechanism* from the sequential `assert-ind` loop — but it
//! promises the same *semantics*: each row is accepted or rejected
//! exactly as the sequential loop would decide, a rejected row leaves
//! no trace (not even its target individual), and the final database
//! state is identical to replaying just the accepted rows in order.
//! These properties drive random row batches (duplicate targets, new
//! fillers, clashing restrictions) through both paths at several chunk
//! sizes — including chunk size 1, which forces the sequential
//! fallback machinery — and compare fingerprints.

use classic_core::desc::{Concept, IndRef};
use classic_core::normal::NormalForm;
use classic_core::symbol::RoleId;
use classic_kb::{BulkRow, Kb};
use proptest::prelude::*;
use std::collections::BTreeSet;

const N_ROLES: usize = 3;
const N_TARGETS: usize = 4;
const N_FILLERS: usize = 3;

/// Fixed schema with enough structure to make rows interact: a
/// primitive, a disjoint pair (so rows can clash), and restrictions
/// that recognize individuals other rows touched.
fn schema_kb() -> Kb {
    let mut kb = Kb::new();
    for i in 0..N_ROLES {
        kb.define_role(&format!("r{i}")).unwrap();
    }
    kb.define_concept("P0", Concept::primitive(Concept::thing(), "p0"))
        .unwrap();
    kb.define_concept(
        "D-LEFT",
        Concept::disjoint_primitive(Concept::thing(), "side", "left"),
    )
    .unwrap();
    kb.define_concept(
        "D-RIGHT",
        Concept::disjoint_primitive(Concept::thing(), "side", "right"),
    )
    .unwrap();
    let p0 = Concept::Name(kb.schema().symbols.find_concept("P0").unwrap());
    kb.define_concept(
        "BUSY",
        Concept::and([
            p0,
            Concept::AtLeast(2, RoleId::from_index(0)),
            Concept::AtMost(6, RoleId::from_index(1)),
        ]),
    )
    .unwrap();
    kb
}

/// One generated row: a target name index plus a small description.
#[derive(Debug, Clone)]
enum Shape {
    Prim(&'static str),
    AtLeast(usize, u32),
    AtMost(usize, u32),
    Fills(usize, usize),
    Close(usize),
    All(usize, &'static str),
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        prop_oneof![Just("P0"), Just("D-LEFT"), Just("D-RIGHT")].prop_map(Shape::Prim),
        (0..N_ROLES, 0u32..4).prop_map(|(r, n)| Shape::AtLeast(r, n)),
        (0..N_ROLES, 0u32..4).prop_map(|(r, n)| Shape::AtMost(r, n)),
        (0..N_ROLES, 0..N_FILLERS).prop_map(|(r, j)| Shape::Fills(r, j)),
        (0..N_ROLES).prop_map(Shape::Close),
        (0..N_ROLES, prop_oneof![Just("P0"), Just("D-LEFT")]).prop_map(|(r, n)| Shape::All(r, n)),
    ]
}

fn row_strategy() -> impl Strategy<Value = (usize, Vec<Shape>)> {
    (
        0..N_TARGETS,
        proptest::collection::vec(shape_strategy(), 1..3),
    )
}

fn build_row(kb: &mut Kb, target: usize, shapes: &[Shape]) -> BulkRow {
    let parts: Vec<Concept> = shapes
        .iter()
        .map(|s| match s {
            Shape::Prim(n) => Concept::Name(kb.schema_mut().symbols.concept(n)),
            Shape::AtLeast(r, n) => Concept::AtLeast(*n, RoleId::from_index(*r)),
            Shape::AtMost(r, n) => Concept::AtMost(*n, RoleId::from_index(*r)),
            Shape::Fills(r, j) => {
                let f = IndRef::Classic(kb.schema_mut().symbols.individual(&format!("y{j}")));
                Concept::Fills(RoleId::from_index(*r), vec![f])
            }
            Shape::Close(r) => Concept::Close(RoleId::from_index(*r)),
            Shape::All(r, n) => {
                let inner = Concept::Name(kb.schema_mut().symbols.concept(n));
                Concept::all(RoleId::from_index(*r), inner)
            }
        })
        .collect();
    BulkRow {
        name: format!("x{target}"),
        desc: Concept::and(parts),
    }
}

/// A complete, comparable fingerprint: every individual's name, derived
/// normal form, and most-specific-concept set.
fn fingerprint(kb: &Kb) -> Vec<(String, NormalForm, BTreeSet<usize>)> {
    kb.ind_ids()
        .map(|id| {
            let ind = kb.ind(id);
            (
                kb.schema().symbols.individual_name(ind.name).to_owned(),
                ind.derived.clone(),
                ind.msc.iter().map(|n| n.index()).collect(),
            )
        })
        .collect()
}

/// The sequential oracle: per row, create the target if absent, try the
/// assertion, and restore the whole-KB snapshot on rejection (so a
/// rejected row leaves no trace, matching the bulk contract). Returns
/// the per-row accept flags alongside the final state.
fn sequential_oracle(mut kb: Kb, rows: &[BulkRow]) -> (Kb, Vec<bool>) {
    let mut accepted = Vec::with_capacity(rows.len());
    for row in rows {
        let before = kb.clone();
        let exists = kb
            .schema()
            .symbols
            .find_individual(&row.name)
            .is_some_and(|n| kb.ind_id(n).is_ok());
        if !exists {
            kb.create_ind(&row.name).unwrap();
        }
        match kb.assert_ind(&row.name, &row.desc) {
            Ok(_) => accepted.push(true),
            Err(_) => {
                kb = before;
                accepted.push(false);
            }
        }
    }
    (kb, accepted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bulk load == sequential replay: same per-row accept/reject
    /// decisions, same final state, at every chunk size (1 forces the
    /// per-row fallback, 2 mixes chunked and fallback, 512 is the
    /// production default taking one chunk).
    #[test]
    fn bulk_assert_matches_sequential_replay(
        specs in proptest::collection::vec(row_strategy(), 1..16),
        chunk in prop_oneof![Just(1usize), Just(2), Just(512)],
    ) {
        let mut kb = schema_kb();
        let rows: Vec<BulkRow> = specs
            .iter()
            .map(|(t, shapes)| build_row(&mut kb, *t, shapes))
            .collect();
        let (oracle, oracle_accepted) = sequential_oracle(kb.clone(), &rows);

        let report = kb.bulk_assert_chunked(&rows, chunk);

        prop_assert_eq!(
            &report.row_accepted,
            &oracle_accepted,
            "bulk and sequential replay disagree on which rows commit"
        );
        prop_assert_eq!(report.accepted, oracle_accepted.iter().filter(|a| **a).count());
        prop_assert_eq!(report.rejected, rows.len() - report.accepted);
        prop_assert_eq!(
            fingerprint(&kb),
            fingerprint(&oracle),
            "final states diverge (chunk={})",
            chunk
        );
    }

    /// Rejected rows leave no trace even when the row itself introduced
    /// its target: the individual count after a bulk load equals the
    /// sequential oracle's, so no husk individuals leak.
    #[test]
    fn rejected_rows_leak_no_individuals(
        specs in proptest::collection::vec(row_strategy(), 1..16),
    ) {
        let mut kb = schema_kb();
        let rows: Vec<BulkRow> = specs
            .iter()
            .map(|(t, shapes)| build_row(&mut kb, *t, shapes))
            .collect();
        let (oracle, _) = sequential_oracle(kb.clone(), &rows);
        kb.bulk_assert(&rows);
        prop_assert_eq!(kb.ind_count(), oracle.ind_count());
    }
}
