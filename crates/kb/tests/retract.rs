//! Retraction: removing a *told* fact and re-deriving everything that
//! depended on it, without rebuilding the database.
//!
//! The deterministic tests pin each dependency kind the journal records
//! (ALL-propagation, rule firings, multiple independent supports); the
//! proptest at the bottom is the oracle: after a random interleaving of
//! assertions and retractions, the database must be *identical* to one
//! rebuilt from scratch from the surviving told facts.

use classic_core::desc::{Concept, IndRef};
use classic_core::normal::NormalForm;
use classic_core::symbol::RoleId;
use classic_core::ClassicError;
use classic_kb::Kb;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The paper's §3 schema: students, cars, junk food.
fn paper_kb() -> Kb {
    let mut kb = Kb::new();
    kb.define_role("thing-driven").unwrap();
    kb.define_role("eat").unwrap();
    kb.define_role("enrolled-at").unwrap();
    kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
        .unwrap();
    kb.define_concept("SPORTS-CAR", Concept::primitive(Concept::thing(), "sports"))
        .unwrap();
    kb.define_concept("JUNK-FOOD", Concept::primitive(Concept::thing(), "junk"))
        .unwrap();
    let person = Concept::Name(kb.schema().symbols.find_concept("PERSON").unwrap());
    let enrolled = kb.schema().symbols.find_role("enrolled-at").unwrap();
    kb.define_concept(
        "STUDENT",
        Concept::and([person, Concept::AtLeast(1, enrolled)]),
    )
    .unwrap();
    kb
}

#[test]
fn retracting_an_all_restriction_undoes_propagation_to_fillers() {
    let mut kb = paper_kb();
    let driven = kb.schema().symbols.find_role("thing-driven").unwrap();
    let sports = kb.schema().symbols.find_concept("SPORTS-CAR").unwrap();
    kb.create_ind("Rocky").unwrap();
    let car = IndRef::Classic(kb.schema_mut().symbols.individual("Car-1"));
    kb.assert_ind("Rocky", &Concept::Fills(driven, vec![car]))
        .unwrap();
    let all_sports = Concept::all(driven, Concept::Name(sports));
    kb.assert_ind("Rocky", &all_sports).unwrap();
    let car_id = kb
        .ind_id(kb.schema().symbols.find_individual("Car-1").unwrap())
        .unwrap();
    assert!(
        kb.is_instance_of(car_id, sports).unwrap(),
        "propagation made Car-1 a SPORTS-CAR"
    );

    let report = kb.retract_ind("Rocky", &all_sports).unwrap();
    assert!(report.reset >= 2, "Rocky and Car-1 both re-derived");
    assert!(
        !kb.is_instance_of(car_id, sports).unwrap(),
        "the derived membership must disappear with its support"
    );
    // The filler edge itself was told separately and survives.
    let rocky = kb
        .ind_id(kb.schema().symbols.find_individual("Rocky").unwrap())
        .unwrap();
    assert_eq!(kb.ind(rocky).fillers(driven).len(), 1);
    kb.check_invariants().unwrap();
}

#[test]
fn independently_told_facts_survive_retraction_of_one_support() {
    let mut kb = paper_kb();
    let driven = kb.schema().symbols.find_role("thing-driven").unwrap();
    let sports = kb.schema().symbols.find_concept("SPORTS-CAR").unwrap();
    kb.create_ind("Rocky").unwrap();
    let car = IndRef::Classic(kb.schema_mut().symbols.individual("Car-1"));
    kb.assert_ind("Rocky", &Concept::Fills(driven, vec![car]))
        .unwrap();
    let all_sports = Concept::all(driven, Concept::Name(sports));
    kb.assert_ind("Rocky", &all_sports).unwrap();
    // Car-1 is *also* told to be a SPORTS-CAR in its own right.
    kb.assert_ind("Car-1", &Concept::Name(sports)).unwrap();

    kb.retract_ind("Rocky", &all_sports).unwrap();
    let car_id = kb
        .ind_id(kb.schema().symbols.find_individual("Car-1").unwrap())
        .unwrap();
    assert!(
        kb.is_instance_of(car_id, sports).unwrap(),
        "the independent told support must keep the membership alive"
    );
    kb.check_invariants().unwrap();
}

#[test]
fn retracting_a_rule_withdraws_its_consequences() {
    let mut kb = paper_kb();
    let eat = kb.schema().symbols.find_role("eat").unwrap();
    let enrolled = kb.schema().symbols.find_role("enrolled-at").unwrap();
    let person = kb.schema().symbols.find_concept("PERSON").unwrap();
    let junk = kb.schema().symbols.find_concept("JUNK-FOOD").unwrap();
    let consequent = Concept::all(eat, Concept::Name(junk));
    kb.assert_rule("STUDENT", consequent.clone()).unwrap();

    kb.create_ind("Rocky").unwrap();
    kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();
    kb.assert_ind("Rocky", &Concept::AtLeast(1, enrolled))
        .unwrap();
    let pizza = IndRef::Classic(kb.schema_mut().symbols.individual("Pizza-1"));
    kb.assert_ind("Rocky", &Concept::Fills(eat, vec![pizza]))
        .unwrap();
    let pizza_id = kb
        .ind_id(kb.schema().symbols.find_individual("Pizza-1").unwrap())
        .unwrap();
    assert!(
        kb.is_instance_of(pizza_id, junk).unwrap(),
        "the rule fired and propagated JUNK-FOOD to the filler"
    );

    kb.retract_rule("STUDENT", &consequent).unwrap();
    assert!(
        !kb.is_instance_of(pizza_id, junk).unwrap(),
        "the rule's consequences must be withdrawn with it"
    );
    // Rocky is still a STUDENT — recognition itself was never a rule
    // consequence.
    let rocky = kb
        .ind_id(kb.schema().symbols.find_individual("Rocky").unwrap())
        .unwrap();
    let student = kb.schema().symbols.find_concept("STUDENT").unwrap();
    assert!(kb.is_instance_of(rocky, student).unwrap());
    assert_eq!(kb.active_rules().count(), 0);
    kb.check_invariants().unwrap();
}

#[test]
fn retraction_errors_are_precise_and_harmless() {
    let mut kb = paper_kb();
    let enrolled = kb.schema().symbols.find_role("enrolled-at").unwrap();
    let person = kb.schema().symbols.find_concept("PERSON").unwrap();
    kb.create_ind("Rocky").unwrap();
    kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();

    // Retracting something never told is NotAsserted, and a no-op.
    let err = kb
        .retract_ind("Rocky", &Concept::AtLeast(3, enrolled))
        .unwrap_err();
    assert!(matches!(err, ClassicError::NotAsserted(_)), "{err}");
    let rocky = kb
        .ind_id(kb.schema().symbols.find_individual("Rocky").unwrap())
        .unwrap();
    assert!(kb.is_instance_of(rocky, person).unwrap());

    // Retracting a rule that does not exist is NoSuchRule.
    let eat = kb.schema().symbols.find_role("eat").unwrap();
    kb.assert_rule("STUDENT", Concept::AtLeast(1, enrolled))
        .unwrap();
    let err = kb
        .retract_rule("STUDENT", &Concept::AtLeast(1, eat))
        .unwrap_err();
    match &err {
        ClassicError::NoSuchRule {
            antecedent,
            suggestion,
        } => {
            assert_eq!(antecedent, "STUDENT");
            // STUDENT has a live rule with a *different* consequent; the
            // error says so instead of a bare "no such rule".
            assert!(
                suggestion.as_deref().is_some_and(|s| s.contains("STUDENT")),
                "suggestion: {suggestion:?}"
            );
        }
        other => panic!("expected NoSuchRule, got {other}"),
    }
    // A typo'd antecedent gets a nearest-match hint.
    let err = kb
        .retract_rule("STUDANT", &Concept::AtLeast(1, eat))
        .unwrap_err();
    match &err {
        ClassicError::NoSuchRule { suggestion, .. } => {
            assert!(
                suggestion.as_deref().is_some_and(|s| s.contains("STUDENT")),
                "suggestion: {suggestion:?}"
            );
        }
        other => panic!("expected NoSuchRule, got {other}"),
    }
    kb.check_invariants().unwrap();
}

#[test]
fn provenance_reflects_surviving_supports() {
    let mut kb = paper_kb();
    let driven = kb.schema().symbols.find_role("thing-driven").unwrap();
    let sports = kb.schema().symbols.find_concept("SPORTS-CAR").unwrap();
    kb.create_ind("Rocky").unwrap();
    let car = IndRef::Classic(kb.schema_mut().symbols.individual("Car-1"));
    kb.assert_ind("Rocky", &Concept::Fills(driven, vec![car]))
        .unwrap();
    kb.assert_ind("Rocky", &Concept::all(driven, Concept::Name(sports)))
        .unwrap();
    let car_id = kb
        .ind_id(kb.schema().symbols.find_individual("Car-1").unwrap())
        .unwrap();
    let lines = kb.explain_provenance(car_id);
    assert!(
        lines.iter().any(|l| l.contains("propagated from Rocky")),
        "ALL-propagation support recorded: {lines:?}"
    );

    kb.retract_ind("Rocky", &Concept::all(driven, Concept::Name(sports)))
        .unwrap();
    let lines = kb.explain_provenance(car_id);
    assert!(
        !lines.iter().any(|l| l.contains("propagated from Rocky")),
        "stale support must be gone after retraction: {lines:?}"
    );
}

// ---------------------------------------------------------------------------
// The oracle: retraction ≡ rebuild from the surviving told facts.
// ---------------------------------------------------------------------------

const N_ROLES: usize = 3;
const N_INDS: usize = 5;

fn oracle_schema() -> Kb {
    let mut kb = Kb::new();
    for i in 0..N_ROLES {
        kb.define_role(&format!("r{i}")).unwrap();
    }
    kb.define_concept("P0", Concept::primitive(Concept::thing(), "p0"))
        .unwrap();
    let p0 = Concept::Name(kb.schema().symbols.find_concept("P0").unwrap());
    let r0 = RoleId::from_index(0);
    let r1 = RoleId::from_index(1);
    kb.define_concept(
        "HAS-R0",
        Concept::and([p0.clone(), Concept::AtLeast(1, r0)]),
    )
    .unwrap();
    kb.define_concept(
        "BUSY",
        Concept::and([p0.clone(), Concept::AtLeast(2, r0), Concept::AtMost(6, r1)]),
    )
    .unwrap();
    // A rule so the oracle also exercises rule-support re-derivation.
    kb.assert_rule("HAS-R0", Concept::AtMost(5, r1)).unwrap();
    for i in 0..N_INDS {
        kb.create_ind(&format!("x{i}")).unwrap();
    }
    kb
}

/// One oracle operation. `CLOSE` is deliberately excluded: role closure is
/// epistemic (its meaning depends on the fillers known *when it is
/// uttered*), so "rebuild from surviving told facts" is not well-defined
/// for it — the same exclusion the order-independence property makes.
#[derive(Debug, Clone)]
enum Op {
    Prim(usize),
    AtLeast(usize, usize, u32),
    AtMost(usize, usize, u32),
    Fills(usize, usize, usize),
    All(usize, usize),
    /// Retract the `i % live.len()`-th surviving assertion.
    Retract(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => (0..N_INDS).prop_map(Op::Prim),
        1 => (0..N_INDS, 0..N_ROLES, 0u32..4).prop_map(|(i, r, n)| Op::AtLeast(i, r, n)),
        1 => (0..N_INDS, 0..N_ROLES, 0u32..4).prop_map(|(i, r, n)| Op::AtMost(i, r, n)),
        1 => (0..N_INDS, 0..N_ROLES, 0..N_INDS).prop_map(|(i, r, j)| Op::Fills(i, r, j)),
        1 => (0..N_INDS, 0..N_ROLES).prop_map(|(i, r)| Op::All(i, r)),
        // Retractions get extra weight so interesting interleavings occur.
        2 => (0usize..64).prop_map(Op::Retract),
    ]
}

fn op_concept(kb: &mut Kb, op: &Op) -> Option<(String, Concept)> {
    let p0 = |kb: &mut Kb| Concept::Name(kb.schema_mut().symbols.concept("P0"));
    match op {
        Op::Prim(i) => Some((format!("x{i}"), p0(kb))),
        Op::AtLeast(i, r, n) => Some((
            format!("x{i}"),
            Concept::AtLeast(*n, RoleId::from_index(*r)),
        )),
        Op::AtMost(i, r, n) => Some((format!("x{i}"), Concept::AtMost(*n, RoleId::from_index(*r)))),
        Op::Fills(i, r, j) => {
            let f = IndRef::Classic(kb.schema_mut().symbols.individual(&format!("x{j}")));
            Some((
                format!("x{i}"),
                Concept::Fills(RoleId::from_index(*r), vec![f]),
            ))
        }
        Op::All(i, r) => {
            let inner = p0(kb);
            Some((format!("x{i}"), Concept::all(RoleId::from_index(*r), inner)))
        }
        Op::Retract(_) => None,
    }
}

/// A complete, comparable fingerprint of database state.
fn fingerprint(kb: &Kb) -> Vec<(String, NormalForm, BTreeSet<usize>)> {
    kb.ind_ids()
        .map(|id| {
            let ind = kb.ind(id);
            (
                kb.schema().symbols.individual_name(ind.name).to_owned(),
                ind.derived.clone(),
                ind.msc.iter().map(|n| n.index()).collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// THE oracle: after any interleaving of assertions and retractions,
    /// the incrementally-maintained database is indistinguishable from one
    /// rebuilt from scratch out of the surviving told facts.
    #[test]
    fn retraction_equals_rebuild_from_surviving_told_facts(
        ops in proptest::collection::vec(op_strategy(), 1..28)
    ) {
        let mut kb = oracle_schema();
        // The shadow model: told facts accepted and not yet retracted, in
        // arrival order.
        let mut live: Vec<(String, Concept)> = Vec::new();
        for op in &ops {
            match op_concept(&mut kb, op) {
                Some((name, c)) => {
                    if kb.assert_ind(&name, &c).is_ok() {
                        live.push((name, c));
                    }
                }
                None => {
                    let Op::Retract(pick) = op else { unreachable!() };
                    if live.is_empty() {
                        continue;
                    }
                    let ix = pick % live.len();
                    let (name, c) = live.remove(ix);
                    kb.retract_ind(&name, &c)
                        .expect("retracting a surviving told fact succeeds");
                }
            }
            kb.check_invariants().expect("invariants hold after every op");
        }
        // Rebuild from scratch: same schema, surviving facts in original
        // order. Without CLOSE the told set is monotone, so a subset of a
        // jointly-accepted set is always accepted.
        let mut rebuilt = oracle_schema();
        for (name, c) in &live {
            rebuilt
                .assert_ind(name, c)
                .expect("surviving told set is jointly consistent");
        }
        prop_assert_eq!(fingerprint(&kb), fingerprint(&rebuilt));
        // And the two databases answer queries identically.
        let q = Concept::and([
            Concept::Name(kb.schema().symbols.find_concept("P0").unwrap()),
            Concept::AtLeast(1, RoleId::from_index(0)),
        ]);
        let a = classic_query::Query::concept(q.clone())
            .run(&mut kb)
            .unwrap()
            .into_known()
            .unwrap()
            .known;
        let b = classic_query::Query::concept(q)
            .run(&mut rebuilt)
            .unwrap()
            .into_known()
            .unwrap()
            .known;
        prop_assert_eq!(a, b);
    }

    /// Provenance is part of the oracle too: after any interleaving, the
    /// surviving support structure — as rendered by `explain_provenance`
    /// — must be exactly what a rebuild from the surviving told facts
    /// produces. Lines are compared as sets per individual: support
    /// *discovery order* is an implementation detail, the supports
    /// themselves are not.
    #[test]
    fn provenance_after_retraction_equals_rebuild_provenance(
        ops in proptest::collection::vec(op_strategy(), 1..28)
    ) {
        let mut kb = oracle_schema();
        let mut live: Vec<(String, Concept)> = Vec::new();
        for op in &ops {
            match op_concept(&mut kb, op) {
                Some((name, c)) => {
                    if kb.assert_ind(&name, &c).is_ok() {
                        live.push((name, c));
                    }
                }
                None => {
                    let Op::Retract(pick) = op else { unreachable!() };
                    if live.is_empty() {
                        continue;
                    }
                    let ix = pick % live.len();
                    let (name, c) = live.remove(ix);
                    kb.retract_ind(&name, &c)
                        .expect("retracting a surviving told fact succeeds");
                }
            }
        }
        let mut rebuilt = oracle_schema();
        for (name, c) in &live {
            rebuilt
                .assert_ind(name, c)
                .expect("surviving told set is jointly consistent");
        }
        let provenance = |kb: &Kb| -> Vec<(String, BTreeSet<String>)> {
            kb.ind_ids()
                .map(|id| {
                    (
                        kb.schema().symbols.individual_name(kb.ind(id).name).to_owned(),
                        kb.explain_provenance(id).into_iter().collect(),
                    )
                })
                .collect()
        };
        prop_assert_eq!(provenance(&kb), provenance(&rebuilt));
    }

    /// Retracting everything returns to a blank (schema-only) database.
    #[test]
    fn retracting_everything_restores_the_blank_state(
        ops in proptest::collection::vec(op_strategy(), 1..16)
    ) {
        let mut kb = oracle_schema();
        let blank = fingerprint(&kb);
        let mut live: Vec<(String, Concept)> = Vec::new();
        for op in &ops {
            if let Some((name, c)) = op_concept(&mut kb, op) {
                if kb.assert_ind(&name, &c).is_ok() {
                    live.push((name, c));
                }
            }
        }
        // Retract in reverse order of arrival.
        for (name, c) in live.iter().rev() {
            kb.retract_ind(name, c).expect("told fact retracts");
        }
        prop_assert_eq!(fingerprint(&kb), blank);
        prop_assert_eq!(kb.deps().len(), 0, "no dangling dependency records");
        kb.check_invariants().expect("invariants hold");
    }
}

#[test]
fn retract_ind_is_incremental_not_a_rebuild() {
    // A crude but load-bearing check that the tentpole actually works
    // incrementally: retracting one fact about one isolated individual in
    // a large database must not touch the others.
    let mut kb = paper_kb();
    let person = kb.schema().symbols.find_concept("PERSON").unwrap();
    let enrolled = kb.schema().symbols.find_role("enrolled-at").unwrap();
    for i in 0..200 {
        let name = format!("S{i}");
        kb.create_ind(&name).unwrap();
        kb.assert_ind(&name, &Concept::Name(person)).unwrap();
        kb.assert_ind(&name, &Concept::AtLeast(1, enrolled))
            .unwrap();
    }
    let report = kb
        .retract_ind("S0", &Concept::AtLeast(1, enrolled))
        .unwrap();
    assert!(
        report.reset <= 2,
        "only S0's cluster re-derived, not the whole database (reset={})",
        report.reset
    );
    kb.check_invariants().unwrap();
}
