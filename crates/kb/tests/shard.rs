//! Differential tests: the sharded propagation engine against the
//! sequential oracle.
//!
//! Every scenario builds two KBs with identical schemas, pins one to the
//! sequential engine (`set_propagation_threads(1)`) and the other to the
//! sharded engine (4 shards, with the parallel threshold forced down so
//! even modest fixpoints exercise the epoch/barrier machinery), applies
//! the identical operation sequence to both, and asserts the resulting
//! *logical states* are equal: same individuals by name, same derived
//! normal forms, same recognized concepts and most-specific frontiers,
//! same fired rules. Step counts and arena internals may differ between
//! engines; the state may not.
//!
//! These tests run under the CI ThreadSanitizer leg (`-p classic-kb`),
//! which is what actually exercises the scoped shard workers for data
//! races — on a single-core runner the sharded code path still runs, just
//! with little true overlap.

use classic_core::desc::{Concept, IndRef};
use classic_kb::Kb;

/// Clone-free logical-state equality, keyed by individual name.
fn assert_same_state(seq: &Kb, shd: &Kb, context: &str) {
    assert_eq!(
        seq.ind_count(),
        shd.ind_count(),
        "{context}: individual counts differ"
    );
    for id in seq.ind_ids() {
        let a = seq.ind(id);
        let name = seq.schema().symbols.individual_name(a.name).to_owned();
        let bname = shd
            .schema()
            .symbols
            .find_individual(&name)
            .unwrap_or_else(|| panic!("{context}: {name} missing from sharded KB"));
        let b = shd.ind(shd.ind_id(bname).expect("created"));
        assert_eq!(
            a.derived, b.derived,
            "{context}: derived differs for {name}"
        );
        assert_eq!(
            a.instance_nodes, b.instance_nodes,
            "{context}: recognition differs for {name}"
        );
        assert_eq!(a.msc, b.msc, "{context}: msc differs for {name}");
        assert_eq!(
            a.fired_rules, b.fired_rules,
            "{context}: fired rules differ for {name}"
        );
        assert_eq!(a.told, b.told, "{context}: told facts differ for {name}");
    }
    seq.check_invariants().expect("sequential invariants");
    shd.check_invariants().expect("sharded invariants");
}

/// A pair of KBs built by the same schema closure, one per engine.
fn engine_pair(schema: impl Fn(&mut Kb)) -> (Kb, Kb) {
    let mut seq = Kb::new();
    seq.set_propagation_threads(1);
    schema(&mut seq);
    let mut shd = Kb::new();
    shd.set_propagation_threads(4);
    shd.set_propagation_min_batch(2);
    schema(&mut shd);
    (seq, shd)
}

fn wide_schema(kb: &mut Kb) {
    kb.define_role("member").unwrap();
    kb.define_role("backup").unwrap();
    kb.define_concept("TRACKED", Concept::primitive(Concept::thing(), "tracked"))
        .unwrap();
    let member = kb.schema().symbols.find_role("member").unwrap();
    kb.define_concept("HUB", Concept::AtLeast(3, member))
        .unwrap();
}

#[test]
fn wide_all_cascade_matches_sequential() {
    let (mut seq, mut shd) = engine_pair(wide_schema);
    for kb in [&mut seq, &mut shd] {
        let member = kb.schema().symbols.find_role("member").unwrap();
        let tracked = kb.schema().symbols.find_concept("TRACKED").unwrap();
        kb.create_ind("Hub").unwrap();
        // 120 fillers so the worklist goes wide across the arena.
        let fillers: Vec<IndRef> = (0..120)
            .map(|i| IndRef::Classic(kb.schema_mut().symbols.individual(&format!("m{i}"))))
            .collect();
        kb.assert_ind("Hub", &Concept::Fills(member, fillers))
            .unwrap();
        // The ALL restriction now propagates TRACKED onto all 120.
        kb.assert_ind(
            "Hub",
            &Concept::All(member, Box::new(Concept::Name(tracked))),
        )
        .unwrap();
    }
    assert_same_state(&seq, &shd, "wide ALL cascade");
    let tracked = seq.schema().symbols.find_concept("TRACKED").unwrap();
    assert_eq!(seq.instances_of(tracked).unwrap().len(), 120);
}

#[test]
fn rule_cascade_matches_sequential() {
    let (mut seq, mut shd) = engine_pair(|kb| {
        wide_schema(kb);
        kb.define_concept("VIP", Concept::primitive(Concept::thing(), "vip"))
            .unwrap();
        let vip = kb.schema().symbols.find_concept("VIP").unwrap();
        // Every TRACKED individual becomes a VIP via forward chaining.
        kb.assert_rule("TRACKED", Concept::Name(vip)).unwrap();
    });
    for kb in [&mut seq, &mut shd] {
        let member = kb.schema().symbols.find_role("member").unwrap();
        let tracked = kb.schema().symbols.find_concept("TRACKED").unwrap();
        kb.create_ind("Hub").unwrap();
        let fillers: Vec<IndRef> = (0..80)
            .map(|i| IndRef::Classic(kb.schema_mut().symbols.individual(&format!("w{i}"))))
            .collect();
        kb.assert_ind("Hub", &Concept::Fills(member, fillers))
            .unwrap();
        kb.assert_ind(
            "Hub",
            &Concept::All(member, Box::new(Concept::Name(tracked))),
        )
        .unwrap();
    }
    assert_same_state(&seq, &shd, "rule cascade");
    let vip = seq.schema().symbols.find_concept("VIP").unwrap();
    assert_eq!(seq.instances_of(vip).unwrap().len(), 80);
}

#[test]
fn same_as_derivations_match_sequential() {
    let (mut seq, mut shd) = engine_pair(|kb| {
        kb.define_attribute("owner").unwrap();
        kb.define_attribute("driver").unwrap();
        kb.define_role("member").unwrap();
    });
    for kb in [&mut seq, &mut shd] {
        let owner = kb.schema().symbols.find_role("owner").unwrap();
        let driver = kb.schema().symbols.find_role("driver").unwrap();
        let member = kb.schema().symbols.find_role("member").unwrap();
        // Widen the worklist with unrelated individuals so the SAME-AS
        // epoch itself crosses the parallel threshold.
        kb.create_ind("Pad").unwrap();
        let pad: Vec<IndRef> = (0..40)
            .map(|i| IndRef::Classic(kb.schema_mut().symbols.individual(&format!("p{i}"))))
            .collect();
        kb.assert_ind("Pad", &Concept::Fills(member, pad)).unwrap();
        for i in 0..20 {
            let name = format!("car{i}");
            kb.create_ind(&name).unwrap();
            let olga = kb.schema_mut().symbols.individual(&format!("olga{i}"));
            kb.assert_ind(&name, &Concept::Fills(owner, vec![IndRef::Classic(olga)]))
                .unwrap();
            // SAME-AS((owner)(driver)): the driver must be the owner.
            kb.assert_ind(&name, &Concept::SameAs(vec![owner], vec![driver]))
                .unwrap();
        }
    }
    assert_same_state(&seq, &shd, "SAME-AS derivation");
    // Spot-check the derivation actually happened.
    let driver = seq.schema().symbols.find_role("driver").unwrap();
    let car0 = seq
        .ind_id(seq.schema().symbols.find_individual("car0").unwrap())
        .unwrap();
    assert_eq!(seq.ind(car0).fillers(driver).len(), 1);
}

#[test]
fn rejected_updates_roll_back_identically() {
    let (mut seq, mut shd) = engine_pair(|kb| {
        wide_schema(kb);
        kb.define_concept("LONER", Concept::primitive(Concept::thing(), "loner"))
            .unwrap();
    });
    for kb in [&mut seq, &mut shd] {
        let member = kb.schema().symbols.find_role("member").unwrap();
        kb.create_ind("Hub").unwrap();
        let fillers: Vec<IndRef> = (0..50)
            .map(|i| IndRef::Classic(kb.schema_mut().symbols.individual(&format!("x{i}"))))
            .collect();
        kb.assert_ind("Hub", &Concept::Fills(member, fillers))
            .unwrap();
        // x0 already needs ≥2 members, so the ALL cascade below — which
        // pushes (AT-MOST 1 member) onto every filler — must clash on it
        // partway through a wide epoch and roll the whole update back.
        kb.assert_ind("x0", &Concept::AtLeast(2, member)).unwrap();
        let err = kb.assert_ind(
            "Hub",
            &Concept::All(member, Box::new(Concept::AtMost(1, member))),
        );
        assert!(err.is_err(), "cascade onto x0 must clash");
    }
    assert_same_state(&seq, &shd, "rejected update rollback");
}

#[test]
fn retraction_rederivation_matches_sequential() {
    let (mut seq, mut shd) = engine_pair(wide_schema);
    for kb in [&mut seq, &mut shd] {
        let member = kb.schema().symbols.find_role("member").unwrap();
        let tracked = kb.schema().symbols.find_concept("TRACKED").unwrap();
        kb.create_ind("Hub").unwrap();
        let fillers: Vec<IndRef> = (0..60)
            .map(|i| IndRef::Classic(kb.schema_mut().symbols.individual(&format!("r{i}"))))
            .collect();
        kb.assert_ind("Hub", &Concept::Fills(member, fillers))
            .unwrap();
        let all = Concept::All(member, Box::new(Concept::Name(tracked)));
        kb.assert_ind("Hub", &all).unwrap();
        // Retract the ALL: every filler loses TRACKED via re-derivation,
        // which seeds the widest worklist in the engine.
        kb.retract_ind("Hub", &all).unwrap();
    }
    assert_same_state(&seq, &shd, "retraction re-derivation");
    let tracked = seq.schema().symbols.find_concept("TRACKED").unwrap();
    assert_eq!(seq.instances_of(tracked).unwrap().len(), 0);
}

#[test]
fn sharded_runs_are_deterministic_across_repeats() {
    let build = || {
        let mut kb = Kb::new();
        kb.set_propagation_threads(4);
        kb.set_propagation_min_batch(2);
        wide_schema(&mut kb);
        let member = kb.schema().symbols.find_role("member").unwrap();
        let tracked = kb.schema().symbols.find_concept("TRACKED").unwrap();
        kb.create_ind("Hub").unwrap();
        let fillers: Vec<IndRef> = (0..100)
            .map(|i| IndRef::Classic(kb.schema_mut().symbols.individual(&format!("d{i}"))))
            .collect();
        kb.assert_ind("Hub", &Concept::Fills(member, fillers))
            .unwrap();
        kb.assert_ind(
            "Hub",
            &Concept::All(member, Box::new(Concept::Name(tracked))),
        )
        .unwrap();
        kb
    };
    let first = build();
    for round in 0..3 {
        let again = build();
        // Determinism is stronger than logical equality: the arena
        // creation order must match run to run, because effects apply in
        // canonical drain order, never scheduling order.
        let names_first: Vec<String> = first
            .ind_ids()
            .map(|i| {
                first
                    .schema()
                    .symbols
                    .individual_name(first.ind(i).name)
                    .to_owned()
            })
            .collect();
        let names_again: Vec<String> = again
            .ind_ids()
            .map(|i| {
                again
                    .schema()
                    .symbols
                    .individual_name(again.ind(i).name)
                    .to_owned()
            })
            .collect();
        assert_eq!(
            names_first, names_again,
            "arena order varied on round {round}"
        );
        assert_same_state(&first, &again, "repeat determinism");
    }
}

#[test]
fn auto_thread_default_resolves_positive() {
    let kb = Kb::new();
    assert!(kb.propagation_threads() >= 1);
}
