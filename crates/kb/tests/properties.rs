//! Property-based tests for the knowledge-base invariants.
//!
//! Random sequences of `assert-ind` updates are driven against a fixed
//! schema; whatever the sequence, the paper's guarantees must hold:
//!
//! * **atomicity** (§3.1/§3.4): a rejected update leaves the database
//!   exactly as it was — derived descriptions, realizations, extensions;
//! * **monotonicity** (§5): accepted updates never shrink an individual's
//!   recognized concepts ("there is no 'removal'");
//! * **consistency** of the extension index with per-individual
//!   realizations;
//! * **answer-mode ordering** (§3.5.3): known answers ⊆ possible answers,
//!   and classified retrieval agrees exactly with the naive scan.

use classic_core::desc::{Concept, IndRef};
use classic_core::normal::NormalForm;
use classic_core::symbol::RoleId;
use classic_kb::{IndId, Kb};
use proptest::prelude::*;
use std::collections::BTreeSet;

const N_ROLES: usize = 3;
const N_INDS: usize = 5;

fn schema_kb() -> Kb {
    let mut kb = Kb::new();
    for i in 0..N_ROLES {
        kb.define_role(&format!("r{i}")).unwrap();
    }
    kb.define_concept("P0", Concept::primitive(Concept::thing(), "p0"))
        .unwrap();
    let p0 = Concept::Name(kb.schema().symbols.find_concept("P0").unwrap());
    kb.define_concept(
        "D-LEFT",
        Concept::disjoint_primitive(Concept::thing(), "side", "left"),
    )
    .unwrap();
    kb.define_concept(
        "D-RIGHT",
        Concept::disjoint_primitive(Concept::thing(), "side", "right"),
    )
    .unwrap();
    let r0 = RoleId::from_index(0);
    let r1 = RoleId::from_index(1);
    kb.define_concept(
        "HAS-R0",
        Concept::and([p0.clone(), Concept::AtLeast(1, r0)]),
    )
    .unwrap();
    kb.define_concept(
        "BUSY",
        Concept::and([p0, Concept::AtLeast(2, r0), Concept::AtMost(6, r1)]),
    )
    .unwrap();
    for i in 0..N_INDS {
        kb.create_ind(&format!("x{i}")).unwrap();
    }
    kb
}

/// One generated update step: (target individual, description).
#[derive(Debug, Clone)]
enum Step {
    Prim(usize, &'static str),
    AtLeast(usize, usize, u32),
    AtMost(usize, usize, u32),
    Fills(usize, usize, usize),
    Close(usize, usize),
    All(usize, usize, &'static str),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (
            0..N_INDS,
            prop_oneof![Just("P0"), Just("D-LEFT"), Just("D-RIGHT")]
        )
            .prop_map(|(i, n)| Step::Prim(i, n)),
        (0..N_INDS, 0..N_ROLES, 0u32..4).prop_map(|(i, r, n)| Step::AtLeast(i, r, n)),
        (0..N_INDS, 0..N_ROLES, 0u32..4).prop_map(|(i, r, n)| Step::AtMost(i, r, n)),
        (0..N_INDS, 0..N_ROLES, 0..N_INDS).prop_map(|(i, r, j)| Step::Fills(i, r, j)),
        (0..N_INDS, 0..N_ROLES).prop_map(|(i, r)| Step::Close(i, r)),
        (
            0..N_INDS,
            0..N_ROLES,
            prop_oneof![Just("P0"), Just("D-LEFT")]
        )
            .prop_map(|(i, r, n)| Step::All(i, r, n)),
    ]
}

fn step_concept(kb: &mut Kb, step: &Step) -> (String, Concept) {
    let name_of = |kb: &mut Kb, j: usize| {
        IndRef::Classic(kb.schema_mut().symbols.individual(&format!("x{j}")))
    };
    let cname = |kb: &mut Kb, n: &str| Concept::Name(kb.schema_mut().symbols.concept(n));
    match step {
        Step::Prim(i, n) => (format!("x{i}"), cname(kb, n)),
        Step::AtLeast(i, r, n) => (
            format!("x{i}"),
            Concept::AtLeast(*n, RoleId::from_index(*r)),
        ),
        Step::AtMost(i, r, n) => (format!("x{i}"), Concept::AtMost(*n, RoleId::from_index(*r))),
        Step::Fills(i, r, j) => {
            let f = name_of(kb, *j);
            (
                format!("x{i}"),
                Concept::Fills(RoleId::from_index(*r), vec![f]),
            )
        }
        Step::Close(i, r) => (format!("x{i}"), Concept::Close(RoleId::from_index(*r))),
        Step::All(i, r, n) => {
            let inner = cname(kb, n);
            (format!("x{i}"), Concept::all(RoleId::from_index(*r), inner))
        }
    }
}

/// A complete, comparable fingerprint of database state.
fn fingerprint(kb: &Kb) -> Vec<(String, NormalForm, BTreeSet<usize>)> {
    kb.ind_ids()
        .map(|id| {
            let ind = kb.ind(id);
            (
                kb.schema().symbols.individual_name(ind.name).to_owned(),
                ind.derived.clone(),
                ind.msc.iter().map(|n| n.index()).collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn rejected_updates_roll_back_completely(
        steps in proptest::collection::vec(step_strategy(), 1..24)
    ) {
        let mut kb = schema_kb();
        for step in &steps {
            let (name, c) = step_concept(&mut kb, step);
            let before = fingerprint(&kb);
            let count_before = kb.ind_count();
            match kb.assert_ind(&name, &c) {
                Ok(_) => {} // accepted; nothing to check here
                Err(_) => {
                    // Atomicity: identical state, including no leaked
                    // implicitly-created individuals.
                    prop_assert_eq!(kb.ind_count(), count_before);
                    prop_assert_eq!(fingerprint(&kb), before);
                }
            }
        }
    }

    #[test]
    fn accepted_updates_are_monotone(
        steps in proptest::collection::vec(step_strategy(), 1..24)
    ) {
        let mut kb = schema_kb();
        for step in &steps {
            let (name, c) = step_concept(&mut kb, step);
            let memberships_before: Vec<BTreeSet<usize>> = kb
                .ind_ids()
                .map(|id| kb.ind(id).instance_nodes.iter().map(|n| n.index()).collect())
                .collect();
            if kb.assert_ind(&name, &c).is_ok() {
                for (ix, before) in memberships_before.iter().enumerate() {
                    let after: BTreeSet<usize> = kb
                        .ind(IndId::from_index(ix))
                        .instance_nodes
                        .iter()
                        .map(|n| n.index())
                        .collect();
                    prop_assert!(
                        before.is_subset(&after),
                        "individual {ix} lost memberships: {before:?} ⊄ {after:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn extension_index_is_consistent(
        steps in proptest::collection::vec(step_strategy(), 1..24)
    ) {
        let mut kb = schema_kb();
        for step in &steps {
            let (name, c) = step_concept(&mut kb, step);
            let _ = kb.assert_ind(&name, &c);
        }
        // The public invariant checker agrees with the hand-rolled checks
        // below.
        kb.check_invariants().expect("invariants hold");
        // Every individual appears in the instance set of every node it is
        // recognized under, and conversely.
        for id in kb.ind_ids() {
            for &node in &kb.ind(id).instance_nodes {
                prop_assert!(
                    kb.instances_of_node(node).contains(&id),
                    "extension index missing {id:?} at node {node:?}"
                );
            }
        }
        for node in kb.taxonomy().interior_nodes() {
            for id in kb.instances_of_node(node) {
                prop_assert!(
                    kb.ind(id).instance_nodes.contains(&node),
                    "extension index has phantom {id:?} at node {node:?}"
                );
            }
        }
    }

    #[test]
    fn known_answers_subset_of_possible_and_scan_agrees(
        steps in proptest::collection::vec(step_strategy(), 1..16),
        q_role in 0..N_ROLES,
        q_n in 0u32..3,
    ) {
        let mut kb = schema_kb();
        for step in &steps {
            let (name, c) = step_concept(&mut kb, step);
            let _ = kb.assert_ind(&name, &c);
        }
        let p0 = Concept::Name(kb.schema().symbols.find_concept("P0").unwrap());
        let q = Concept::and([p0, Concept::AtLeast(q_n, RoleId::from_index(q_role))]);
        let known = classic_query::Query::concept(q.clone())
            .run(&mut kb)
            .unwrap()
            .into_known()
            .unwrap();
        let naive = classic_query::retrieve_naive(&mut kb, &q).unwrap();
        let mut a = known.known.clone();
        let mut b = naive.known.clone();
        a.sort();
        b.sort();
        prop_assert_eq!(&a, &b, "classified and naive retrieval disagree");
        let possible = classic_query::Query::concept(q.clone())
            .possible()
            .run(&mut kb)
            .unwrap()
            .into_possible()
            .unwrap();
        for id in &a {
            prop_assert!(possible.contains(id), "known answer not possible");
        }
        prop_assert!(known.stats.tested <= naive.stats.tested);
    }

    #[test]
    fn speculative_and_rejected_updates_leave_invariants_clean(
        steps in proptest::collection::vec(step_strategy(), 1..20)
    ) {
        let mut kb = schema_kb();
        for step in &steps {
            let (name, c) = step_concept(&mut kb, step);
            // A hypothetical is always rolled back, accepted or not.
            let before = fingerprint(&kb);
            let _ = kb.what_if(&name, &c);
            prop_assert_eq!(fingerprint(&kb), before, "what_if mutated state");
            kb.check_invariants().expect("invariants after what_if");
            // The real update; rejected ones must also leave the
            // invariants intact (not just the fingerprint).
            let _ = kb.assert_ind(&name, &c);
            kb.check_invariants().expect("invariants after assert");
            // Retracting a never-told fact is rejected and harmless.
            let bogus = Concept::AtLeast(9, RoleId::from_index(0));
            let before = fingerprint(&kb);
            prop_assert!(kb.retract_ind(&name, &bogus).is_err());
            prop_assert_eq!(fingerprint(&kb), before, "failed retraction mutated state");
            kb.check_invariants().expect("invariants after failed retraction");
        }
    }

    #[test]
    fn derived_descriptions_stay_coherent(
        steps in proptest::collection::vec(step_strategy(), 1..24)
    ) {
        let mut kb = schema_kb();
        for step in &steps {
            let (name, c) = step_concept(&mut kb, step);
            let _ = kb.assert_ind(&name, &c);
            // Invariant: a committed database never contains an
            // incoherent individual (inconsistencies are rejected).
            for id in kb.ind_ids() {
                prop_assert!(
                    !kb.ind(id).derived.is_incoherent(),
                    "committed state contains ⊥ at {id:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Confluence: the completion is a fixpoint of monotone operators, so
    /// a jointly-consistent set of *declarative* assertions yields the
    /// same final database whatever order it arrives in — the property
    /// that makes the paper's "incremental model of information
    /// acquisition" (§6) coherent.
    ///
    /// `CLOSE` is deliberately excluded: it is epistemic ("no fillers
    /// beyond those already known" — §3.2), so its meaning depends on
    /// *when* it is uttered, and order-dependence is correct behavior for
    /// it (proptest found exactly that counterexample when it was
    /// included). Order can also change *which* updates are accepted when
    /// the set is inconsistent, so the property is conditioned on the
    /// first order accepting everything.
    #[test]
    fn consistent_assertion_sets_are_order_independent(
        raw_steps in proptest::collection::vec(step_strategy(), 1..12),
        rotation in 0usize..12,
    ) {
        let steps: Vec<Step> = raw_steps
            .into_iter()
            .filter(|s| !matches!(s, Step::Close(..)))
            .collect();
        prop_assume!(!steps.is_empty());
        let mut kb1 = schema_kb();
        let mut all_accepted = true;
        for step in &steps {
            let (name, c) = step_concept(&mut kb1, step);
            if kb1.assert_ind(&name, &c).is_err() {
                all_accepted = false;
                break;
            }
        }
        prop_assume!(all_accepted);
        // Apply the same facts in a rotated order.
        let mut reordered = steps.clone();
        let k = rotation % reordered.len();
        reordered.rotate_left(k);
        let mut kb2 = schema_kb();
        for step in &reordered {
            let (name, c) = step_concept(&mut kb2, step);
            prop_assert!(
                kb2.assert_ind(&name, &c).is_ok(),
                "jointly-consistent set rejected under reordering"
            );
        }
        prop_assert_eq!(fingerprint(&kb1), fingerprint(&kb2));
        kb2.check_invariants().expect("invariants hold");
    }
}
