//! Knowledge-base tests tracking the paper's §3 examples line by line:
//! Rocky, RICH-KID, STUDENT recognition, closure deductions, co-reference
//! propagation, rules, and integrity checking.

use classic_core::aspect::{Aspect, AspectKind};
use classic_core::desc::{Concept, IndRef};
use classic_core::error::{Clash, ClassicError};
use classic_core::schema::TestArg;
use classic_core::HostValue;
use classic_kb::Kb;

/// Shared schema from the paper: STUDENT, SPORTS-CAR, RICH-KID etc.
fn paper_kb() -> Kb {
    let mut kb = Kb::new();
    kb.define_role("thing-driven").unwrap();
    kb.define_role("enrolled-at").unwrap();
    kb.define_role("maker").unwrap();
    kb.define_role("eat").unwrap();
    kb.define_role("likes").unwrap();
    kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
        .unwrap();
    kb.define_concept("CAR", Concept::primitive(Concept::thing(), "car"))
        .unwrap();
    kb.define_concept(
        "EXPENSIVE-THING",
        Concept::primitive(Concept::thing(), "expensive"),
    )
    .unwrap();
    let car = Concept::Name(kb.schema_mut().symbols.concept("CAR"));
    let exp = Concept::Name(kb.schema_mut().symbols.concept("EXPENSIVE-THING"));
    kb.define_concept(
        "SPORTS-CAR",
        Concept::primitive(Concept::and([car, exp]), "sports-car"),
    )
    .unwrap();
    // STUDENT is *defined* (non-primitive): a person enrolled somewhere.
    let person = Concept::Name(kb.schema_mut().symbols.concept("PERSON"));
    let enrolled = kb.schema_mut().symbols.find_role("enrolled-at").unwrap();
    kb.define_concept(
        "STUDENT",
        Concept::and([person, Concept::AtLeast(1, enrolled)]),
    )
    .unwrap();
    // RICH-KID: a student driving at least 2 things, all sports cars.
    let student = Concept::Name(kb.schema_mut().symbols.concept("STUDENT"));
    let driven = kb.schema_mut().symbols.find_role("thing-driven").unwrap();
    let sports = Concept::Name(kb.schema_mut().symbols.concept("SPORTS-CAR"));
    kb.define_concept(
        "RICH-KID",
        Concept::and([
            student,
            Concept::all(driven, sports),
            Concept::AtLeast(2, driven),
        ]),
    )
    .unwrap();
    kb
}

fn cname(kb: &mut Kb, n: &str) -> classic_core::ConceptName {
    kb.schema_mut().symbols.concept(n)
}

fn ind_ref(kb: &mut Kb, n: &str) -> IndRef {
    IndRef::Classic(kb.schema_mut().symbols.individual(n))
}

#[test]
fn create_ind_establishes_bare_identity() {
    let mut kb = paper_kb();
    let rocky = kb.create_ind("Rocky").unwrap();
    assert!(kb.ind(rocky).told.is_empty());
    assert!(kb.most_specific_concepts(rocky).is_empty());
    // Creating the same name again is rejected.
    assert!(matches!(
        kb.create_ind("Rocky"),
        Err(ClassicError::IndividualExists(_))
    ));
}

#[test]
fn student_recognition_from_enrollment() {
    // §3.3: "the moment we learn that Rocky (previously asserted to be a
    // PERSON) is enrolled at some school we implicitly recognize Rocky as
    // a STUDENT — it is not necessary to explicitly assert this fact."
    let mut kb = paper_kb();
    let rocky = kb.create_ind("Rocky").unwrap();
    let person = cname(&mut kb, "PERSON");
    let student = cname(&mut kb, "STUDENT");
    kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();
    assert!(!kb.is_instance_of(rocky, student).unwrap());
    let enrolled = kb.schema_mut().symbols.find_role("enrolled-at").unwrap();
    kb.assert_ind("Rocky", &Concept::AtLeast(1, enrolled))
        .unwrap();
    assert!(kb.is_instance_of(rocky, student).unwrap());
    // And the instances query reflects it.
    assert!(kb.instances_of(student).unwrap().contains(&rocky));
}

#[test]
fn rich_kid_recognized_from_conjuncts() {
    // §3.2: asserting the three conjuncts separately lets CLASSIC "answer
    // affirmatively a query about Rocky's being a RICH-KID".
    let mut kb = paper_kb();
    let rocky = kb.create_ind("Rocky").unwrap();
    let student = cname(&mut kb, "STUDENT");
    let sports = cname(&mut kb, "SPORTS-CAR");
    let rich = cname(&mut kb, "RICH-KID");
    let driven = kb.schema_mut().symbols.find_role("thing-driven").unwrap();
    kb.assert_ind("Rocky", &Concept::Name(student)).unwrap();
    kb.assert_ind("Rocky", &Concept::all(driven, Concept::Name(sports)))
        .unwrap();
    assert!(!kb.is_instance_of(rocky, rich).unwrap());
    kb.assert_ind("Rocky", &Concept::AtLeast(2, driven))
        .unwrap();
    assert!(kb.is_instance_of(rocky, rich).unwrap());
}

#[test]
fn asserting_composed_concept_equals_conjunct_assertions() {
    // §3.2: asserting RICH-KID is "the equivalent of" the three conjunct
    // assertions.
    let mut kb = paper_kb();
    let rocky = kb.create_ind("Rocky").unwrap();
    let rich = cname(&mut kb, "RICH-KID");
    kb.assert_ind("Rocky", &Concept::Name(rich)).unwrap();
    let student = cname(&mut kb, "STUDENT");
    assert!(kb.is_instance_of(rocky, student).unwrap());
    let driven = kb.schema_mut().symbols.find_role("thing-driven").unwrap();
    match kb.ind_aspect(rocky, AspectKind::AtLeast, Some(driven)) {
        Aspect::Bound(n) => assert!(n >= 2),
        other => panic!("expected bound, got {other:?}"),
    }
}

#[test]
fn fills_and_all_propagate_to_fillers() {
    // §3.3-style propagation: Rocky drives only sports cars and drives
    // Volvo-17, so Volvo-17 is recognized as a SPORTS-CAR (hence a CAR).
    let mut kb = paper_kb();
    kb.create_ind("Rocky").unwrap();
    let driven = kb.schema_mut().symbols.find_role("thing-driven").unwrap();
    let sports = cname(&mut kb, "SPORTS-CAR");
    let volvo = ind_ref(&mut kb, "Volvo-17");
    kb.assert_ind("Rocky", &Concept::all(driven, Concept::Name(sports)))
        .unwrap();
    kb.assert_ind("Rocky", &Concept::Fills(driven, vec![volvo]))
        .unwrap();
    let volvo_id = kb
        .ind_id(kb.schema().symbols.find_individual("Volvo-17").unwrap())
        .unwrap();
    let car = cname(&mut kb, "CAR");
    assert!(kb.is_instance_of(volvo_id, sports).unwrap());
    assert!(kb.is_instance_of(volvo_id, car).unwrap());
}

#[test]
fn close_applies_to_currently_known_fillers() {
    // §3.2: CLOSE "closes the thing-driven role so that no further fillers
    // can be added".
    let mut kb = paper_kb();
    kb.create_ind("Rocky").unwrap();
    let driven = kb.schema_mut().symbols.find_role("thing-driven").unwrap();
    let volvo = ind_ref(&mut kb, "Volvo-17");
    kb.assert_ind("Rocky", &Concept::Fills(driven, vec![volvo]))
        .unwrap();
    kb.assert_ind("Rocky", &Concept::Close(driven)).unwrap();
    let rocky = kb
        .ind_id(kb.schema().symbols.find_individual("Rocky").unwrap())
        .unwrap();
    assert!(kb.ind(rocky).is_closed(driven));
    assert_eq!(kb.ind(rocky).fillers(driven).len(), 1);
    // Adding another filler is now a constraint violation…
    let saab = ind_ref(&mut kb, "Saab-9");
    let err = kb
        .assert_ind("Rocky", &Concept::Fills(driven, vec![saab]))
        .unwrap_err();
    assert!(matches!(err, ClassicError::Inconsistent { .. }));
    // …and the rejection rolled everything back, including the implicitly
    // created Saab-9.
    assert!(
        kb.schema().symbols.find_individual("Saab-9").is_none()
            || kb
                .ind_id(kb.schema().symbols.find_individual("Saab-9").unwrap())
                .is_err()
    );
    assert_eq!(kb.ind(rocky).fillers(driven).len(), 1);
}

#[test]
fn at_most_closes_role_when_reached() {
    // §3.3: "AT-MOST restrictions on roles can allow the DB to deduce that
    // a role is closed: … thing-driven being closed as soon as we learn
    // that Rocky drives Volvo-17."
    let mut kb = paper_kb();
    kb.create_ind("Rocky").unwrap();
    let driven = kb.schema_mut().symbols.find_role("thing-driven").unwrap();
    kb.assert_ind("Rocky", &Concept::AtMost(1, driven)).unwrap();
    let rocky = kb
        .ind_id(kb.schema().symbols.find_individual("Rocky").unwrap())
        .unwrap();
    assert!(!kb.ind(rocky).is_closed(driven));
    let volvo = ind_ref(&mut kb, "Volvo-17");
    kb.assert_ind("Rocky", &Concept::Fills(driven, vec![volvo]))
        .unwrap();
    assert!(kb.ind(rocky).is_closed(driven));
}

#[test]
fn same_as_derives_fillers() {
    // §3.3: SAME-AS((likes)(thing-driven)) "would lead to likes being
    // filled by Volvo-17, if it were already known that Rocky drives
    // Volvo-17". (Both roles declared as attributes, per the paper's §5
    // restriction of co-reference to single-valued roles.)
    let mut kb = Kb::new();
    let likes = kb.define_attribute("likes").unwrap();
    let driven = kb.define_attribute("thing-driven").unwrap();
    kb.create_ind("Rocky").unwrap();
    let volvo = ind_ref(&mut kb, "Volvo-17");
    kb.assert_ind("Rocky", &Concept::Fills(driven, vec![volvo.clone()]))
        .unwrap();
    kb.assert_ind("Rocky", &Concept::SameAs(vec![likes], vec![driven]))
        .unwrap();
    let rocky = kb
        .ind_id(kb.schema().symbols.find_individual("Rocky").unwrap())
        .unwrap();
    assert_eq!(kb.ind(rocky).fillers(likes), vec![volvo]);
}

#[test]
fn same_as_clash_on_distinct_values() {
    let mut kb = Kb::new();
    let a = kb.define_attribute("a").unwrap();
    let b = kb.define_attribute("b").unwrap();
    kb.create_ind("X").unwrap();
    let v1 = ind_ref(&mut kb, "V1");
    let v2 = ind_ref(&mut kb, "V2");
    kb.assert_ind("X", &Concept::Fills(a, vec![v1])).unwrap();
    kb.assert_ind("X", &Concept::Fills(b, vec![v2])).unwrap();
    let err = kb
        .assert_ind("X", &Concept::SameAs(vec![a], vec![b]))
        .unwrap_err();
    assert!(matches!(
        err,
        ClassicError::Inconsistent {
            reason: Clash::CoreferenceClash { .. },
            ..
        }
    ));
}

#[test]
fn rules_fire_on_recognition_and_chain() {
    // §3.3: assert-rule[STUDENT, (ALL eat JUNK-FOOD)] — "the DB [can]
    // deduce that she eats junk food as soon as we know she is enrolled at
    // a school (and hence is a STUDENT)".
    let mut kb = paper_kb();
    kb.define_concept("JUNK-FOOD", Concept::primitive(Concept::thing(), "junk"))
        .unwrap();
    let junk = cname(&mut kb, "JUNK-FOOD");
    let eat = kb.schema_mut().symbols.find_role("eat").unwrap();
    kb.assert_rule("STUDENT", Concept::all(eat, Concept::Name(junk)))
        .unwrap();
    kb.create_ind("Rocky").unwrap();
    let person = cname(&mut kb, "PERSON");
    kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();
    let enrolled = kb.schema_mut().symbols.find_role("enrolled-at").unwrap();
    kb.assert_ind("Rocky", &Concept::AtLeast(1, enrolled))
        .unwrap();
    // The rule's consequent is now part of Rocky's derived description...
    let rocky = kb
        .ind_id(kb.schema().symbols.find_individual("Rocky").unwrap())
        .unwrap();
    let junk_nf = kb.schema().concept_nf(junk).unwrap().clone();
    let vr = kb.ind(rocky).derived.value_restriction(eat);
    assert!(classic_core::subsumes(&junk_nf, &vr));
    // ...and propagates onto things Rocky eats.
    let twinkie = ind_ref(&mut kb, "Twinkie-1");
    kb.assert_ind("Rocky", &Concept::Fills(eat, vec![twinkie]))
        .unwrap();
    let t = kb
        .ind_id(kb.schema().symbols.find_individual("Twinkie-1").unwrap())
        .unwrap();
    assert!(kb.is_instance_of(t, junk).unwrap());
}

#[test]
fn rule_applies_to_existing_instances_when_added() {
    let mut kb = paper_kb();
    kb.create_ind("Rocky").unwrap();
    let person = cname(&mut kb, "PERSON");
    let enrolled = kb.schema_mut().symbols.find_role("enrolled-at").unwrap();
    kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();
    kb.assert_ind("Rocky", &Concept::AtLeast(1, enrolled))
        .unwrap();
    // Rocky is already a STUDENT; now add the rule.
    kb.define_concept("JUNK-FOOD", Concept::primitive(Concept::thing(), "junk"))
        .unwrap();
    let junk = cname(&mut kb, "JUNK-FOOD");
    let eat = kb.schema_mut().symbols.find_role("eat").unwrap();
    kb.assert_rule("STUDENT", Concept::all(eat, Concept::Name(junk)))
        .unwrap();
    let rocky = kb
        .ind_id(kb.schema().symbols.find_individual("Rocky").unwrap())
        .unwrap();
    let junk_nf = kb.schema().concept_nf(junk).unwrap().clone();
    assert!(classic_core::subsumes(
        &junk_nf,
        &kb.ind(rocky).derived.value_restriction(eat)
    ));
}

#[test]
fn rules_are_triggers_not_definitions() {
    // §3.3: "this is very different from making (ALL eat JUNK-FOOD) part
    // of the definition of STUDENT" — someone who doesn't provably eat
    // junk food is still recognized as a STUDENT.
    let mut kb = paper_kb();
    kb.define_concept("JUNK-FOOD", Concept::primitive(Concept::thing(), "junk"))
        .unwrap();
    let junk = cname(&mut kb, "JUNK-FOOD");
    let eat = kb.schema_mut().symbols.find_role("eat").unwrap();
    kb.assert_rule("STUDENT", Concept::all(eat, Concept::Name(junk)))
        .unwrap();
    let rocky = kb.create_ind("Rocky").unwrap();
    let person = cname(&mut kb, "PERSON");
    let enrolled = kb.schema_mut().symbols.find_role("enrolled-at").unwrap();
    kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();
    kb.assert_ind("Rocky", &Concept::AtLeast(1, enrolled))
        .unwrap();
    let student = cname(&mut kb, "STUDENT");
    assert!(kb.is_instance_of(rocky, student).unwrap());
}

#[test]
fn new_concept_recognizes_existing_individuals() {
    // §3.1: schema definition "can be interleaved with updates and
    // queries" — a late definition immediately recognizes old data.
    let mut kb = paper_kb();
    let rocky = kb.create_ind("Rocky").unwrap();
    let person = cname(&mut kb, "PERSON");
    kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();
    let enrolled = kb.schema_mut().symbols.find_role("enrolled-at").unwrap();
    kb.assert_ind("Rocky", &Concept::AtLeast(3, enrolled))
        .unwrap();
    // Define a new concept afterwards.
    let p = Concept::Name(person);
    kb.define_concept(
        "SERIAL-STUDENT",
        Concept::and([p, Concept::AtLeast(2, enrolled)]),
    )
    .unwrap();
    let serial = cname(&mut kb, "SERIAL-STUDENT");
    assert!(kb.is_instance_of(rocky, serial).unwrap());
    assert!(kb.instances_of(serial).unwrap().contains(&rocky));
}

#[test]
fn disjoint_primitive_integrity() {
    // §3.4: MALE and FEMALE are mutually exclusive primitive subclasses.
    let mut kb = Kb::new();
    kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
        .unwrap();
    let person = Concept::Name(kb.schema_mut().symbols.concept("PERSON"));
    kb.define_concept(
        "MALE",
        Concept::disjoint_primitive(person.clone(), "gender", "male"),
    )
    .unwrap();
    kb.define_concept(
        "FEMALE",
        Concept::disjoint_primitive(person, "gender", "female"),
    )
    .unwrap();
    let male = cname(&mut kb, "MALE");
    let female = cname(&mut kb, "FEMALE");
    let pat = kb.create_ind("Pat").unwrap();
    kb.assert_ind("Pat", &Concept::Name(male)).unwrap();
    let err = kb.assert_ind("Pat", &Concept::Name(female)).unwrap_err();
    assert!(matches!(
        err,
        ClassicError::Inconsistent {
            reason: Clash::DisjointPrimitives(..),
            ..
        }
    ));
    // Still a MALE, not a FEMALE.
    assert!(kb.is_instance_of(pat, male).unwrap());
    assert!(!kb.is_instance_of(pat, female).unwrap());
}

#[test]
fn at_most_zero_conflicts_with_filler() {
    // §3.4: "we cannot have an individual belong to a concept that
    // contains (AT-MOST 0 thing-driven) and at the same time have … its
    // thing-driven role filled".
    let mut kb = paper_kb();
    kb.create_ind("Rocky").unwrap();
    let driven = kb.schema_mut().symbols.find_role("thing-driven").unwrap();
    let volvo = ind_ref(&mut kb, "Volvo-17");
    kb.assert_ind("Rocky", &Concept::Fills(driven, vec![volvo]))
        .unwrap();
    let err = kb
        .assert_ind("Rocky", &Concept::AtMost(0, driven))
        .unwrap_err();
    assert!(matches!(err, ClassicError::Inconsistent { .. }));
}

#[test]
fn test_concepts_act_as_procedural_recognizers() {
    // §2.1.4: EVEN-INTEGER as (AND INTEGER (TEST even)). Host values are
    // checked by actually running the function.
    let mut kb = Kb::new();
    let even = kb.register_test("even", |arg| match arg {
        TestArg::Host(HostValue::Int(i)) => i % 2 == 0,
        _ => false,
    });
    kb.define_role("age").unwrap();
    let age = kb.schema_mut().symbols.find_role("age").unwrap();
    kb.create_ind("Rocky").unwrap();
    // Rocky's age is 41: fine against no constraint…
    kb.assert_ind(
        "Rocky",
        &Concept::Fills(age, vec![IndRef::Host(HostValue::Int(41))]),
    )
    .unwrap();
    // …but asserting that all ages are even is rejected.
    let err = kb
        .assert_ind("Rocky", &Concept::all(age, Concept::Test(even)))
        .unwrap_err();
    assert!(matches!(err, ClassicError::Inconsistent { .. }));

    // A fresh individual with an even age passes and is *recognized*.
    kb.define_concept("EVEN-AGED", Concept::all(age, Concept::Test(even)))
        .unwrap();
    let even_aged = cname(&mut kb, "EVEN-AGED");
    kb.create_ind("Bullwinkle").unwrap();
    kb.assert_ind(
        "Bullwinkle",
        &Concept::and([
            Concept::Fills(age, vec![IndRef::Host(HostValue::Int(42))]),
            Concept::Close(age),
        ]),
    )
    .unwrap();
    let b = kb
        .ind_id(kb.schema().symbols.find_individual("Bullwinkle").unwrap())
        .unwrap();
    assert!(kb.is_instance_of(b, even_aged).unwrap());
}

#[test]
fn retraction_removes_told_facts_but_rejects_never_told_ones() {
    let mut kb = paper_kb();
    kb.create_ind("Rocky").unwrap();
    // Retracting something never told is a precise error, not a silent
    // no-op.
    assert!(matches!(
        kb.retract_ind("Rocky", &Concept::thing()),
        Err(ClassicError::NotAsserted(_))
    ));
    // A told fact can be retracted, and derived consequences go with it.
    let rich_kid = kb.schema().symbols.find_concept("RICH-KID").unwrap();
    let person = kb.schema().symbols.find_concept("PERSON").unwrap();
    let sports = kb.schema().symbols.find_concept("SPORTS-CAR").unwrap();
    let enrolled = kb.schema().symbols.find_role("enrolled-at").unwrap();
    let driven = kb.schema().symbols.find_role("thing-driven").unwrap();
    let told = Concept::and([
        Concept::Name(person),
        Concept::AtLeast(1, enrolled),
        Concept::AtLeast(2, driven),
        Concept::all(driven, Concept::Name(sports)),
    ]);
    kb.assert_ind("Rocky", &told).unwrap();
    let rocky = kb
        .ind_id(kb.schema().symbols.find_individual("Rocky").unwrap())
        .unwrap();
    assert!(kb.is_instance_of(rocky, rich_kid).unwrap());
    kb.retract_ind("Rocky", &told).unwrap();
    assert!(!kb.is_instance_of(rocky, rich_kid).unwrap());
    assert!(kb.ind(rocky).told.is_empty());
    kb.check_invariants().unwrap();
}

#[test]
fn host_individuals_cannot_gain_roles() {
    // (ALL age INTEGER) with a CLASSIC filler for age is a layer clash once
    // the filler must be an integer.
    let mut kb = Kb::new();
    kb.define_role("age").unwrap();
    let age = kb.schema_mut().symbols.find_role("age").unwrap();
    kb.create_ind("Rocky").unwrap();
    let friend = ind_ref(&mut kb, "Friend-1");
    kb.assert_ind("Rocky", &Concept::Fills(age, vec![friend]))
        .unwrap();
    let err = kb
        .assert_ind(
            "Rocky",
            &Concept::all(age, Concept::Builtin(classic_core::Layer::Host(None))),
        )
        .unwrap_err();
    assert!(matches!(err, ClassicError::Inconsistent { .. }));
}

#[test]
fn crime_example_end_to_end() {
    // §4: the law-enforcement example, including the DOMESTIC-CRIME
    // deduction that it has exactly one perpetrator.
    let mut kb = Kb::new();
    kb.define_role("victim").unwrap();
    kb.define_attribute("site").unwrap();
    kb.define_attribute("domicile").unwrap();
    kb.define_role("perpetrator").unwrap();
    kb.define_role("heard-speaking").unwrap();
    kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
        .unwrap();
    let person = Concept::Name(kb.schema_mut().symbols.concept("PERSON"));
    let perp = kb.schema_mut().symbols.find_role("perpetrator").unwrap();
    let victim = kb.schema_mut().symbols.find_role("victim").unwrap();
    let site = kb.schema_mut().symbols.find_role("site").unwrap();
    let domicile = kb.schema_mut().symbols.find_role("domicile").unwrap();
    kb.define_concept(
        "CRIME",
        Concept::primitive(
            Concept::and([
                Concept::AtLeast(1, perp),
                Concept::all(perp, person),
                Concept::AtLeast(1, victim),
                Concept::AtLeast(1, site),
                Concept::AtMost(1, site),
            ]),
            "crime",
        ),
    )
    .unwrap();
    let crime = Concept::Name(kb.schema_mut().symbols.concept("CRIME"));
    kb.define_concept(
        "DOMESTIC-CRIME",
        Concept::and([
            crime.clone(),
            Concept::AtMost(1, perp),
            Concept::SameAs(vec![site], vec![perp, domicile]),
        ]),
    )
    .unwrap();
    // "It is inferrable by CLASSIC that a DOMESTIC-CRIME has exactly one
    // perpetrator."
    let dc = kb.schema_mut().symbols.concept("DOMESTIC-CRIME");
    let nf = kb.schema().concept_nf(dc).unwrap();
    let rr = nf.roles.get(&perp).expect("perpetrator restricted");
    assert_eq!(rr.at_least, 1);
    assert_eq!(rr.at_most, Some(1));

    // crime23 accumulates evidence.
    kb.create_ind("crime23").unwrap();
    let crime_name = kb.schema_mut().symbols.concept("CRIME");
    kb.assert_ind("crime23", &Concept::Name(crime_name))
        .unwrap();
    kb.assert_ind("crime23", &Concept::AtLeast(2, perp))
        .unwrap();
    let heard = kb.schema_mut().symbols.find_role("heard-speaking").unwrap();
    let ruritanian = ind_ref(&mut kb, "Ruritanian");
    kb.assert_ind(
        "crime23",
        &Concept::all(perp, Concept::all(heard, Concept::OneOf(vec![ruritanian]))),
    )
    .unwrap();
    // It is now NOT a domestic crime candidate (2 perpetrators ≥ 2 > 1 is
    // not yet contradictory with AT-MOST 1? It is: asserting
    // DOMESTIC-CRIME must fail.)
    let dc_name = kb.schema_mut().symbols.concept("DOMESTIC-CRIME");
    let err = kb
        .assert_ind("crime23", &Concept::Name(dc_name))
        .unwrap_err();
    assert!(matches!(err, ClassicError::Inconsistent { .. }));

    // A proper domestic crime: site = perpetrator's domicile is derived.
    kb.create_ind("crime15").unwrap();
    let wife = ind_ref(&mut kb, "Wife-1");
    let home = ind_ref(&mut kb, "Home-1");
    kb.assert_ind("crime15", &Concept::Name(crime_name))
        .unwrap();
    kb.assert_ind("crime15", &Concept::Fills(perp, vec![wife]))
        .unwrap();
    kb.assert_ind("crime15", &Concept::Fills(site, vec![home.clone()]))
        .unwrap();
    kb.assert_ind("crime15", &Concept::Name(dc_name)).unwrap();
    // Co-reference derives: Wife-1's domicile is Home-1.
    let wife_id = kb
        .ind_id(kb.schema().symbols.find_individual("Wife-1").unwrap())
        .unwrap();
    assert_eq!(kb.ind(wife_id).fillers(domicile), vec![home]);
    // And crime15 is recognized as a DOMESTIC-CRIME instance.
    let c15 = kb
        .ind_id(kb.schema().symbols.find_individual("crime15").unwrap())
        .unwrap();
    assert!(kb.is_instance_of(c15, dc_name).unwrap());
}

#[test]
fn assert_report_counts_derivations() {
    let mut kb = paper_kb();
    kb.create_ind("Rocky").unwrap();
    let driven = kb.schema_mut().symbols.find_role("thing-driven").unwrap();
    let sports = cname(&mut kb, "SPORTS-CAR");
    kb.assert_ind("Rocky", &Concept::all(driven, Concept::Name(sports)))
        .unwrap();
    let volvo = ind_ref(&mut kb, "Volvo-17");
    let report = kb
        .assert_ind("Rocky", &Concept::Fills(driven, vec![volvo]))
        .unwrap();
    assert!(report.fills_propagated >= 1, "ALL should reach Volvo-17");
    assert!(report.inds_created >= 1, "Volvo-17 implicitly created");
    assert!(report.steps >= 2);
}

#[test]
fn rules_on_thing_equivalent_concepts_fire_universally() {
    // A concept defined as exactly THING aliases onto the taxonomy's TOP
    // node; a rule attached to it is a universal trigger.
    let mut kb = Kb::new();
    kb.define_role("tag").unwrap();
    let tag = kb.schema_mut().symbols.find_role("tag").unwrap();
    kb.define_concept("ANYTHING", Concept::thing()).unwrap();
    kb.assert_rule("ANYTHING", Concept::AtMost(5, tag)).unwrap();
    kb.create_ind("X").unwrap();
    let x = kb
        .ind_id(kb.schema().symbols.find_individual("X").unwrap())
        .unwrap();
    // The universal rule fired on creation-time realization… or at the
    // first assertion touching X.
    kb.assert_ind("X", &Concept::thing()).unwrap();
    assert_eq!(kb.ind(x).derived.role(tag).at_most, Some(5));
}

#[test]
fn equivalent_names_share_extensions_and_rules() {
    let mut kb = Kb::new();
    kb.define_role("r").unwrap();
    let r = kb.schema_mut().symbols.find_role("r").unwrap();
    kb.define_concept("A", Concept::exactly(1, r)).unwrap();
    kb.define_concept(
        "B",
        Concept::and([Concept::AtLeast(1, r), Concept::AtMost(1, r)]),
    )
    .unwrap();
    let a = kb.schema_mut().symbols.concept("A");
    let b = kb.schema_mut().symbols.concept("B");
    kb.create_ind("X").unwrap();
    kb.assert_ind("X", &Concept::exactly(1, r)).unwrap();
    let x = kb
        .ind_id(kb.schema().symbols.find_individual("X").unwrap())
        .unwrap();
    // Same node, same extension: instance of both names.
    assert!(kb.is_instance_of(x, a).unwrap());
    assert!(kb.is_instance_of(x, b).unwrap());
    assert_eq!(kb.instances_of(a).unwrap(), kb.instances_of(b).unwrap());
    // A rule on either name applies to the shared node.
    kb.define_role("s").unwrap();
    let s = kb.schema_mut().symbols.find_role("s").unwrap();
    kb.assert_rule("B", Concept::AtMost(2, s)).unwrap();
    assert_eq!(kb.ind(x).derived.role(s).at_most, Some(2));
}
