//! Individuals: the objects a CLASSIC database is "mostly a repository of
//! information about" (paper §2).
//!
//! A CLASSIC individual has "an intrinsic identity, … independent of its
//! properties" (§3.2, `create-ind`). Everything else about it accumulates
//! incrementally through `assert-ind` under the open-world assumption; the
//! accumulated, completed knowledge is its *derived* normal form, and its
//! position in the schema is the set of most-specific named concepts it is
//! recognized under (its realization).

use classic_core::normal::NormalForm;
use classic_core::symbol::{IndName, TestId};
use classic_core::taxonomy::NodeId;
use classic_core::Concept;
use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;

/// Dense handle for an individual stored in the knowledge base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndId(pub(crate) u32);

impl IndId {
    /// Raw index into the knowledge base's individual arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a handle from a raw index (must be valid for the KB).
    pub fn from_index(ix: usize) -> IndId {
        IndId(ix as u32)
    }
}

/// Everything the database knows about one CLASSIC individual.
#[derive(Debug)]
pub struct Individual {
    /// The individual's name. (The paper notes naming might be optional in
    /// a large database — §3.2 footnote 4; we require names, which is what
    /// its own examples do.)
    pub name: IndName,
    /// The completed description: told information plus every propagated
    /// consequence (ALL-propagation, closure, co-reference, rule
    /// consequents). Monotonically grows; never retracted (§3.2).
    pub derived: NormalForm,
    /// The assertions exactly as told, for `ind-aspect`-style auditing and
    /// persistence.
    pub told: Vec<Concept>,
    /// Most-specific named concepts this individual is recognized under —
    /// "each individual is associated with the lowest concept(s) in the
    /// schema whose description(s) it satisfies" (§5).
    pub msc: BTreeSet<NodeId>,
    /// Every schema node this individual provably belongs to (the upward
    /// closure of `msc`; cached for query answering).
    pub instance_nodes: BTreeSet<NodeId>,
    /// Rules already fired on this individual (each rule fires at most
    /// once per individual, giving the §5 fixpoint bound).
    pub fired_rules: BTreeSet<usize>,
    /// Cached *positive* test outcomes. Only `true` is cached: a test may
    /// start failing-to-prove and succeed later as the derived description
    /// grows, but a recorded success never needs re-running (monotone).
    /// Interior-mutable so instance checks can run under `&Kb`; a mutex
    /// (not a `RefCell`) so parallel retrieval workers can share the KB.
    pub test_hits: Mutex<HashMap<TestId, bool>>,
}

impl Clone for Individual {
    fn clone(&self) -> Self {
        Individual {
            name: self.name,
            derived: self.derived.clone(),
            told: self.told.clone(),
            msc: self.msc.clone(),
            instance_nodes: self.instance_nodes.clone(),
            fired_rules: self.fired_rules.clone(),
            test_hits: Mutex::new(self.test_hits.lock().expect("test cache lock").clone()),
        }
    }
}

impl Individual {
    pub(crate) fn new(name: IndName) -> Individual {
        let mut derived = NormalForm::top();
        derived.layer = classic_core::Layer::Classic;
        Individual {
            name,
            derived,
            told: Vec::new(),
            msc: BTreeSet::new(),
            instance_nodes: BTreeSet::new(),
            fired_rules: BTreeSet::new(),
            test_hits: Mutex::new(HashMap::new()),
        }
    }

    /// The known fillers of `role`, if any are recorded.
    pub fn fillers(&self, role: classic_core::RoleId) -> Vec<classic_core::IndRef> {
        self.derived
            .roles
            .get(&role)
            .map(|rr| rr.fillers.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Is `role` closed for this individual?
    pub fn is_closed(&self, role: classic_core::RoleId) -> bool {
        self.derived.roles.get(&role).is_some_and(|rr| rr.closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_individual_is_a_bare_classic_thing() {
        let ind = Individual::new(IndName::from_index(0));
        assert_eq!(ind.derived.layer, classic_core::Layer::Classic);
        assert!(ind.derived.roles.is_empty());
        assert!(ind.told.is_empty());
        assert!(ind.msc.is_empty());
    }

    #[test]
    fn ind_id_round_trips() {
        assert_eq!(IndId::from_index(7).index(), 7);
    }
}
