//! # classic-kb
//!
//! The assertional component (ABox) of the CLASSIC reproduction: the
//! knowledge base of individuals, incremental assertions under the
//! open-world assumption, active propagation of deductive consequences,
//! recognition/realization, forward-chaining rules, and integrity checking
//! with atomic (accept-or-reject) updates — paper §3 and §5.
//!
//! The main entry point is [`Kb`]; see the crate-level examples in the
//! repository's `examples/` directory, which walk through the paper's
//! Rocky/RICH-KID and crime-database scenarios.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aspect;
pub mod bulk;
pub mod deps;
pub mod explain;
pub mod individual;
pub mod kb;
mod propagate;
mod shard;

pub use aspect::ConceptPlacement;
pub use bulk::{BulkRejection, BulkReport, BulkRow, DEFAULT_BULK_CHUNK};
pub use deps::{DependencyJournal, RetractReport, Support, SupportKind};
pub use explain::{Explanation, Requirement};
pub use individual::{IndId, Individual};
pub use kb::{nearest_match, AssertReport, Kb, KbStats, Rule};
