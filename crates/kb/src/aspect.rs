//! Individual introspection: the paper's `ind-aspect` operator.
//!
//! "At the moment it is possible to ask for all the fillers or
//! restrictions of a role for an individual, and whether it is closed or
//! not, by using the `ind-aspect` operator, which behaves similarly to
//! `concept-aspect` but in addition recognizes the invocations
//! `ind-aspect[i, FILLS, r]` and `ind-aspect[i, CLOSE, r]`" (paper §3.5.2).

use crate::individual::IndId;
use crate::kb::Kb;
use classic_core::aspect::{concept_aspect, roles_with_aspect, Aspect, AspectKind};
use classic_core::desc::Concept;
use classic_core::error::Result;
use classic_core::symbol::{ConceptName, RoleId};
use classic_core::taxonomy::NodeId;

/// Where an arbitrary concept expression sits in the IS-A hierarchy:
/// the paper's "most specific subsumers or subsumees of some concept —
/// the 'immediate parents' or 'immediate children'" (§3.5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConceptPlacement {
    /// Named concepts immediately above the expression.
    pub parents: Vec<ConceptName>,
    /// Named concepts immediately below it.
    pub children: Vec<ConceptName>,
    /// Named concepts with exactly this meaning, if any.
    pub equivalent: Vec<ConceptName>,
}

impl Kb {
    /// `ind-aspect[ind, kind, role]`: inspect one facet of an individual's
    /// *derived* description (told facts plus every propagated
    /// consequence).
    pub fn ind_aspect(&self, id: IndId, kind: AspectKind, role: Option<RoleId>) -> Aspect {
        concept_aspect(&self.ind(id).derived, kind, role)
    }

    /// `ind-aspect[ind, kind]` without a role: the roles restricted by
    /// that constructor for this individual.
    pub fn ind_roles_with_aspect(&self, id: IndId, kind: AspectKind) -> Vec<RoleId> {
        roles_with_aspect(&self.ind(id).derived, kind)
    }

    /// The named concepts this individual is most specifically recognized
    /// under (its realization — "the lowest concept(s) in the schema whose
    /// description(s) it satisfies", §5).
    pub fn most_specific_concepts(&self, id: IndId) -> Vec<ConceptName> {
        let mut out = Vec::new();
        for &node in &self.ind(id).msc {
            out.extend(self.taxonomy().node(node).names.iter().copied());
        }
        out.sort();
        out.dedup();
        out
    }

    /// Every named concept this individual is recognized under.
    pub fn all_concepts_of(&self, id: IndId) -> Vec<ConceptName> {
        let mut out = Vec::new();
        for &node in &self.ind(id).instance_nodes {
            out.extend(self.taxonomy().node(node).names.iter().copied());
        }
        out.sort();
        out.dedup();
        out
    }

    /// Classify an arbitrary concept expression against the schema and
    /// report its immediate named neighbors (§3.5.1). The expression is
    /// not added to the schema.
    pub fn classify_concept(&mut self, c: &Concept) -> Result<ConceptPlacement> {
        let nf = self.normalize(c)?;
        let cls = self.taxonomy().classify(&nf);
        let names_of = |kb: &Kb, nodes: &[NodeId]| -> Vec<ConceptName> {
            let mut out = Vec::new();
            for &n in nodes {
                out.extend(kb.taxonomy().node(n).names.iter().copied());
            }
            out.sort();
            out.dedup();
            out
        };
        Ok(ConceptPlacement {
            parents: names_of(self, &cls.parents),
            children: names_of(self, &cls.children),
            equivalent: cls
                .equivalent
                .map(|n| names_of(self, &[n]))
                .unwrap_or_default(),
        })
    }

    /// Is the individual recognized as an instance of a named concept?
    /// (The membership query of §3.5.3, by name.)
    pub fn is_instance_of(&self, id: IndId, concept: ConceptName) -> Result<bool> {
        let node = self
            .taxonomy()
            .node_of(concept)
            .ok_or(classic_core::ClassicError::UndefinedConcept(concept))?;
        Ok(self.ind(id).instance_nodes.contains(&node)
            || node == classic_core::taxonomy::NodeId::TOP)
    }
}
