//! Explanation: *why* an individual is (or is not) recognized under a
//! concept.
//!
//! The 1989 paper presents recognition as a black box; the deployed
//! CLASSIC family famously grew an explanation facility because users of
//! the configurator applications demanded to know why the system drew (or
//! refused) a conclusion. This module is that extension for the
//! reproduction: [`Kb::explain_instance`] decomposes a concept's normal
//! form into individual requirements and reports, for each, whether the
//! individual's derived description provably satisfies it — the same
//! checks `known_instance` performs, kept rather than short-circuited.

use crate::individual::IndId;
use crate::kb::Kb;
use classic_core::desc::IndRef;
use classic_core::error::Result;
use classic_core::normal::NormalForm;
use classic_core::schema::TestArg;
use classic_core::subsume::subsumes;
use classic_core::symbol::ConceptName;

/// One atomic requirement of a concept, with its status for an individual.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Requirement {
    /// Human-readable requirement, e.g. `"at least 2 fillers for
    /// thing-driven (has 1)"`.
    pub description: String,
    /// Provably satisfied given current knowledge? Under the open world a
    /// `false` means *not provable*, not *provably false*.
    pub satisfied: bool,
}

/// The decomposed verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explanation {
    /// Conjunction of all requirement statuses (= `known_instance`).
    pub satisfied: bool,
    /// Every requirement the concept imposes, each with its status.
    pub requirements: Vec<Requirement>,
}

impl Explanation {
    /// The requirements that block recognition.
    pub fn missing(&self) -> Vec<&Requirement> {
        self.requirements.iter().filter(|r| !r.satisfied).collect()
    }

    /// Render as one line per requirement, ✓/✗-prefixed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.requirements {
            out.push_str(if r.satisfied { "  ✓ " } else { "  ✗ " });
            out.push_str(&r.description);
            out.push('\n');
        }
        if self.requirements.is_empty() {
            out.push_str("  (no requirements — THING)\n");
        }
        out
    }
}

impl Kb {
    /// Explain membership of `id` in the named concept.
    pub fn explain_membership(&self, id: IndId, concept: ConceptName) -> Result<Explanation> {
        let nf = self.schema().concept_nf(concept)?.clone();
        Ok(self.explain_instance(id, &nf))
    }

    /// Decompose `nf` into requirements and evaluate each against the
    /// individual's derived description. The conjunction of the statuses
    /// equals [`Kb::known_instance`].
    pub fn explain_instance(&self, id: IndId, nf: &NormalForm) -> Explanation {
        let mut reqs: Vec<Requirement> = Vec::new();
        let symbols = &self.schema().symbols;
        let ind = self.ind(id);
        let d = &ind.derived;

        if nf.is_incoherent() {
            return Explanation {
                satisfied: false,
                requirements: vec![Requirement {
                    description: "the concept is incoherent (⊥) — nothing can satisfy it".into(),
                    satisfied: false,
                }],
            };
        }
        if nf.layer != classic_core::Layer::Thing {
            reqs.push(Requirement {
                description: format!("must be a {}", nf.layer),
                satisfied: nf.layer.subsumes(d.layer),
            });
        }
        for &p in &nf.prims {
            let pc = self.schema().prim_concept(p);
            reqs.push(Requirement {
                description: format!("must be asserted under primitive {}", pc.display(symbols)),
                satisfied: d.prims.contains(&p),
            });
        }
        for &t in &nf.tests {
            let passed = d.tests.contains(&t)
                || ind.test_hits.lock().expect("test cache lock").get(&t) == Some(&true)
                || {
                    let name = symbols.individual_name(ind.name);
                    self.schema()
                        .run_test(t, &TestArg::Ind(Some(name), d))
                        .unwrap_or(false)
                };
            reqs.push(Requirement {
                description: format!("TEST {} must accept it", symbols.test_name(t)),
                satisfied: passed,
            });
        }
        if let Some(s) = &nf.one_of {
            reqs.push(Requirement {
                description: format!("must be one of the {} enumerated individuals", s.len()),
                satisfied: s.contains(&IndRef::Classic(ind.name)),
            });
        }
        for (&r, rr1) in &nf.roles {
            let rname = symbols.role_name(r);
            let rr2 = d.roles.get(&r);
            let (min2, max2, closed2) = match rr2 {
                Some(rr2) => (rr2.min_count(), rr2.max_count(), rr2.closed),
                None => (0, u32::MAX, false),
            };
            if rr1.at_least > 0 {
                reqs.push(Requirement {
                    description: format!(
                        "at least {} filler(s) for {rname} (has {min2} known/required)",
                        rr1.at_least
                    ),
                    satisfied: min2 >= rr1.at_least,
                });
            }
            if let Some(m1) = rr1.at_most {
                let have = if max2 == u32::MAX {
                    "unbounded".to_owned()
                } else {
                    max2.to_string()
                };
                reqs.push(Requirement {
                    description: format!(
                        "at most {m1} filler(s) for {rname} (provable bound: {have})"
                    ),
                    satisfied: max2 <= m1,
                });
            }
            if rr1.closed {
                reqs.push(Requirement {
                    description: format!("{rname} must be closed"),
                    satisfied: closed2,
                });
            }
            for f in &rr1.fillers {
                let fname = match f {
                    IndRef::Classic(n) => symbols.individual_name(*n).to_owned(),
                    IndRef::Host(v) => v.to_string(),
                };
                let has = rr2.is_some_and(|rr2| rr2.fillers.contains(f));
                reqs.push(Requirement {
                    description: format!("{rname} must be filled by {fname}"),
                    satisfied: has,
                });
            }
            if let Some(all1) = &rr1.all {
                let target = all1.to_concept(self.schema());
                let entailed = rr2
                    .and_then(|rr2| rr2.all.as_deref())
                    .is_some_and(|all2| subsumes(all1, all2));
                let ok = if max2 == 0 || entailed {
                    true
                } else if closed2 {
                    rr2.map(|rr2| {
                        rr2.fillers.iter().all(|f| match f {
                            IndRef::Classic(n) => self
                                .ind_id(*n)
                                .map(|fid| self.known_instance(fid, all1))
                                .unwrap_or(false),
                            IndRef::Host(v) => self.host_satisfies(v, all1),
                        })
                    })
                    .unwrap_or(true)
                } else {
                    false
                };
                reqs.push(Requirement {
                    description: format!(
                        "every filler of {rname} must be {}",
                        target.display(symbols)
                    ),
                    satisfied: ok,
                });
            }
        }
        for (p, q) in nf.same_as.pairs() {
            let render_path = |path: &[classic_core::RoleId]| {
                path.iter()
                    .map(|&r| symbols.role_name(r))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            // Witnessed structurally or by actual fillers — reuse the
            // membership checker on a minimal NF carrying just this pair.
            let mut single = NormalForm::top();
            single.same_as.add_pair(p.clone(), q.clone());
            let witnessed = self.known_instance(id, &single);
            reqs.push(Requirement {
                description: format!(
                    "({}) must co-refer with ({})",
                    render_path(p),
                    render_path(q)
                ),
                satisfied: witnessed,
            });
        }
        Explanation {
            satisfied: reqs.iter().all(|r| r.satisfied),
            requirements: reqs,
        }
    }

    /// Explain *where an individual's derived information came from*: one
    /// line per committed dependency record, rendered from the same
    /// journal that drives retraction. Complements [`Kb::explain_instance`]
    /// (which explains what a concept demands): provenance explains what
    /// retracting a told fact would take with it.
    pub fn explain_provenance(&self, id: IndId) -> Vec<String> {
        let symbols = &self.schema().symbols;
        let ind_name = |i: IndId| symbols.individual_name(self.ind(i).name).to_owned();
        let mut lines: Vec<String> = Vec::new();
        for s in self.deps().supports_of(id) {
            let line = match s.kind {
                crate::deps::SupportKind::Told { index } => {
                    match self.ind(id).told.get(index) {
                        Some(c) => format!("told: {}", c.display(symbols)),
                        // Indices shift when earlier told facts are
                        // retracted; the record remains as evidence that
                        // *some* told fact contributed.
                        None => "told: (a since-retracted assertion)".to_owned(),
                    }
                }
                crate::deps::SupportKind::All { role } => format!(
                    "propagated from {} via (ALL {} …)",
                    ind_name(s.source),
                    symbols.role_name(role)
                ),
                crate::deps::SupportKind::Coref { role } => format!(
                    "derived filler for {} via SAME-AS on {}",
                    symbols.role_name(role),
                    ind_name(s.source)
                ),
                crate::deps::SupportKind::Rule { index } => {
                    let rule = &self.rules()[index];
                    format!(
                        "rule on {} fired: {}",
                        symbols.concept_name(rule.antecedent),
                        rule.consequent.display(symbols)
                    )
                }
            };
            lines.push(line);
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classic_core::desc::Concept;

    fn kb() -> Kb {
        let mut kb = Kb::new();
        kb.define_role("thing-driven").unwrap();
        kb.define_role("enrolled-at").unwrap();
        kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
            .unwrap();
        let person = Concept::Name(kb.schema().symbols.find_concept("PERSON").unwrap());
        let enrolled = kb.schema().symbols.find_role("enrolled-at").unwrap();
        kb.define_concept(
            "STUDENT",
            Concept::and([person, Concept::AtLeast(1, enrolled)]),
        )
        .unwrap();
        kb
    }

    #[test]
    fn explanation_matches_known_instance() {
        let mut kb = kb();
        let id = kb.create_ind("Rocky").unwrap();
        let person = kb.schema().symbols.find_concept("PERSON").unwrap();
        let student = kb.schema().symbols.find_concept("STUDENT").unwrap();
        kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();
        let e = kb.explain_membership(id, student).unwrap();
        assert!(!e.satisfied);
        assert_eq!(
            e.satisfied,
            kb.known_instance(id, kb.schema().concept_nf(student).unwrap())
        );
        // Exactly one requirement is missing: the enrollment.
        let missing = e.missing();
        assert_eq!(missing.len(), 1);
        assert!(missing[0].description.contains("enrolled-at"));
        // Satisfy it; explanation flips.
        let enrolled = kb.schema().symbols.find_role("enrolled-at").unwrap();
        kb.assert_ind("Rocky", &Concept::AtLeast(1, enrolled))
            .unwrap();
        let e = kb.explain_membership(id, student).unwrap();
        assert!(e.satisfied);
        assert!(e.missing().is_empty());
    }

    #[test]
    fn explanation_of_value_restrictions() {
        let mut kb = kb();
        let driven = kb.schema().symbols.find_role("thing-driven").unwrap();
        let person = kb.schema().symbols.find_concept("PERSON").unwrap();
        kb.define_concept("PEOPLE-MOVER", Concept::all(driven, Concept::Name(person)))
            .unwrap();
        let mover = kb.schema().symbols.find_concept("PEOPLE-MOVER").unwrap();
        let id = kb.create_ind("Bus").unwrap();
        let p = classic_core::IndRef::Classic(kb.schema_mut().symbols.individual("Pat"));
        kb.assert_ind("Bus", &Concept::Fills(driven, vec![p]))
            .unwrap();
        // Open role: the ALL is not provable.
        let e = kb.explain_membership(id, mover).unwrap();
        assert!(!e.satisfied);
        assert!(e.missing()[0].description.contains("every filler"));
        // Close the role and make Pat a PERSON: provable via enumeration.
        kb.assert_ind("Pat", &Concept::Name(person)).unwrap();
        kb.assert_ind("Bus", &Concept::Close(driven)).unwrap();
        let e = kb.explain_membership(id, mover).unwrap();
        assert!(e.satisfied, "{}", e.render());
    }

    #[test]
    fn render_marks_each_requirement() {
        let mut kb = kb();
        let id = kb.create_ind("X").unwrap();
        let student = kb.schema().symbols.find_concept("STUDENT").unwrap();
        let e = kb.explain_membership(id, student).unwrap();
        let text = e.render();
        assert!(text.contains('✗'));
        assert!(text.lines().count() >= 2, "person + enrollment lines");
    }

    #[test]
    fn incoherent_concept_explains_itself() {
        let mut kb = kb();
        let id = kb.create_ind("X").unwrap();
        let r = kb.schema().symbols.find_role("thing-driven").unwrap();
        let bot = kb
            .normalize(&Concept::and([
                Concept::AtLeast(2, r),
                Concept::AtMost(1, r),
            ]))
            .unwrap();
        let e = kb.explain_instance(id, &bot);
        assert!(!e.satisfied);
        assert!(e.requirements[0].description.contains("incoherent"));
    }
}
