//! Cross-shard effects and the deterministic message bus for the sharded
//! propagation engine.
//!
//! The sharded fixpoint (see `propagate.rs`) is bulk-synchronous: each
//! epoch partitions the worklist across shards that own contiguous
//! [`IndId`] ranges, every shard *plans* its items against the shared
//! epoch-start state (`&Kb`, read-only), and the effects they would have
//! — conjunctions pushed onto fillers, `SAME-AS` derivations,
//! reverse-filler edges, recognition installs, rule firings — are
//! emitted as [`Effect`] messages onto a [`MessageBus`]. At the epoch
//! barrier the coordinator drains the bus in a canonical order and
//! applies the effects sequentially.
//!
//! Determinism rests on the bus contract: every message is tagged with
//! its emitting shard and a per-shard sequence number, queues are
//! per-destination, and [`MessageBus::drain_sorted`] yields destination
//! queues in index order, each sorted by `(src, seq)`. Since each
//! shard's emission order is itself deterministic (its item list is
//! sorted and planning is a pure function of the epoch-start state), the
//! applied effect order — and therefore the resulting state, including
//! the creation order of referenced-but-missing individuals — is a
//! function of the epoch-start state alone, independent of thread
//! scheduling.

use crate::deps::SupportKind;
use crate::individual::IndId;
use crate::kb::Kb;
use crate::propagate::PathResolution;
use classic_core::desc::IndRef;
use classic_core::error::{Clash, ClassicError};
use classic_core::normal::{NormalForm, RoleRestriction};
use classic_core::subsume::subsumes;
use classic_core::symbol::{IndName, RoleId};
use classic_core::taxonomy::NodeId;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Where an effect lands: an individual that existed at the epoch
/// snapshot, or one referenced by name that the apply phase must create
/// (in canonical drain order, so arena layout stays deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TargetRef {
    /// An individual present at epoch start.
    Id(IndId),
    /// A referenced-but-uncreated individual.
    Name(IndName),
}

/// One effect a shard computed while planning an individual. Each
/// variant mirrors a mutation `process_one` performs in place on the
/// sequential path.
#[derive(Debug)]
pub(crate) enum Effect {
    /// Conjoin `nf` onto `target`, recording a support from `source`
    /// (unconditionally for `All` supports, only-if-changed for `Coref`
    /// — matching the sequential engine's provenance contract).
    Conjoin {
        target: TargetRef,
        nf: NormalForm,
        source: IndId,
        kind: SupportKind,
    },
    /// Record a support without conjoining: the restriction was already
    /// subsumed at plan time, and derived descriptions only grow, so it
    /// stays subsumed at apply time.
    Support {
        target: TargetRef,
        source: IndId,
        kind: SupportKind,
    },
    /// `host` holds `filler` as a role filler (idempotent to re-add).
    ReverseEdge { filler: TargetRef, host: IndId },
    /// `ind`'s recognition changed: install the recomputed instance set
    /// and most-specific frontier.
    Install {
        ind: IndId,
        qualifying: BTreeSet<NodeId>,
        msc: BTreeSet<NodeId>,
    },
    /// Rule `rule_ix` is due on `ind` (recognized under the antecedent,
    /// not yet fired).
    FireRule { ind: IndId, rule_ix: usize },
    /// Planning found an inconsistency; the first abort in canonical
    /// order becomes the transaction's error (the caller rolls back).
    Abort { ind: IndId, error: ClassicError },
}

/// Contiguous-range ownership of the individual arena: shard `s` owns
/// ids `[s·chunk, (s+1)·chunk)`, with the tail clamped to the last
/// shard. Recomputed at every epoch from the current arena length, so
/// individuals created mid-fixpoint are owned next epoch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Partition {
    chunk: usize,
    shards: usize,
}

impl Partition {
    pub(crate) fn new(arena_len: usize, shards: usize) -> Partition {
        let shards = shards.max(1);
        let chunk = arena_len.max(1).div_ceil(shards);
        Partition { chunk, shards }
    }

    /// Which shard owns `id`. Ids at or past the epoch-start arena
    /// length clamp to the last shard.
    pub(crate) fn owner(&self, id: IndId) -> usize {
        (id.index() / self.chunk).min(self.shards - 1)
    }

    /// The destination queue for an effect: effects on existing
    /// individuals go to their owner's queue; effects that must create
    /// an individual go to the extra creation queue (index `shards`),
    /// applied after all queues of existing owners.
    pub(crate) fn dest(&self, e: &Effect) -> usize {
        let target = match e {
            Effect::Conjoin { target, .. }
            | Effect::Support { target, .. }
            | Effect::ReverseEdge { filler: target, .. } => target,
            Effect::Install { ind, .. } | Effect::FireRule { ind, .. } => return self.owner(*ind),
            Effect::Abort { ind, .. } => return self.owner(*ind),
        };
        match target {
            TargetRef::Id(id) => self.owner(*id),
            TargetRef::Name(_) => self.shards,
        }
    }

    /// Queue count the bus needs: one per shard plus the creation queue.
    pub(crate) fn queues(&self) -> usize {
        self.shards + 1
    }
}

/// A message with its canonical-order key.
#[derive(Debug)]
pub(crate) struct Tagged<T> {
    /// Emitting shard.
    pub(crate) src: u32,
    /// Emission sequence within that shard.
    pub(crate) seq: u32,
    /// The payload.
    pub(crate) payload: T,
}

/// Per-destination message queues, shared by the epoch's shard workers.
/// Pushes take the destination queue's mutex only (shards contend only
/// when targeting the same destination); the drain happens after the
/// barrier, single-threaded.
#[derive(Debug)]
pub(crate) struct MessageBus<T> {
    queues: Vec<Mutex<Vec<Tagged<T>>>>,
}

impl<T> MessageBus<T> {
    pub(crate) fn new(queues: usize) -> MessageBus<T> {
        MessageBus {
            queues: (0..queues).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Append a message to `dest`'s queue. Panics on a poisoned queue
    /// mutex: planning holds no lock while computing (push is the only
    /// critical section, and a `Vec::push` does not unwind mid-update),
    /// so poisoning here means a bug, not a recoverable state.
    pub(crate) fn push(&self, dest: usize, msg: Tagged<T>) {
        self.queues[dest]
            .lock()
            .expect("message queue poisoned")
            .push(msg);
    }

    /// Queue depths at the barrier (for the shard queue-depth gauges).
    pub(crate) fn depths(&self) -> Vec<usize> {
        self.queues
            .iter()
            .map(|q| q.lock().expect("message queue poisoned").len())
            .collect()
    }

    /// Drain every queue in canonical order: destination queues in index
    /// order, each sorted by `(src, seq)`. Exactly the messages pushed
    /// are returned (the loom model test below pins no-loss under
    /// concurrent pushes), in an order independent of thread scheduling.
    pub(crate) fn drain_sorted(self) -> Vec<Tagged<T>> {
        let mut out = Vec::new();
        for q in self.queues {
            let mut msgs = q.into_inner().expect("message queue poisoned");
            msgs.sort_by_key(|m| (m.src, m.seq));
            out.append(&mut msgs);
        }
        out
    }
}

impl Kb {
    /// Read-only mirror of `process_one`: compute every effect that
    /// processing `id` would have against the current (epoch-start)
    /// state, emitting them in a deterministic order instead of mutating
    /// in place. Runs concurrently on shard workers over a shared `&Kb`
    /// (interior mutability is limited to atomic counters and the
    /// monotone per-individual TEST cache).
    pub(crate) fn plan_one(&self, id: IndId, emit: &mut dyn FnMut(Effect)) {
        let ind = &self.inds[id.index()];
        if let Some(clash) = ind.derived.clash() {
            emit(Effect::Abort {
                ind: id,
                error: ClassicError::Inconsistent {
                    individual: Some(ind.name),
                    reason: clash.clone(),
                },
            });
            return;
        }

        // ---- phase 1: ALL-propagation to fillers --------------------------
        for (&r, rr) in &ind.derived.roles {
            let all = rr.all.as_deref();
            for f in &rr.fillers {
                match f {
                    IndRef::Classic(name) => {
                        let target = match self.by_name.get(name) {
                            Some(&fid) => TargetRef::Id(fid),
                            None => TargetRef::Name(*name),
                        };
                        let edge_known = matches!(&target, TargetRef::Id(fid)
                            if self.reverse_fillers.get(fid).is_some_and(|s| s.contains(&id)));
                        if !edge_known {
                            emit(Effect::ReverseEdge {
                                filler: target.clone(),
                                host: id,
                            });
                        }
                        if let Some(d) = all {
                            let kind = SupportKind::All { role: r };
                            // Subsumed at plan time stays subsumed at
                            // apply time (derived only grows), so the
                            // conjunction can be pre-filtered to a bare
                            // support record here on the parallel side.
                            let already = matches!(&target, TargetRef::Id(fid)
                                if subsumes(d, &self.inds[fid.index()].derived));
                            if already {
                                emit(Effect::Support {
                                    target,
                                    source: id,
                                    kind,
                                });
                            } else {
                                emit(Effect::Conjoin {
                                    target,
                                    nf: d.clone(),
                                    source: id,
                                    kind,
                                });
                            }
                        }
                    }
                    IndRef::Host(v) => {
                        if let Some(d) = all {
                            if !self.host_satisfies(v, d) {
                                emit(Effect::Abort {
                                    ind: id,
                                    error: ClassicError::Inconsistent {
                                        individual: Some(ind.name),
                                        reason: Clash::FillerViolation { role: r },
                                    },
                                });
                                return;
                            }
                        }
                    }
                }
            }
        }

        // ---- phase 2: SAME-AS co-reference ---------------------------------
        for class in ind.derived.same_as.classes() {
            if class.len() < 2 {
                continue;
            }
            let mut value: Option<IndRef> = None;
            let mut pending: Vec<(IndId, RoleId)> = Vec::new();
            let mut clash_role: Option<RoleId> = None;
            for path in &class {
                match self.resolve_path(id, path) {
                    PathResolution::Complete(v) => match &value {
                        None => value = Some(v),
                        Some(prev) if *prev != v => {
                            clash_role = Some(*path.last().expect("non-empty"));
                            break;
                        }
                        Some(_) => {}
                    },
                    PathResolution::AtLastStep { holder, last } => {
                        pending.push((holder, last));
                    }
                    PathResolution::Unresolved => {}
                }
            }
            if let Some(role) = clash_role {
                emit(Effect::Abort {
                    ind: id,
                    error: ClassicError::Inconsistent {
                        individual: Some(ind.name),
                        reason: Clash::CoreferenceClash { role },
                    },
                });
                return;
            }
            if let Some(v) = value {
                for (holder, last) in pending {
                    let mut fills = NormalForm::top();
                    fills.roles.insert(
                        last,
                        RoleRestriction {
                            fillers: BTreeSet::from([v.clone()]),
                            ..RoleRestriction::default()
                        },
                    );
                    fills.renormalize(&self.schema);
                    // Coref supports are recorded only when the
                    // conjunction changes something (sequential
                    // contract); an already-subsumed derivation emits
                    // nothing at all.
                    if subsumes(&fills, &self.inds[holder.index()].derived) {
                        continue;
                    }
                    emit(Effect::Conjoin {
                        target: TargetRef::Id(holder),
                        nf: fills,
                        source: id,
                        kind: SupportKind::Coref { role: last },
                    });
                }
            }
        }

        // ---- phase 3: recognition + due rules ------------------------------
        let (qualifying, msc) = self.compute_recognition(id);
        let due: Vec<usize> = qualifying
            .iter()
            .filter_map(|n| self.rules_by_node.get(n))
            .flatten()
            .copied()
            .filter(|ix| !ind.fired_rules.contains(ix))
            .collect();
        if qualifying != ind.instance_nodes {
            emit(Effect::Install {
                ind: id,
                qualifying,
                msc,
            });
        }
        for rule_ix in due {
            emit(Effect::FireRule { ind: id, rule_ix });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Loom model test for the cross-shard queue: N shard workers push
    /// tagged messages concurrently; after the join barrier the drain
    /// must see *every* send (no lost messages) in the canonical
    /// `(queue, src, seq)` order, regardless of interleaving.
    #[test]
    fn bus_loses_no_messages_and_drains_canonically() {
        loom::model(|| {
            const SHARDS: usize = 3;
            const PER_SHARD: u32 = 8;
            let bus = loom::sync::Arc::new(MessageBus::<u64>::new(SHARDS + 1));
            let handles: Vec<_> = (0..SHARDS as u32)
                .map(|src| {
                    let bus = loom::sync::Arc::clone(&bus);
                    loom::thread::spawn(move || {
                        for seq in 0..PER_SHARD {
                            // Route round-robin so queues interleave
                            // messages from several sources.
                            let dest = ((src + seq) as usize) % (SHARDS + 1);
                            bus.push(
                                dest,
                                Tagged {
                                    src,
                                    seq,
                                    payload: (src as u64) << 32 | seq as u64,
                                },
                            );
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let bus = loom::sync::Arc::try_unwrap(bus)
                .unwrap_or_else(|_| panic!("bus still shared after join"));
            let drained = bus.drain_sorted();
            // Barrier sees all sends…
            assert_eq!(drained.len(), SHARDS * PER_SHARD as usize);
            let mut seen: Vec<u64> = drained.iter().map(|m| m.payload).collect();
            seen.sort_unstable();
            let mut expected: Vec<u64> = (0..SHARDS as u64)
                .flat_map(|s| (0..PER_SHARD as u64).map(move |q| s << 32 | q))
                .collect();
            expected.sort_unstable();
            assert_eq!(seen, expected, "a message was lost or duplicated");
            // …and the order is canonical: (src, seq) non-decreasing
            // within each destination's contiguous run. Tags alone do
            // not say where queue boundaries fall, so check the weaker
            // invariant that fully determines apply order given the
            // deterministic routing above: re-draining an identically
            // routed bus yields the identical order.
            let replay = MessageBus::<u64>::new(SHARDS + 1);
            for src in 0..SHARDS as u32 {
                for seq in 0..PER_SHARD {
                    let dest = ((src + seq) as usize) % (SHARDS + 1);
                    replay.push(
                        dest,
                        Tagged {
                            src,
                            seq,
                            payload: (src as u64) << 32 | seq as u64,
                        },
                    );
                }
            }
            let replayed: Vec<u64> = replay.drain_sorted().iter().map(|m| m.payload).collect();
            let first: Vec<u64> = drained.iter().map(|m| m.payload).collect();
            assert_eq!(first, replayed, "drain order depends on scheduling");
        });
    }

    #[test]
    fn partition_covers_the_arena_contiguously() {
        for (len, shards) in [(0usize, 4usize), (1, 4), (7, 3), (100, 4), (5, 8)] {
            let p = Partition::new(len, shards);
            let mut prev = 0usize;
            for ix in 0..len {
                let o = p.owner(IndId::from_index(ix));
                assert!(o < shards, "owner out of range");
                assert!(o >= prev, "ownership not monotone in id");
                prev = o;
            }
        }
    }
}
