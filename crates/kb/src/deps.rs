//! Persistent dependency records for retraction (§3.2's deferred
//! "destructive update" surface).
//!
//! The transaction [`Journal`](crate::kb) makes one update atomic; the
//! [`DependencyJournal`] makes updates *reversible across transactions*:
//! every time propagation changes an individual's derived normal form it
//! records a [`Support`] — which individual contributed the information
//! and through which mechanism (a told assertion, an `ALL` restriction
//! pushed onto a filler, a `SAME-AS` co-reference, or a rule firing).
//!
//! Retraction then inverts the derivation: the individuals whose derived
//! state may rest on a retracted fact are exactly the *forward closure*
//! of the retraction seed under the support graph (follow supports whose
//! `source` is affected to their `target`s). Those individuals are reset
//! to their surviving told facts and re-propagated to a new fixed point;
//! everything outside the closure is untouched, which is what makes
//! incremental retraction cheaper than a rebuild (experiment E10).
//!
//! The records are deliberately *coarse* (per individual-pair-mechanism,
//! not per derived fact), and they are recorded whenever the mechanism
//! *applies* — an `ALL` restriction over a filler edge, a rule firing —
//! whether or not the conjunction changed anything. That makes the
//! support set a function of the fixed point rather than of arrival
//! order, which is what lets provenance survive retraction exactly: the
//! journal after a retraction equals the journal of a rebuild from the
//! surviving told facts (the `provenance_after_retraction_…` oracle in
//! `tests/retract.rs`). Coarseness makes the reset a superset of the
//! strictly necessary one — sound, since re-derivation from told facts
//! is confluent — while keeping the journal small and maintenance O(1)
//! per propagation step.
//!
//! The sharded propagation engine (`crate::shard`) preserves this
//! fixed-point characterization across threads: workers never write the
//! journal from inside the parallel planning phase. `ALL` and rule
//! supports travel as cross-shard effect messages and are recorded
//! during the sequential drain, *unconditionally* (like here, whenever
//! the mechanism applies), while `SAME-AS` supports are recorded only
//! when the co-reference changed something — both matching the
//! sequential engine's policy exactly, so the journal after a sharded
//! fixpoint equals the journal after a sequential one.

use crate::individual::IndId;
use classic_core::symbol::RoleId;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// How a piece of derived information reached an individual.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SupportKind {
    /// A told assertion on the individual itself.
    Told {
        /// Position in `told` at recording time (indices shift on
        /// retraction, so this is informational, not used for
        /// addressing).
        index: usize,
    },
    /// An `(ALL role C)` restriction on `source` pushed `C` onto this
    /// filler.
    All {
        /// The role the restriction was attached to.
        role: RoleId,
    },
    /// A `SAME-AS` co-reference on `source` derived a filler here.
    Coref {
        /// The final role of the resolved chain.
        role: RoleId,
    },
    /// A rule fired on the individual (source == target).
    Rule {
        /// The rule's stable index in [`crate::Kb::rules`].
        index: usize,
    },
}

/// One dependency record: `target`'s derived state partly rests on
/// information held by `source`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Support {
    /// The individual whose derived state was changed.
    pub target: IndId,
    /// The individual whose information caused the change.
    pub source: IndId,
    /// The mechanism that carried it.
    pub kind: SupportKind,
}

/// The persistent support graph, keyed by target. Committed supports only;
/// in-flight supports live on the transaction journal until commit.
#[derive(Debug, Default, Clone)]
pub struct DependencyJournal {
    records: HashMap<IndId, BTreeSet<Support>>,
    /// Maintained source→target edge refcounts (distinct supports per
    /// pair), so [`Self::affected_from`] walks only the closure instead
    /// of scanning the whole journal. Self-edges are not indexed: they
    /// never grow the closure.
    by_source: HashMap<IndId, HashMap<IndId, u32>>,
}

impl DependencyJournal {
    /// Insert one record (idempotent — the set deduplicates).
    pub(crate) fn insert(&mut self, s: Support) {
        if self.records.entry(s.target).or_default().insert(s) && s.source != s.target {
            *self
                .by_source
                .entry(s.source)
                .or_default()
                .entry(s.target)
                .or_insert(0) += 1;
        }
    }

    /// Absorb a transaction's recorded supports on commit.
    pub(crate) fn absorb(&mut self, supports: impl IntoIterator<Item = Support>) {
        for s in supports {
            self.insert(s);
        }
    }

    /// The committed supports of one individual (why it is what it is).
    pub fn supports_of(&self, target: IndId) -> impl Iterator<Item = &Support> {
        self.records.get(&target).into_iter().flatten()
    }

    /// Total number of committed support records (diagnostics/E10).
    pub fn len(&self) -> usize {
        self.records.values().map(|s| s.len()).sum()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.values().all(|s| s.is_empty())
    }

    /// Forward dependency closure: every individual whose derived state
    /// may (transitively) rest on information held by one of `seeds`.
    /// Always includes the seeds themselves.
    ///
    /// Walks the maintained source→targets index, so the cost is
    /// O(edges inside the closure), not O(journal) — this is what keeps
    /// incremental re-analysis proportional to the dirty cone.
    pub fn affected_from(&self, seeds: &BTreeSet<IndId>) -> BTreeSet<IndId> {
        let mut closed: BTreeSet<IndId> = seeds.clone();
        let mut work: VecDeque<IndId> = seeds.iter().copied().collect();
        while let Some(id) = work.pop_front() {
            if let Some(targets) = self.by_source.get(&id) {
                for &t in targets.keys() {
                    if closed.insert(t) {
                        work.push_back(t);
                    }
                }
            }
        }
        closed
    }

    /// Remove and return every record whose *target* is in `set` (those
    /// individuals are about to be re-derived from scratch, so their old
    /// provenance is void). Returned records go on the transaction journal
    /// so a failed retraction can restore them.
    pub(crate) fn remove_targets(&mut self, set: &BTreeSet<IndId>) -> Vec<Support> {
        let mut removed = Vec::new();
        for id in set {
            if let Some(supports) = self.records.remove(id) {
                removed.extend(supports);
            }
        }
        for s in &removed {
            if s.source == s.target {
                continue;
            }
            if let Some(targets) = self.by_source.get_mut(&s.source) {
                if let Some(count) = targets.get_mut(&s.target) {
                    *count -= 1;
                    if *count == 0 {
                        targets.remove(&s.target);
                    }
                }
                if targets.is_empty() {
                    self.by_source.remove(&s.source);
                }
            }
        }
        removed
    }
}

/// Per-retraction report: what one accepted retraction cost (E10's
/// incremental-vs-rebuild metric).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RetractReport {
    /// Individuals whose derived state was reset and re-derived.
    pub reset: u64,
    /// Individuals re-enqueued for propagation (reset plus their
    /// transitive reverse-filler hosts).
    pub requeued: u64,
    /// Worklist steps the re-propagation took.
    pub steps: u64,
    /// Individuals whose recognized concepts changed.
    pub reclassified: u64,
}
