//! The CLASSIC knowledge base: schema + taxonomy + individuals + rules.
//!
//! [`Kb`] is the paper's "database": it exposes the operator vocabulary of
//! §3 — `define-role`, `define-attribute`, `define-concept` (DDL, freely
//! interleaved with everything else), `create-ind` and `assert-ind` (DML
//! under the open-world assumption), `assert-rule` (limited forward
//! chaining), and the introspection/query surface consumed by
//! `classic-query`.
//!
//! Every update is atomic: "updates … are either accepted or rejected
//! because of constraint violations" (§3.1). A rejected `assert-ind` (or
//! `assert-rule`) rolls back every propagated consequence via an internal
//! journal of first-touch snapshots.

use crate::deps::{DependencyJournal, RetractReport, Support, SupportKind};
use crate::individual::{IndId, Individual};
use crate::propagate::Propagation;
use classic_core::desc::{Concept, IndRef};
use classic_core::error::{ClassicError, Result};
use classic_core::normal::{conjoin_expression, NormalForm};
use classic_core::schema::{Schema, TestArg};
use classic_core::symbol::{ConceptName, IndName, RoleId, TestId};
use classic_core::taxonomy::{NodeId, Taxonomy};
use classic_obs::{FlightRecorder, Histogram, Registry};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// A forward-chaining rule: "if an individual is a `<concept1>` then it is
/// also a `<concept2>`" (§3.3). Rules are "triggers activated only when a new
/// individual is found of which the antecedent concept description holds" —
/// *not* part of the antecedent's definition.
#[derive(Debug, Clone)]
pub struct Rule {
    /// The named concept the rule is attached to.
    pub antecedent: ConceptName,
    /// The taxonomy node the antecedent classifies at.
    pub node: NodeId,
    /// The consequent description, conjoined onto every recognized
    /// instance.
    pub consequent: Concept,
    /// Whether the rule has been retracted. Retired rules stay in the
    /// vector so the `usize` indices stored in `fired_rules` and
    /// `rules_by_node` remain stable; every consumer must filter them
    /// (use [`Kb::active_rules`]).
    pub retired: bool,
}

/// A monotone instrumentation counter. Atomic (relaxed) so parallel query
/// workers can record statistics through a shared `&Kb` without losing
/// updates. Since the observability migration this is the
/// [`classic_obs`] counter: bumps are suppressed at
/// [`classic_obs::ObsLevel::Off`], and clones *share* the underlying
/// atomic (the handle names one series, not a value).
pub use classic_obs::Counter;

/// Cumulative instrumentation counters (experiments E3/E4/E6).
///
/// Since the observability migration each field is a handle onto a
/// [`classic_obs`] registry series: [`Kb::new`] registers them in the
/// KB's own [`Registry`] so the `(obs-stats)` and `--metrics`
/// expositions read the same atomics the engine bumps.
/// `KbStats::default()` yields detached stand-ins (tests, ad-hoc use).
///
/// Kernel-level counters (interning, subsumption memo hit/miss, closure
/// rebuilds) live with the taxonomy's kernel; snapshot them via
/// [`Kb::kernel_stats`].
#[derive(Debug, Clone)]
pub struct KbStats {
    /// Top-level `assert-ind` calls accepted.
    pub assertions: Counter,
    /// Worklist items processed by the propagation engine.
    pub propagation_steps: Counter,
    /// Descriptions pushed onto fillers by `ALL` restrictions.
    pub fills_propagations: Counter,
    /// Fillers derived through `SAME-AS` co-reference.
    pub coref_propagations: Counter,
    /// Rule firings (each rule at most once per individual).
    pub rules_fired: Counter,
    /// Individual (re-)realizations performed.
    pub realizations: Counter,
    /// Node-level instance tests performed during realization/queries.
    pub instance_tests: Counter,
}

impl Default for KbStats {
    fn default() -> Self {
        KbStats {
            assertions: Counter::detached("classic_assertions_total"),
            propagation_steps: Counter::detached("classic_propagation_steps_total"),
            fills_propagations: Counter::detached("classic_fills_propagations_total"),
            coref_propagations: Counter::detached("classic_coref_propagations_total"),
            rules_fired: Counter::detached("classic_rules_fired_total"),
            realizations: Counter::detached("classic_realizations_total"),
            instance_tests: Counter::detached("classic_instance_tests_total"),
        }
    }
}

impl KbStats {
    /// Register the ABox series in `registry`. Panics on a name collision
    /// — a registry hosts exactly one `Kb`.
    pub(crate) fn register(registry: &Registry) -> KbStats {
        let c = |name: &str, help: &str| {
            registry
                .counter(name, help)
                .expect("kb metric registration")
        };
        KbStats {
            assertions: c(
                "classic_assertions_total",
                "top-level assert-ind calls accepted",
            ),
            propagation_steps: c(
                "classic_propagation_steps_total",
                "worklist items processed by the propagation engine",
            ),
            fills_propagations: c(
                "classic_fills_propagations_total",
                "descriptions pushed onto fillers by ALL restrictions",
            ),
            coref_propagations: c(
                "classic_coref_propagations_total",
                "fillers derived through SAME-AS co-reference",
            ),
            rules_fired: c("classic_rules_fired_total", "forward-chaining rule firings"),
            realizations: c(
                "classic_realizations_total",
                "individual (re-)realizations performed",
            ),
            instance_tests: c(
                "classic_instance_tests_total",
                "node-level instance tests during realization/queries",
            ),
        }
    }
}

/// Per-assertion report: what one accepted update caused (E6's
/// derived-facts-per-asserted-fact metric).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AssertReport {
    /// Worklist steps the propagation took.
    pub steps: u64,
    /// `ALL` restrictions propagated onto fillers.
    pub fills_propagated: u64,
    /// Role fillers derived via `SAME-AS`.
    pub corefs_derived: u64,
    /// Rules fired.
    pub rules_fired: u64,
    /// Individuals whose recognized concepts changed.
    pub reclassified: u64,
    /// Individuals created implicitly by being referenced.
    pub inds_created: u64,
}

/// Rollback journal for one update transaction.
#[derive(Default)]
pub(crate) struct Journal {
    /// First-touch snapshots of modified individuals.
    touched: HashMap<IndId, Individual>,
    /// Individuals created during the transaction (in creation order —
    /// they occupy the arena tail).
    created: Vec<IndId>,
    /// Reverse-filler edges added during the transaction.
    reverse_added: Vec<(IndId, IndId)>,
    /// Dependency records earned during the transaction; absorbed into
    /// [`Kb::deps`] on commit, dropped on rollback.
    pub(crate) supports: Vec<Support>,
    /// Committed dependency records removed during a retraction;
    /// restored on rollback.
    pub(crate) supports_removed: Vec<Support>,
    /// Reverse-filler edges removed during a retraction; restored on
    /// rollback.
    pub(crate) reverse_removed: Vec<(IndId, IndId)>,
}

impl Journal {
    pub(crate) fn touch(&mut self, kb: &Kb, id: IndId) {
        if !self.touched.contains_key(&id) && !self.created.contains(&id) {
            self.touched.insert(id, kb.inds[id.index()].clone());
        }
    }

    pub(crate) fn push_reverse(&mut self, filler: IndId, host: IndId) {
        self.reverse_added.push((filler, host));
    }

    pub(crate) fn note_support(&mut self, s: Support) {
        self.supports.push(s);
    }

    /// How many individuals this transaction created (bulk loads report
    /// it without exposing the journal's internals).
    pub(crate) fn created_count(&self) -> usize {
        self.created.len()
    }
}

/// The CLASSIC knowledge base.
///
/// ```
/// use classic_core::desc::Concept;
/// use classic_kb::Kb;
///
/// let mut kb = Kb::new();
/// kb.define_role("friend")?;
/// kb.define_concept("POPULAR", Concept::primitive(Concept::thing(), "popular"))?;
/// let friend = kb.schema().symbols.find_role("friend").unwrap();
/// // Rule: anyone with ≥3 friends is POPULAR.
/// kb.define_concept("GREGARIOUS", Concept::AtLeast(3, friend))?;
/// kb.assert_rule(
///     "GREGARIOUS",
///     Concept::Name(kb.schema().symbols.find_concept("POPULAR").unwrap()),
/// )?;
/// kb.create_ind("Rocky")?;
/// kb.assert_ind("Rocky", &Concept::AtLeast(3, friend))?;
/// // The rule fired: Rocky is now recognized as POPULAR.
/// let popular = kb.schema().symbols.find_concept("POPULAR").unwrap();
/// let rocky = kb.ind_id(kb.schema().symbols.find_individual("Rocky").unwrap())?;
/// assert!(kb.instances_of(popular)?.contains(&rocky));
/// # Ok::<(), classic_core::ClassicError>(())
/// ```
#[derive(Debug)]
pub struct Kb {
    pub(crate) schema: Schema,
    pub(crate) taxonomy: Taxonomy,
    pub(crate) inds: Vec<Individual>,
    pub(crate) by_name: HashMap<IndName, IndId>,
    /// Direct extensions: for each taxonomy node, the individuals whose
    /// *most specific* concepts include it. Instances of a node = direct
    /// extensions of the node and all its descendants.
    pub(crate) extensions: Vec<BTreeSet<IndId>>,
    pub(crate) rules: Vec<Rule>,
    pub(crate) rules_by_node: HashMap<NodeId, Vec<usize>>,
    /// filler → individuals having it as a role filler (the reclassification
    /// cascade of §5 walks this).
    pub(crate) reverse_fillers: HashMap<IndId, BTreeSet<IndId>>,
    /// Committed dependency records: why each individual's derived state
    /// is what it is. Consulted by retraction and `explain_provenance`.
    pub(crate) deps: DependencyJournal,
    /// Cumulative instrumentation counters.
    pub stats: KbStats,
    /// This KB's metric registry. Every series the engine bumps
    /// (`stats`, the kernel counters, per-op duration histograms, and
    /// anything a wrapper such as `DurableKb` registers) lives here; the
    /// registry is also enrolled in the process-global roll-up that
    /// `--metrics` dumps.
    pub(crate) obs: Arc<Registry>,
    /// Ring buffer of recent and slowest operation traces, populated
    /// only at [`classic_obs::ObsLevel::Full`].
    pub(crate) recorder: Arc<FlightRecorder>,
    /// Duration histograms for the top-level operations (Full only).
    assert_ns: Histogram,
    retract_ns: Histogram,
    pub(crate) propagate_ns: Histogram,
    /// Propagation worker threads. `0` = auto (one per available core).
    /// See [`Kb::set_propagation_threads`].
    pub(crate) propagation_threads: usize,
    /// Epochs with fewer worklist items than this run on the sequential
    /// path even when sharding is enabled; see
    /// [`Kb::set_propagation_min_batch`].
    pub(crate) propagation_min_batch: usize,
}

/// Default [`Kb::set_propagation_min_batch`] threshold: below this many
/// worklist items an epoch runs sequentially — thread fan-out costs more
/// than it saves on small fixpoints.
pub const DEFAULT_PROPAGATION_MIN_BATCH: usize = 64;

impl Default for Kb {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Kb {
    /// Deep-copy the logical state (schema, taxonomy, individuals, rules,
    /// dependency journal) while *sharing* the observability handles: the
    /// metric registry, flight recorder, and duration histograms are
    /// `Arc`'d, so a clone's operations keep counting against the original
    /// KB's series. This is exactly what a server read snapshot wants —
    /// queries against the snapshot show up in the tenant's metrics — and
    /// it avoids enrolling throwaway registries in the process-global
    /// roll-up for every snapshot taken.
    fn clone(&self) -> Kb {
        Kb {
            schema: self.schema.clone(),
            taxonomy: self.taxonomy.clone(),
            inds: self.inds.clone(),
            by_name: self.by_name.clone(),
            extensions: self.extensions.clone(),
            rules: self.rules.clone(),
            rules_by_node: self.rules_by_node.clone(),
            reverse_fillers: self.reverse_fillers.clone(),
            deps: self.deps.clone(),
            stats: self.stats.clone(),
            obs: Arc::clone(&self.obs),
            recorder: Arc::clone(&self.recorder),
            assert_ns: self.assert_ns.clone(),
            retract_ns: self.retract_ns.clone(),
            propagate_ns: self.propagate_ns.clone(),
            propagation_threads: self.propagation_threads,
            propagation_min_batch: self.propagation_min_batch,
        }
    }
}

impl Kb {
    /// An empty knowledge base (schema, taxonomy and data all empty).
    ///
    /// Each `Kb` owns a fresh metric [`Registry`] and a
    /// [`FlightRecorder`]; see [`Kb::metrics`] and
    /// [`Kb::flight_recorder`].
    pub fn new() -> Kb {
        let obs = Registry::new();
        // Enrolled in the process-global roll-up so `--trace-out` dumps
        // can collect traces from every KB in the process.
        let recorder = FlightRecorder::new_shared();
        let taxonomy = Taxonomy::with_obs(&obs, Arc::clone(&recorder));
        let stats = KbStats::register(&obs);
        let dh = |name: &str, help: &str| {
            obs.duration_histogram(name, help)
                .expect("kb metric registration")
        };
        let assert_ns = dh("classic_assert_ns", "assert-ind wall time (ns)");
        let retract_ns = dh(
            "classic_retract_ns",
            "retract-ind/retract-rule wall time (ns)",
        );
        let propagate_ns = dh(
            "classic_propagate_fixpoint_ns",
            "propagation fixpoint wall time (ns)",
        );
        let extensions = vec![BTreeSet::new(); taxonomy.len()];
        Kb {
            schema: Schema::new(),
            taxonomy,
            inds: Vec::new(),
            by_name: HashMap::new(),
            extensions,
            rules: Vec::new(),
            rules_by_node: HashMap::new(),
            reverse_fillers: HashMap::new(),
            deps: DependencyJournal::default(),
            stats,
            obs,
            recorder,
            assert_ns,
            retract_ns,
            propagate_ns,
            propagation_threads: std::env::var("CLASSIC_PROPAGATION_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            propagation_min_batch: DEFAULT_PROPAGATION_MIN_BATCH,
        }
    }

    // ---- propagation threading --------------------------------------------

    /// Set the number of worker threads the propagation fixpoint may use.
    /// `0` (the default) means auto: one shard per available core. `1`
    /// pins the sequential engine — the oracle the sharded engine is
    /// differential-tested against. The default can also be set
    /// process-wide with the `CLASSIC_PROPAGATION_THREADS` environment
    /// variable (read at [`Kb::new`]).
    ///
    /// Results are identical either way: shards exchange cross-shard
    /// effects through a deterministic per-epoch message barrier (see
    /// `propagate.rs`), so thread count affects wall time only.
    pub fn set_propagation_threads(&mut self, n: usize) {
        self.propagation_threads = n;
    }

    /// The resolved propagation thread count (≥ 1): the configured value,
    /// or the number of available cores when configured as auto (`0`).
    pub fn propagation_threads(&self) -> usize {
        match self.propagation_threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }

    /// Set the minimum epoch size (worklist items) for parallel
    /// processing; smaller epochs always run sequentially. Tuning knob
    /// for benchmarks and tests (lowering it forces small fixpoints onto
    /// the sharded path); the default is
    /// [`DEFAULT_PROPAGATION_MIN_BATCH`].
    pub fn set_propagation_min_batch(&mut self, n: usize) {
        self.propagation_min_batch = n.max(1);
    }

    // ---- accessors -------------------------------------------------------

    /// The schema (roles, named concepts, primitives, tests).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable schema access (interning names for ad-hoc expressions).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// The IS-A hierarchy over the defined concepts.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Snapshot of the subsumption kernel's counters (normal-form
    /// interning, memo hit/miss, closure rebuilds). Complements the ABox
    /// counters in [`Kb::stats`]; experiment E9 reports both.
    pub fn kernel_stats(&self) -> classic_core::KernelStats {
        self.taxonomy.kernel_stats()
    }

    /// This KB's metric registry: every series the engine bumps
    /// (assertions, propagation, subsumption kernel, durations).
    /// Snapshot or render it directly, or register additional series
    /// (the durable store does) so one exposition covers the whole
    /// stack.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The flight recorder holding the N most recent and slowest
    /// operation traces. Only populated at
    /// [`classic_obs::ObsLevel::Full`]; empty (but valid) otherwise.
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The individual stored at `id`.
    pub fn ind(&self, id: IndId) -> &Individual {
        &self.inds[id.index()]
    }

    /// Number of CLASSIC individuals in the database.
    pub fn ind_count(&self) -> usize {
        self.inds.len()
    }

    /// Every individual handle, in creation order.
    pub fn ind_ids(&self) -> impl Iterator<Item = IndId> {
        (0..self.inds.len()).map(IndId::from_index)
    }

    /// Resolve a created individual by name.
    pub fn ind_id(&self, name: IndName) -> Result<IndId> {
        self.by_name
            .get(&name)
            .copied()
            .ok_or(ClassicError::UnknownIndividual(name))
    }

    /// The forward-chaining rules, in assertion order. Includes retired
    /// (retracted) rules so indices stay stable; see [`Kb::active_rules`].
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The live (non-retired) rules, with their stable indices.
    pub fn active_rules(&self) -> impl Iterator<Item = (usize, &Rule)> {
        self.rules.iter().enumerate().filter(|(_, r)| !r.retired)
    }

    /// The committed dependency records (why each individual's derived
    /// state is what it is); consulted by retraction and explanation.
    pub fn deps(&self) -> &DependencyJournal {
        &self.deps
    }

    /// Normalize an ad-hoc concept expression against this KB's schema.
    pub fn normalize(&mut self, c: &Concept) -> Result<NormalForm> {
        classic_core::normal::normalize(c, &mut self.schema)
    }

    // ---- DDL --------------------------------------------------------------

    /// `define-role[name]` (§3.1).
    pub fn define_role(&mut self, name: &str) -> Result<RoleId> {
        self.schema.define_role(name)
    }

    /// Declare a single-valued role, usable in `SAME-AS` chains.
    pub fn define_attribute(&mut self, name: &str) -> Result<RoleId> {
        self.schema.define_attribute(name)
    }

    /// Register a host-language `TEST` function (§2.1.4).
    pub fn register_test<F>(&mut self, name: &str, f: F) -> TestId
    where
        F: Fn(&TestArg<'_>) -> bool + Send + Sync + 'static,
    {
        self.schema.register_test(name, f)
    }

    /// `define-concept[name, expr]` (§3.1): normalize, store, classify into
    /// the taxonomy, and *recognize* any existing individuals that already
    /// satisfy the new definition — the schema can grow "any time it seems
    /// useful" and the data immediately reflects it.
    pub fn define_concept(&mut self, name: &str, told: Concept) -> Result<ConceptName> {
        let cname = self.schema.define_concept(name, told)?;
        let nf = self.schema.concept_nf(cname)?.clone();
        let (node, _) = self.taxonomy.insert(cname, nf);
        while self.extensions.len() < self.taxonomy.len() {
            self.extensions.push(BTreeSet::new());
        }
        // Candidates for recognition: individuals already recognized under
        // every parent of the new node (any instance of the new concept
        // must be). For a fresh node under TOP that is every individual.
        let parents: Vec<NodeId> = self.taxonomy.node(node).parents.iter().copied().collect();
        let mut candidates: Option<BTreeSet<IndId>> = None;
        for p in parents {
            let inst = self.instances_of_node(p);
            candidates = Some(match candidates {
                None => inst,
                Some(c) => c.intersection(&inst).copied().collect(),
            });
        }
        let candidates = match candidates {
            Some(c) => c,
            None => self.ind_ids().collect(),
        };
        for id in candidates {
            self.realize(id);
        }
        Ok(cname)
    }

    // ---- individuals -------------------------------------------------------

    /// `create-ind[name]` (§3.2): "creates an individual … about whom
    /// nothing is known (except that it is a THING)". Establishes identity
    /// independent of properties.
    pub fn create_ind(&mut self, name: &str) -> Result<IndId> {
        let iname = self.schema.symbols.individual(name);
        if self.by_name.contains_key(&iname) {
            return Err(ClassicError::IndividualExists(iname));
        }
        Ok(self.create_ind_unchecked(iname))
    }

    pub(crate) fn create_ind_unchecked(&mut self, iname: IndName) -> IndId {
        let id = IndId::from_index(self.inds.len());
        self.inds.push(Individual::new(iname));
        self.by_name.insert(iname, id);
        self.realize(id);
        id
    }

    /// Get the individual named `name`, creating it if referenced for the
    /// first time (the paper's examples assert facts about `Volvo-17`
    /// without a prior `create-ind`).
    pub(crate) fn ensure_ind(&mut self, iname: IndName, journal: &mut Journal) -> IndId {
        match self.by_name.get(&iname) {
            Some(&id) => id,
            None => {
                let id = self.create_ind_unchecked(iname);
                journal.created.push(id);
                id
            }
        }
    }

    /// `assert-ind[name, desc]` (§3.2): incrementally add (possibly
    /// partial) information. Accepted atomically or rejected with a rolled
    /// back state and the clash that caused the rejection (§3.4).
    ///
    /// Recognition is automatic (§3.3): asserting the parts of a defined
    /// concept makes the individual an instance of it.
    ///
    /// ```
    /// use classic_core::Concept;
    /// use classic_kb::Kb;
    ///
    /// let mut kb = Kb::new();
    /// let enrolled = kb.define_role("enrolled-at")?;
    /// kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))?;
    /// let person = kb.schema().symbols.find_concept("PERSON").unwrap();
    /// kb.define_concept(
    ///     "STUDENT",
    ///     Concept::and([Concept::Name(person), Concept::AtLeast(1, enrolled)]),
    /// )?;
    /// let student = kb.schema().symbols.find_concept("STUDENT").unwrap();
    ///
    /// let rocky = kb.create_ind("Rocky")?;
    /// kb.assert_ind("Rocky", &Concept::Name(person))?;
    /// assert!(!kb.is_instance_of(rocky, student)?);
    /// kb.assert_ind("Rocky", &Concept::AtLeast(1, enrolled))?;
    /// assert!(kb.is_instance_of(rocky, student)?); // recognized, not asserted
    /// # Ok::<(), classic_core::ClassicError>(())
    /// ```
    pub fn assert_ind(&mut self, name: &str, desc: &Concept) -> Result<AssertReport> {
        let iname = self.schema.symbols.individual(name);
        let id = self.ind_id(iname)?;
        self.assert_ind_by_id(id, desc)
    }

    /// `assert-ind` addressed by handle.
    pub fn assert_ind_by_id(&mut self, id: IndId, desc: &Concept) -> Result<AssertReport> {
        let _span = classic_obs::span_timed(&self.recorder, "kb.assert", &self.assert_ns);
        let mut journal = Journal::default();
        match self.assert_txn(id, desc, &mut journal) {
            Ok(mut report) => {
                report.inds_created = journal.created.len() as u64;
                self.stats.assertions.bump();
                self.deps.absorb(journal.supports);
                Ok(report)
            }
            Err(e) => {
                self.rollback(journal);
                Err(e)
            }
        }
    }

    pub(crate) fn assert_txn(
        &mut self,
        id: IndId,
        desc: &Concept,
        journal: &mut Journal,
    ) -> Result<AssertReport> {
        journal.touch(self, id);
        // Auto-create any individuals the description references, so
        // FILLS/ONE-OF targets exist (paper examples rely on this).
        self.ensure_referenced_inds(desc, journal);
        let told_index = self.inds[id.index()].told.len();
        self.inds[id.index()].told.push(desc.clone());
        journal.note_support(Support {
            target: id,
            source: id,
            kind: SupportKind::Told { index: told_index },
        });
        // Conjoin the asserted expression *contextually* (CLOSE applies to
        // the currently known fillers — §3.2).
        let mut derived = std::mem::take(&mut self.inds[id.index()].derived);
        let res = conjoin_expression(desc, &mut self.schema, &mut derived);
        self.inds[id.index()].derived = derived;
        res?;
        let mut report = AssertReport::default();
        let mut work: VecDeque<IndId> = VecDeque::from([id]);
        Propagation::run(self, &mut work, journal, &mut report)?;
        Ok(report)
    }

    fn ensure_referenced_inds(&mut self, desc: &Concept, journal: &mut Journal) {
        match desc {
            Concept::OneOf(inds) | Concept::Fills(_, inds) => {
                for i in inds {
                    if let IndRef::Classic(n) = i {
                        self.ensure_ind(*n, journal);
                    }
                }
            }
            Concept::All(_, inner) => self.ensure_referenced_inds(inner, journal),
            Concept::And(parts) => {
                for p in parts {
                    self.ensure_referenced_inds(p, journal);
                }
            }
            Concept::Primitive { parent, .. } | Concept::DisjointPrimitive { parent, .. } => {
                self.ensure_referenced_inds(parent, journal)
            }
            _ => {}
        }
    }

    /// Hypothetical assertion: would `desc` be accepted, and what would it
    /// derive? The update is run through the full propagation engine and
    /// then rolled back unconditionally, leaving the database untouched
    /// either way.
    ///
    /// This is the question every configuration session asks ("can this
    /// part still be added?") and the natural complement of the paper's
    /// accept-or-reject update model: the same journal that makes rejected
    /// updates atomic (§3.4) makes accepted ones reversible for free.
    pub fn what_if(&mut self, name: &str, desc: &Concept) -> Result<AssertReport> {
        let iname = self.schema.symbols.individual(name);
        let id = self.ind_id(iname)?;
        let mut journal = Journal::default();
        let result = self.assert_txn(id, desc, &mut journal);
        self.rollback(journal);
        result
    }

    /// `retract-ind[name, desc]`: remove a previously *told* description
    /// and re-derive every affected individual from its surviving told
    /// facts — the destructive update the paper defers ("we … are now
    /// implementing … and will report on this at a future date", §3.2).
    ///
    /// `desc` must syntactically match a told assertion on the individual
    /// (most recent match is removed); derived information cannot be
    /// retracted directly, only by removing the told facts it rests on.
    /// The semantic contract is the rebuild oracle: after retraction the
    /// database is indistinguishable from one built fresh from the
    /// surviving told facts (see `tests/retract.rs`). Re-derivation walks
    /// the dependency journal's forward closure instead of rebuilding the
    /// whole KB.
    ///
    /// A retraction whose re-derivation fails (possible with
    /// order-dependent `CLOSE` told facts) is rejected atomically, like a
    /// failing `assert-ind`.
    pub fn retract_ind(&mut self, name: &str, desc: &Concept) -> Result<RetractReport> {
        let iname = self.schema.symbols.individual(name);
        let id = self.ind_id(iname)?;
        self.retract_ind_by_id(id, desc)
    }

    /// `retract-ind` addressed by handle.
    pub fn retract_ind_by_id(&mut self, id: IndId, desc: &Concept) -> Result<RetractReport> {
        let _span = classic_obs::span_timed(&self.recorder, "kb.retract", &self.retract_ns);
        let Some(pos) = self.inds[id.index()].told.iter().rposition(|t| t == desc) else {
            return Err(ClassicError::NotAsserted(self.inds[id.index()].name));
        };
        let mut journal = Journal::default();
        journal.touch(self, id);
        self.inds[id.index()].told.remove(pos);
        match self.rederive_after_retraction(BTreeSet::from([id]), &mut journal) {
            Ok(report) => {
                self.deps.absorb(journal.supports);
                Ok(report)
            }
            Err(e) => {
                self.rollback(journal);
                Err(e)
            }
        }
    }

    /// Reset every individual whose derived state may rest on the seeds,
    /// re-conjoin their surviving told facts, and propagate to a new fixed
    /// point. The caller has already removed the retracted told entry (or
    /// retired the retracted rule); on error the caller rolls back.
    fn rederive_after_retraction(
        &mut self,
        seeds: BTreeSet<IndId>,
        journal: &mut Journal,
    ) -> Result<RetractReport> {
        // RESET: the forward dependency closure — everyone whose derived
        // state may (transitively) rest on retracted information.
        let reset = self.deps.affected_from(&seeds);
        // ENQUEUE: RESET plus its transitive reverse-filler hosts. Hosts
        // keep their derived state (it does not depend on the retracted
        // fact — they are outside the closure) but must re-run so their
        // ALL restrictions and SAME-AS corefs re-push information the
        // reset wiped. Transitivity matters: a multi-step SAME-AS source
        // is only reachable through a chain of reverse-filler edges.
        // Computed before stale edges are removed below.
        let mut enqueue = reset.clone();
        let mut frontier: VecDeque<IndId> = reset.iter().copied().collect();
        while let Some(i) = frontier.pop_front() {
            if let Some(hosts) = self.reverse_fillers.get(&i) {
                for &h in hosts {
                    if enqueue.insert(h) {
                        frontier.push_back(h);
                    }
                }
            }
        }
        for &i in &enqueue {
            journal.touch(self, i);
        }
        // Void the old provenance of reset individuals (restored on
        // rollback), and the reverse-filler edges they host — their role
        // fillers are about to be recomputed, and propagation will
        // re-insert the surviving edges.
        journal
            .supports_removed
            .extend(self.deps.remove_targets(&reset));
        let mut stale_edges: Vec<(IndId, IndId)> = Vec::new();
        for (filler, hosts) in &self.reverse_fillers {
            for h in hosts {
                if reset.contains(h) {
                    stale_edges.push((*filler, *h));
                }
            }
        }
        for (filler, host) in &stale_edges {
            if let Some(set) = self.reverse_fillers.get_mut(filler) {
                set.remove(host);
                if set.is_empty() {
                    self.reverse_fillers.remove(filler);
                }
            }
        }
        journal.reverse_removed.extend(stale_edges);
        // Reset each member to its surviving told facts. Monotone caches
        // (fired rules, positive TEST hits) are only valid for growing
        // descriptions, so both are cleared.
        for &i in &reset {
            let mut derived = NormalForm::top();
            derived.layer = classic_core::Layer::Classic;
            let told: Vec<Concept> = self.inds[i.index()].told.clone();
            for (ix, t) in told.iter().enumerate() {
                conjoin_expression(t, &mut self.schema, &mut derived)?;
                journal.note_support(Support {
                    target: i,
                    source: i,
                    kind: SupportKind::Told { index: ix },
                });
            }
            let ind = &mut self.inds[i.index()];
            ind.derived = derived;
            ind.fired_rules.clear();
            ind.test_hits.lock().expect("test cache lock").clear();
        }
        // Propagate the whole affected region back to a fixed point.
        let mut report = AssertReport::default();
        let mut work: VecDeque<IndId> = enqueue.iter().copied().collect();
        Propagation::run(self, &mut work, journal, &mut report)?;
        Ok(RetractReport {
            reset: reset.len() as u64,
            requeued: enqueue.len() as u64,
            steps: report.steps,
            reclassified: report.reclassified,
        })
    }

    /// The *analysis cone* of a set of seed individuals: everyone whose
    /// derived state (and therefore whose ABox diagnostics) may differ
    /// after a mutation touching the seeds. This is the same region
    /// retraction re-derivation walks — the forward
    /// dependency closure plus its transitive reverse-filler hosts —
    /// computed read-only for the incremental analyzer. Cost is
    /// proportional to the cone, not the KB.
    pub fn analysis_cone(&self, seeds: &BTreeSet<IndId>) -> BTreeSet<IndId> {
        let mut cone = self.deps.affected_from(seeds);
        let mut frontier: VecDeque<IndId> = cone.iter().copied().collect();
        while let Some(i) = frontier.pop_front() {
            if let Some(hosts) = self.reverse_fillers.get(&i) {
                for &h in hosts {
                    if cone.insert(h) {
                        frontier.push_back(h);
                    }
                }
            }
        }
        cone
    }

    // ---- rules --------------------------------------------------------------

    /// `assert-rule[C1, C2]` (§3.3): attach a forward-chaining trigger to a
    /// *named* concept and immediately apply it to every currently
    /// recognized instance, propagating "until a fixed point is reached"
    /// (§5). If applying the rule makes any individual inconsistent the
    /// rule is rejected and the database left unchanged.
    pub fn assert_rule(&mut self, antecedent: &str, consequent: Concept) -> Result<usize> {
        let cname = self.schema.symbols.concept(antecedent);
        let node = self
            .taxonomy
            .node_of(cname)
            .ok_or(ClassicError::RuleOnUndefinedConcept(cname))?;
        // Validate the consequent normalizes at all.
        classic_core::normal::normalize(&consequent, &mut self.schema)?;
        let rule_ix = self.rules.len();
        self.rules.push(Rule {
            antecedent: cname,
            node,
            consequent,
            retired: false,
        });
        self.rules_by_node.entry(node).or_default().push(rule_ix);

        let mut journal = Journal::default();
        let instances: Vec<IndId> = self.instances_of_node(node).into_iter().collect();
        let mut work: VecDeque<IndId> = instances.into();
        for &i in &work {
            journal.touch(self, i);
        }
        let mut report = AssertReport::default();
        match Propagation::run(self, &mut work, &mut journal, &mut report) {
            Ok(()) => {
                self.deps.absorb(journal.supports);
                Ok(rule_ix)
            }
            Err(e) => {
                self.rollback(journal);
                let ix = self.rules_by_node.get_mut(&node).expect("just added");
                ix.retain(|&r| r != rule_ix);
                self.rules.pop();
                Err(e)
            }
        }
    }

    /// `retract-rule[C1, C2]`: retire the most recently asserted live rule
    /// with this antecedent and consequent, and re-derive every individual
    /// it fired on from surviving told facts (plus the still-active rules).
    ///
    /// The rule slot is retired, not removed — rule indices are stored in
    /// `fired_rules` and `rules_by_node` and must stay stable.
    pub fn retract_rule(
        &mut self,
        antecedent: &str,
        consequent: &Concept,
    ) -> Result<RetractReport> {
        let cname = self.schema.symbols.concept(antecedent);
        let Some(rule_ix) = self
            .rules
            .iter()
            .rposition(|r| !r.retired && r.antecedent == cname && r.consequent == *consequent)
        else {
            return Err(self.no_such_rule(antecedent, cname));
        };
        self.retract_rule_at(rule_ix)
    }

    /// `retract-rule` addressed by the stable rule id [`Kb::assert_rule`]
    /// returned (and that `(list-rules)` displays). Retires the rule and
    /// re-derives every individual it fired on, exactly like
    /// [`Kb::retract_rule`]; out-of-range or already-retired ids are
    /// rejected with a [`ClassicError::NoSuchRule`] naming the id.
    pub fn retract_rule_by_id(&mut self, rule_ix: usize) -> Result<RetractReport> {
        if rule_ix >= self.rules.len() {
            return Err(ClassicError::NoSuchRule {
                antecedent: format!("#{rule_ix}"),
                suggestion: Some(format!(
                    "rule ids range over 0..{} (see list-rules)",
                    self.rules.len()
                )),
            });
        }
        if self.rules[rule_ix].retired {
            return Err(ClassicError::NoSuchRule {
                antecedent: format!("#{rule_ix}"),
                suggestion: Some("that rule was already retracted".into()),
            });
        }
        self.retract_rule_at(rule_ix)
    }

    /// Retire the (live) rule at `rule_ix` and re-derive everything it
    /// fired on; restores the rule atomically if re-derivation fails.
    fn retract_rule_at(&mut self, rule_ix: usize) -> Result<RetractReport> {
        let _span = classic_obs::span_timed(&self.recorder, "kb.retract_rule", &self.retract_ns);
        let node = self.rules[rule_ix].node;
        self.rules[rule_ix].retired = true;
        if let Some(ix) = self.rules_by_node.get_mut(&node) {
            ix.retain(|&r| r != rule_ix);
        }
        let seeds: BTreeSet<IndId> = self
            .ind_ids()
            .filter(|i| self.inds[i.index()].fired_rules.contains(&rule_ix))
            .collect();
        let mut journal = Journal::default();
        match self.rederive_after_retraction(seeds, &mut journal) {
            Ok(report) => {
                self.deps.absorb(journal.supports);
                Ok(report)
            }
            Err(e) => {
                self.rollback(journal);
                self.rules[rule_ix].retired = false;
                self.rules_by_node.entry(node).or_default().push(rule_ix);
                Err(e)
            }
        }
    }

    /// Build the "unknown rule" error for `retract-rule`: names the
    /// antecedent as given and, when possible, points at what the caller
    /// probably meant — a near-miss antecedent among the live rules
    /// (typo), or a note that the antecedent's live rules carry different
    /// consequents.
    fn no_such_rule(&self, antecedent: &str, cname: ConceptName) -> ClassicError {
        let live: Vec<&Rule> = self.rules.iter().filter(|r| !r.retired).collect();
        let with_antecedent = live.iter().filter(|r| r.antecedent == cname).count();
        let suggestion = if with_antecedent > 0 {
            Some(format!(
                "{with_antecedent} live rule(s) on {antecedent:?} have a \
                 different consequent"
            ))
        } else {
            nearest_match(
                antecedent,
                live.iter()
                    .map(|r| self.schema.symbols.concept_name(r.antecedent)),
            )
            .map(|name| format!("did you mean {name:?}?"))
        };
        ClassicError::NoSuchRule {
            antecedent: antecedent.to_owned(),
            suggestion,
        }
    }

    // ---- extensions -----------------------------------------------------------

    /// All individuals recognized as instances of a taxonomy node (its
    /// direct extension plus those of every descendant).
    pub fn instances_of_node(&self, node: NodeId) -> BTreeSet<IndId> {
        if node == NodeId::TOP {
            return self.ind_ids().collect();
        }
        let mut out = self.extensions[node.index()].clone();
        for d in self.taxonomy.strict_descendants(node) {
            out.extend(self.extensions[d.index()].iter().copied());
        }
        out
    }

    /// Visit every instance of a node without materializing the set.
    /// Individuals with several most-specific concepts may be visited more
    /// than once; callers needing distinctness must deduplicate.
    pub fn for_each_instance(&self, node: NodeId, mut f: impl FnMut(IndId)) {
        if node == NodeId::TOP {
            for id in self.ind_ids() {
                f(id);
            }
            return;
        }
        for id in self.extensions[node.index()].iter().copied() {
            f(id);
        }
        for d in self.taxonomy.strict_descendants(node) {
            for id in self.extensions[d.index()].iter().copied() {
                f(id);
            }
        }
    }

    /// Cheap upper bound on a node's instance count (duplicates across
    /// multiple most-specific concepts counted repeatedly). Used to pick
    /// the most selective subsumer during retrieval.
    pub fn extension_size_bound(&self, node: NodeId) -> usize {
        if node == NodeId::TOP {
            return self.ind_count();
        }
        let mut n = self.extensions[node.index()].len();
        for d in self.taxonomy.strict_descendants(node) {
            n += self.extensions[d.index()].len();
        }
        n
    }

    /// Instances of a *named* concept (extensional query, §3.5.3).
    pub fn instances_of(&self, name: ConceptName) -> Result<BTreeSet<IndId>> {
        let node = self
            .taxonomy
            .node_of(name)
            .ok_or(ClassicError::UndefinedConcept(name))?;
        Ok(self.instances_of_node(node))
    }

    /// Direct extension of one node (individuals whose msc includes it).
    pub fn direct_extension(&self, node: NodeId) -> &BTreeSet<IndId> {
        &self.extensions[node.index()]
    }

    // ---- diagnostics ------------------------------------------------------------

    /// Verify the database's internal invariants, returning the first
    /// violation found. Intended for tests and debugging; a healthy `Kb`
    /// always passes:
    ///
    /// 1. no committed individual is incoherent (§3.4 — inconsistent
    ///    updates are rejected, never stored);
    /// 2. the extension index and per-individual realizations agree in
    ///    both directions;
    /// 3. every individual's `msc` is an antichain whose upward closure
    ///    is exactly `instance_nodes`.
    pub fn check_invariants(&self) -> Result<()> {
        let fail = |msg: String| {
            Err(ClassicError::Malformed(format!(
                "invariant violated: {msg}"
            )))
        };
        for id in self.ind_ids() {
            let ind = self.ind(id);
            if ind.derived.is_incoherent() {
                return fail(format!("individual {:?} is incoherent", ind.name));
            }
            for &node in &ind.msc {
                if !self.extensions[node.index()].contains(&id) {
                    return fail(format!(
                        "extension index missing {:?} at node {}",
                        ind.name,
                        node.index()
                    ));
                }
                // msc is an antichain: no msc member strictly above another.
                for &other in &ind.msc {
                    if other != node && self.taxonomy.strict_ancestors(other).contains(&node) {
                        return fail(format!("msc of {:?} is not an antichain", ind.name));
                    }
                }
            }
            // Upward closure of msc == instance_nodes.
            let mut closure: BTreeSet<NodeId> = ind.msc.clone();
            for &node in &ind.msc {
                closure.extend(self.taxonomy.strict_ancestors(node));
            }
            closure.remove(&NodeId::BOTTOM);
            let mut expected = ind.instance_nodes.clone();
            expected.insert(NodeId::TOP);
            closure.insert(NodeId::TOP);
            if closure != expected {
                return fail(format!(
                    "instance set of {:?} is not the closure of its msc",
                    ind.name
                ));
            }
        }
        let mut all_nodes: Vec<NodeId> = vec![NodeId::TOP, NodeId::BOTTOM];
        all_nodes.extend(self.taxonomy.interior_nodes());
        for node in all_nodes {
            for &id in &self.extensions[node.index()] {
                if !self.ind(id).msc.contains(&node) {
                    return fail(format!(
                        "extension at node {} lists a non-member individual",
                        node.index()
                    ));
                }
            }
        }
        Ok(())
    }

    // ---- rollback ---------------------------------------------------------------

    pub(crate) fn rollback(&mut self, journal: Journal) {
        // Supports earned during the transaction were never committed
        // (journal.supports is simply dropped); supports *removed* by a
        // failed retraction are restored.
        self.deps.absorb(journal.supports_removed);
        // Undo reverse-filler edges added during the transaction. This
        // must run before restoring removed edges: a retraction may
        // remove an edge and then re-add the same edge during
        // re-propagation, and the pre-transaction state has the edge.
        for (filler, host) in journal.reverse_added.into_iter().rev() {
            if let Some(set) = self.reverse_fillers.get_mut(&filler) {
                set.remove(&host);
                if set.is_empty() {
                    self.reverse_fillers.remove(&filler);
                }
            }
        }
        // Restore reverse-filler edges removed by a failed retraction.
        for (filler, host) in journal.reverse_removed {
            self.reverse_fillers.entry(filler).or_default().insert(host);
        }
        // Remove individuals created during the transaction (arena tail).
        for id in journal.created.into_iter().rev() {
            let ind = self.inds.pop().expect("created individual present");
            self.by_name.remove(&ind.name);
            for n in &ind.msc {
                self.extensions[n.index()].remove(&id);
            }
            self.reverse_fillers.remove(&id);
        }
        // Restore touched individuals and their extension entries.
        for (id, old) in journal.touched {
            if id.index() >= self.inds.len() {
                continue; // was a created individual, already popped
            }
            let cur_msc: Vec<NodeId> = self.inds[id.index()].msc.iter().copied().collect();
            for n in cur_msc {
                self.extensions[n.index()].remove(&id);
            }
            for n in &old.msc {
                self.extensions[n.index()].insert(id);
            }
            self.inds[id.index()] = old;
        }
    }
}

/// Nearest-match hint over a candidate name set: the closest candidate
/// by Levenshtein distance, if it is close enough to plausibly be a typo
/// (distance at most `max(2, len/3)` of the candidate). This is the same
/// acceptance rule `retract-rule` has always used; it is exported so
/// every "unknown name" surface (lint provenance, eval errors) offers
/// the same suggestion.
pub fn nearest_match<'a>(
    unknown: &str,
    candidates: impl IntoIterator<Item = &'a str>,
) -> Option<&'a str> {
    candidates
        .into_iter()
        .filter(|name| *name != unknown)
        .map(|name| (edit_distance(unknown, name), name))
        .min()
        .filter(|(d, name)| *d <= 2.max(name.len() / 3))
        .map(|(_, name)| name)
}

/// Levenshtein distance, used for the `retract-rule` nearest-match hint.
/// Rule antecedent names are short, so the quadratic table is fine.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use classic_core::desc::Concept;

    fn kb_with_person() -> Kb {
        let mut kb = Kb::new();
        kb.define_role("r").unwrap();
        kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
            .unwrap();
        kb
    }

    /// Loom model test for the instrumentation counters. Parallel query
    /// workers bump [`KbStats`] counters through a shared `&Kb`; the
    /// monotone-counter contract is that no increment is ever lost,
    /// regardless of interleaving. (Relaxed ordering is sufficient:
    /// `fetch_add` is atomic read-modify-write; ordering only affects
    /// *when* other threads observe the total, which readers never rely
    /// on — they read after joining.)
    #[test]
    fn counters_lose_no_increments_under_concurrent_bumps() {
        loom::model(|| {
            let stats = loom::sync::Arc::new(KbStats::default());
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let stats = loom::sync::Arc::clone(&stats);
                    loom::thread::spawn(move || {
                        for _ in 0..50 {
                            stats.instance_tests.bump();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(stats.instance_tests.get(), 150);
        });
    }

    #[test]
    fn retract_rule_by_id_undoes_the_rule_and_rejects_bad_ids() {
        let mut kb = kb_with_person();
        let person = kb.schema().symbols.find_concept("PERSON").unwrap();
        kb.define_concept("VIP", Concept::primitive(Concept::thing(), "vip"))
            .unwrap();
        let vip = kb.schema().symbols.find_concept("VIP").unwrap();
        kb.create_ind("X").unwrap();
        kb.assert_ind("X", &Concept::Name(person)).unwrap();
        let rule_id = kb.assert_rule("PERSON", Concept::Name(vip)).unwrap();
        let x = kb
            .ind_id(kb.schema().symbols.find_individual("X").unwrap())
            .unwrap();
        assert!(kb.is_instance_of(x, vip).unwrap());
        // Bad ids: out of range, then (after retraction) already retired.
        assert!(matches!(
            kb.retract_rule_by_id(rule_id + 1),
            Err(ClassicError::NoSuchRule { .. })
        ));
        kb.retract_rule_by_id(rule_id).unwrap();
        assert!(!kb.is_instance_of(x, vip).unwrap());
        assert_eq!(kb.active_rules().count(), 0);
        assert!(matches!(
            kb.retract_rule_by_id(rule_id),
            Err(ClassicError::NoSuchRule { .. })
        ));
    }

    #[test]
    fn unknown_individual_is_reported() {
        let mut kb = kb_with_person();
        let err = kb.assert_ind("Ghost", &Concept::thing()).unwrap_err();
        assert!(matches!(err, ClassicError::UnknownIndividual(_)));
    }

    #[test]
    fn instances_of_undefined_concept_is_an_error() {
        let kb = kb_with_person();
        let ghost = ConceptName::from_index(99);
        assert!(matches!(
            kb.instances_of(ghost),
            Err(ClassicError::UndefinedConcept(_))
        ));
    }

    #[test]
    fn rule_on_undefined_concept_is_rejected() {
        let mut kb = kb_with_person();
        let err = kb.assert_rule("GHOST", Concept::thing()).unwrap_err();
        assert!(matches!(err, ClassicError::RuleOnUndefinedConcept(_)));
        assert!(kb.rules().is_empty());
    }

    #[test]
    fn rule_contradicting_existing_instances_is_rejected_atomically() {
        let mut kb = kb_with_person();
        let r = kb.schema().symbols.find_role("r").unwrap();
        let person = kb.schema().symbols.find_concept("PERSON").unwrap();
        kb.create_ind("X").unwrap();
        kb.assert_ind("X", &Concept::Name(person)).unwrap();
        kb.assert_ind("X", &Concept::AtLeast(2, r)).unwrap();
        // Rule: every PERSON has at most 1 filler for r — contradicts X.
        let err = kb.assert_rule("PERSON", Concept::AtMost(1, r)).unwrap_err();
        assert!(matches!(err, ClassicError::Inconsistent { .. }));
        // The rule was fully removed and X is untouched.
        assert!(kb.rules().is_empty());
        let x = kb
            .ind_id(kb.schema().symbols.find_individual("X").unwrap())
            .unwrap();
        assert_eq!(kb.ind(x).derived.role(r).at_most, None);
        assert!(!kb.ind(x).derived.is_incoherent());
    }

    #[test]
    fn assert_by_id_equals_assert_by_name() {
        let mut kb = kb_with_person();
        let person = kb.schema().symbols.find_concept("PERSON").unwrap();
        let id = kb.create_ind("X").unwrap();
        kb.assert_ind_by_id(id, &Concept::Name(person)).unwrap();
        assert!(kb.is_instance_of(id, person).unwrap());
    }

    #[test]
    fn direct_extension_tracks_msc_only() {
        let mut kb = kb_with_person();
        let r = kb.schema().symbols.find_role("r").unwrap();
        let person = kb.schema().symbols.find_concept("PERSON").unwrap();
        let p = Concept::Name(person);
        kb.define_concept("BUSY", Concept::and([p.clone(), Concept::AtLeast(1, r)]))
            .unwrap();
        let busy = kb.schema().symbols.find_concept("BUSY").unwrap();
        let id = kb.create_ind("X").unwrap();
        kb.assert_ind("X", &p).unwrap();
        kb.assert_ind("X", &Concept::AtLeast(1, r)).unwrap();
        let person_node = kb.taxonomy().node_of(person).unwrap();
        let busy_node = kb.taxonomy().node_of(busy).unwrap();
        // X's most specific concept is BUSY, so it sits in BUSY's direct
        // extension, not PERSON's — but is an instance of both.
        assert!(kb.direct_extension(busy_node).contains(&id));
        assert!(!kb.direct_extension(person_node).contains(&id));
        assert!(kb.instances_of_node(person_node).contains(&id));
    }

    #[test]
    fn for_each_instance_covers_instances_of_node() {
        let mut kb = kb_with_person();
        let person = kb.schema().symbols.find_concept("PERSON").unwrap();
        for i in 0..5 {
            let name = format!("X{i}");
            kb.create_ind(&name).unwrap();
            kb.assert_ind(&name, &Concept::Name(person)).unwrap();
        }
        let node = kb.taxonomy().node_of(person).unwrap();
        let set = kb.instances_of_node(node);
        let mut visited = std::collections::BTreeSet::new();
        kb.for_each_instance(node, |id| {
            visited.insert(id);
        });
        assert_eq!(set, visited);
        assert!(kb.extension_size_bound(node) >= set.len());
    }

    #[test]
    fn normalize_interns_without_declaring() {
        let mut kb = kb_with_person();
        // An undeclared role in an ad-hoc expression is an error...
        let ghost = kb.schema_mut().symbols.role("ghost");
        let res = kb.normalize(&Concept::AtLeast(1, ghost));
        assert!(matches!(res, Err(ClassicError::UndefinedRole(_))));
        // ...and the failed normalize didn't corrupt the schema.
        assert!(kb.define_role("ghost").is_ok());
        assert!(kb.normalize(&Concept::AtLeast(1, ghost)).is_ok());
    }
}
