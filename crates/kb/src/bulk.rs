//! Batched assertion with a deferred fixpoint — the KB layer of the bulk
//! ingest pipeline (`docs/INGEST.md`).
//!
//! [`Kb::bulk_assert`] stages a *chunk* of rows — told-fact pushes and
//! contextual conjunction only — and then runs **one** propagation
//! fixpoint for the whole chunk, instead of one per assertion. Rule
//! firing, `ALL`/`SAME-AS` propagation, and realization all happen once,
//! over the union of the chunk's facts, through the same engine
//! (`Propagation::run`) the incremental path uses — including the
//! sharded execution mode when `Kb::set_propagation_threads` enables it.
//!
//! ## Equivalence with the sequential oracle
//!
//! The contract (pinned by the proptest oracle in
//! `tests/bulk_oracle.rs`): for any row sequence, the final state and
//! the per-row accept/reject outcomes equal a sequential replay of
//! `create-ind` (if the target is new) followed by `assert-ind`, row by
//! row. It holds for two reasons:
//!
//! * **Monotone rows batch soundly.** For descriptions without `TEST`
//!   or `CLOSE`, conjunction and propagation are monotone: derived
//!   normal forms only gain information as told facts accumulate, and
//!   incoherence (⊥) is upward-closed. So if the *combined* chunk
//!   reaches a clash-free fixpoint, every sequential prefix would have
//!   too (same told set ⇒ same unique fixpoint), and conversely a row
//!   that would clash sequentially also clashes in the combined run.
//! * **Everything else falls back.** A chunk whose combined fixpoint
//!   clashes (or overruns the step limit) is rolled back through the
//!   ordinary transaction journal and replayed row by row — the oracle
//!   path itself — recording per-row outcomes. Rows that syntactically
//!   or (via named concepts) semantically involve `CLOSE` or `TEST`
//!   never enter a chunk at all: `CLOSE` is contextual ("the fillers
//!   known *now*", §3.2) and `TEST` predicates are arbitrary host code,
//!   so neither is order-independent. Each such row is applied alone,
//!   in sequence.
//!
//! A rejected row leaves **no trace**: target creation, referenced
//! individuals, and the told fact all roll back in one transaction. So
//! the final state also equals a replay of just the *accepted* rows —
//! the invariant the store's accepted-only `(bulk-load …)` log record
//! depends on. (A rejected row's mere target, had it survived as an
//! empty individual, could never change any other row's outcome, so
//! dropping it cannot perturb accept/reject parity.)

use crate::deps::{Support, SupportKind};
use crate::individual::IndId;
use crate::kb::{AssertReport, Journal, Kb};
use crate::propagate::Propagation;
use classic_core::desc::Concept;
use classic_core::normal::{conjoin_expression, NormalForm};
use classic_core::schema::Schema;
use std::collections::{BTreeSet, VecDeque};

/// Default rows per batched fixpoint. Large enough to amortize the
/// propagation setup (and clear the sharded engine's min-batch
/// threshold), small enough that a clash-triggered sequential replay
/// stays cheap.
pub const DEFAULT_BULK_CHUNK: usize = 512;

/// Rejection details are capped at this many entries; `rejected` and
/// `row_accepted` stay exact regardless.
const MAX_REJECTION_DETAIL: usize = 64;

/// One bulk row: a target individual (by surface name, created on first
/// use) and the description to assert about it.
#[derive(Debug, Clone)]
pub struct BulkRow {
    /// Target individual name.
    pub name: String,
    /// Description asserted about the target.
    pub desc: Concept,
}

/// Why one row was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BulkRejection {
    /// Zero-based index into the submitted row slice.
    pub row: usize,
    /// The row's target individual.
    pub name: String,
    /// The rendered clash/error that rejected it.
    pub error: String,
}

/// What a [`Kb::bulk_assert`] run did. Infallible: per-row failures are
/// recorded here, not returned as `Err`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BulkReport {
    /// Rows submitted.
    pub rows: usize,
    /// Rows accepted (told fact now part of the KB).
    pub accepted: usize,
    /// Rows rejected (rolled back completely, including the target's
    /// creation if this row would have created it).
    pub rejected: usize,
    /// Individuals created — row targets and referenced individuals
    /// (`FILLS`/`ONE-OF` arguments) seen for the first time.
    pub inds_created: u64,
    /// Worklist steps across every fixpoint run.
    pub steps: u64,
    /// `ALL` restrictions propagated onto fillers.
    pub fills_propagated: u64,
    /// Role fillers derived via `SAME-AS`.
    pub corefs_derived: u64,
    /// Rules fired.
    pub rules_fired: u64,
    /// Individuals whose recognized concepts changed.
    pub reclassified: u64,
    /// Batched fixpoints run (excludes sequential barriers/fallbacks).
    pub chunks: u64,
    /// Chunks whose combined fixpoint clashed and were replayed row by
    /// row.
    pub sequential_fallbacks: u64,
    /// Per-row outcome, index-aligned with the submitted slice.
    pub row_accepted: Vec<bool>,
    /// Detail for the first `MAX_REJECTION_DETAIL` (64) rejections.
    pub rejections: Vec<BulkRejection>,
}

impl BulkReport {
    fn absorb(&mut self, r: &AssertReport) {
        self.steps += r.steps;
        self.fills_propagated += r.fills_propagated;
        self.corefs_derived += r.corefs_derived;
        self.rules_fired += r.rules_fired;
        self.reclassified += r.reclassified;
    }
}

/// Must this row be applied alone, in submission order? `CLOSE` is
/// contextual and `TEST` predicates are arbitrary (possibly
/// non-monotone) host code; both are checked syntactically, and `TEST`
/// also through named concepts' normal forms (an unresolvable name is
/// conservatively order-sensitive — the sequential path will produce
/// the real error).
fn order_sensitive(schema: &Schema, desc: &Concept) -> bool {
    match desc {
        Concept::Close(_) | Concept::Test(_) => true,
        Concept::Name(c) => schema.concept_nf(*c).map_or(true, nf_mentions_tests),
        Concept::And(parts) => parts.iter().any(|p| order_sensitive(schema, p)),
        Concept::All(_, inner) => order_sensitive(schema, inner),
        Concept::Primitive { parent, .. } | Concept::DisjointPrimitive { parent, .. } => {
            order_sensitive(schema, parent)
        }
        _ => false,
    }
}

fn nf_mentions_tests(nf: &NormalForm) -> bool {
    !nf.tests.is_empty()
        || nf
            .roles
            .values()
            .any(|rr| rr.all.as_ref().is_some_and(|all| nf_mentions_tests(all)))
}

impl Kb {
    /// Assert `rows` in bulk with the default chunk size
    /// ([`DEFAULT_BULK_CHUNK`]). See [`Kb::bulk_assert_chunked`].
    ///
    /// ```
    /// use classic_core::desc::{Concept, IndRef};
    /// use classic_kb::{BulkRow, Kb};
    ///
    /// let mut kb = Kb::new();
    /// let friend = kb.define_role("friend")?;
    /// let rows: Vec<BulkRow> = (0..100)
    ///     .map(|i| BulkRow {
    ///         name: format!("p{i}"),
    ///         desc: Concept::Fills(friend, vec![IndRef::Host(classic_core::host::HostValue::Int((i * 7) % 100))]),
    ///     })
    ///     .collect();
    /// let report = kb.bulk_assert(&rows);
    /// assert_eq!(report.accepted, 100);
    /// assert_eq!(report.inds_created, 100);
    /// assert_eq!(report.chunks, 1); // one fixpoint for all 100 rows
    /// # Ok::<(), classic_core::ClassicError>(())
    /// ```
    pub fn bulk_assert(&mut self, rows: &[BulkRow]) -> BulkReport {
        self.bulk_assert_chunked(rows, DEFAULT_BULK_CHUNK)
    }

    /// Assert `rows` in micro-batches of at most `chunk_size`, running
    /// one propagation fixpoint per batch. Infallible: the returned
    /// [`BulkReport`] carries per-row outcomes; the final state always
    /// equals the sequential `create-ind` + `assert-ind` replay (see
    /// the module docs for the argument and the caveats).
    pub fn bulk_assert_chunked(&mut self, rows: &[BulkRow], chunk_size: usize) -> BulkReport {
        let chunk_size = chunk_size.max(1);
        let metrics = self.metrics().clone();
        let bulk_ns = metrics
            .get_or_duration_histogram("classic_bulk_assert_ns", "bulk_assert wall time (ns)")
            .ok();
        let _span = bulk_ns
            .as_ref()
            .map(|h| classic_obs::span_timed(self.flight_recorder(), "kb.bulk_assert", h));

        let mut report = BulkReport {
            rows: rows.len(),
            row_accepted: vec![false; rows.len()],
            ..BulkReport::default()
        };
        let mut ix = 0;
        while ix < rows.len() {
            if order_sensitive(self.schema(), &rows[ix].desc) {
                self.bulk_row_sequential(ix, &rows[ix], &mut report);
                ix += 1;
                continue;
            }
            // The chunk runs to the size cap or the next order-sensitive
            // row, whichever comes first.
            let cap = (ix + chunk_size).min(rows.len());
            let end = rows[ix..cap]
                .iter()
                .position(|r| order_sensitive(self.schema(), &r.desc))
                .map_or(cap, |p| ix + p);
            self.bulk_chunk(ix, &rows[ix..end], &mut report);
            ix = end;
        }

        let bump = |name: &str, help: &str, n: u64| {
            if n > 0 {
                if let Ok(c) = metrics.get_or_counter(name, help) {
                    c.add(n);
                }
            }
        };
        bump(
            "classic_bulk_rows_total",
            "rows offered to bulk_assert",
            report.rows as u64,
        );
        bump(
            "classic_bulk_rows_accepted_total",
            "bulk rows accepted",
            report.accepted as u64,
        );
        bump(
            "classic_bulk_rows_rejected_total",
            "bulk rows rejected",
            report.rejected as u64,
        );
        bump(
            "classic_bulk_chunks_total",
            "batched fixpoints run by bulk_assert",
            report.chunks,
        );
        bump(
            "classic_bulk_sequential_fallbacks_total",
            "bulk chunks replayed row-by-row after a combined clash",
            report.sequential_fallbacks,
        );
        report
    }

    /// Stage every row of `chunk` (told push + contextual conjunction),
    /// then run one fixpoint. On any failure: roll back and replay the
    /// chunk through the sequential oracle path.
    fn bulk_chunk(&mut self, base: usize, chunk: &[BulkRow], report: &mut BulkReport) {
        report.chunks += 1;
        let mut journal = Journal::default();
        let mut work: VecDeque<IndId> = VecDeque::new();
        let mut enqueued: BTreeSet<IndId> = BTreeSet::new();
        let mut staged_ok = true;
        for row in chunk {
            let iname = self.schema.symbols.individual(&row.name);
            let id = self.ensure_ind(iname, &mut journal);
            journal.touch(self, id);
            self.ensure_referenced_inds_pub(&row.desc, &mut journal);
            let told_index = self.inds[id.index()].told.len();
            self.inds[id.index()].told.push(row.desc.clone());
            journal.note_support(Support {
                target: id,
                source: id,
                kind: SupportKind::Told { index: told_index },
            });
            let mut derived = std::mem::take(&mut self.inds[id.index()].derived);
            let res = conjoin_expression(&row.desc, &mut self.schema, &mut derived);
            self.inds[id.index()].derived = derived;
            if res.is_err() {
                staged_ok = false;
                break;
            }
            if enqueued.insert(id) {
                work.push_back(id);
            }
        }
        let mut chunk_report = AssertReport::default();
        let ok =
            staged_ok && Propagation::run(self, &mut work, &mut journal, &mut chunk_report).is_ok();
        if ok {
            report.inds_created += journal.created_count() as u64;
            self.stats.assertions.add(chunk.len() as u64);
            self.deps.absorb(journal.supports);
            report.accepted += chunk.len();
            for slot in &mut report.row_accepted[base..base + chunk.len()] {
                *slot = true;
            }
            report.absorb(&chunk_report);
            return;
        }
        // The combined fixpoint clashed (or a row's conjunction did):
        // restore the pre-chunk state and replay through the oracle path
        // for exact per-row accept/reject parity.
        self.rollback(journal);
        report.sequential_fallbacks += 1;
        for (off, row) in chunk.iter().enumerate() {
            self.bulk_row_sequential(base + off, row, report);
        }
    }

    /// The oracle path for one row: `create-ind` (if the target is new)
    /// and `assert-ind` as **one** transaction, so a rejection rolls
    /// back the target's creation too and the row leaves no trace.
    fn bulk_row_sequential(&mut self, row_ix: usize, row: &BulkRow, report: &mut BulkReport) {
        let iname = self.schema.symbols.individual(&row.name);
        let mut journal = Journal::default();
        let id = self.ensure_ind(iname, &mut journal);
        match self.assert_txn(id, &row.desc, &mut journal) {
            Ok(r) => {
                report.inds_created += journal.created_count() as u64;
                self.stats.assertions.bump();
                self.deps.absorb(journal.supports);
                report.accepted += 1;
                report.row_accepted[row_ix] = true;
                report.absorb(&r);
            }
            Err(e) => {
                self.rollback(journal);
                report.rejected += 1;
                if report.rejections.len() < MAX_REJECTION_DETAIL {
                    report.rejections.push(BulkRejection {
                        row: row_ix,
                        name: row.name.clone(),
                        error: e.to_string(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classic_core::desc::IndRef;

    /// Fresh KB with roles `r`,`s`, a defined concept, and a rule — so
    /// chunked runs exercise propagation, recognition, and rule firing.
    fn base_kb() -> Kb {
        let mut kb = Kb::new();
        kb.define_role("r").unwrap();
        kb.define_role("s").unwrap();
        let r = kb.schema().symbols.find_role("r").unwrap();
        kb.define_concept("LINKED", Concept::AtLeast(1, r)).unwrap();
        let s = kb.schema().symbols.find_role("s").unwrap();
        kb.assert_rule("LINKED", Concept::AtMost(8, s)).unwrap();
        kb
    }

    /// Replay `rows` through the sequential oracle on `kb`: accept
    /// flags come from a row-by-row create+assert scratch run, and the
    /// final oracle state replays only the accepted rows (a rejected
    /// row leaves no trace — see the module docs).
    fn oracle_replay(kb: &mut Kb, rows: &[BulkRow]) -> Vec<bool> {
        let mut scratch = kb.clone();
        let flags: Vec<bool> = rows
            .iter()
            .map(|row| {
                let _ = scratch.create_ind(&row.name);
                scratch.assert_ind(&row.name, &row.desc).is_ok()
            })
            .collect();
        for (row, &ok) in rows.iter().zip(&flags) {
            if ok {
                let _ = kb.create_ind(&row.name);
                kb.assert_ind(&row.name, &row.desc)
                    .expect("accepted row must replay");
            }
        }
        flags
    }

    /// Same observable ABox: same names, and per-name equal derived
    /// normal forms and told-fact counts.
    fn assert_same_abox(a: &Kb, b: &Kb) {
        assert_eq!(a.inds.len(), b.inds.len(), "individual count");
        for (iname, &ida) in &a.by_name {
            let idb = *b.by_name.get(iname).expect("name present in both");
            let (ia, ib) = (&a.inds[ida.index()], &b.inds[idb.index()]);
            assert_eq!(ia.told.len(), ib.told.len(), "told count");
            assert_eq!(ia.derived, ib.derived, "derived NF");
        }
    }

    fn fills_host(kb: &Kb, role: &str, v: i64) -> Concept {
        let r = kb.schema().symbols.find_role(role).unwrap();
        Concept::Fills(r, vec![IndRef::Host(classic_core::host::HostValue::Int(v))])
    }

    #[test]
    fn clean_batch_matches_oracle_with_one_fixpoint_per_chunk() {
        let mut kb = base_kb();
        let rows: Vec<BulkRow> = (0..40)
            .map(|i| BulkRow {
                name: format!("p{}", i % 10), // duplicate targets in-chunk
                desc: fills_host(&kb, "r", i),
            })
            .collect();
        let mut oracle = base_kb();
        let expect = oracle_replay(&mut oracle, &rows);

        let report = kb.bulk_assert_chunked(&rows, 16);
        assert_eq!(report.accepted, 40);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.chunks, 3); // ⌈40/16⌉
        assert_eq!(report.sequential_fallbacks, 0);
        assert_eq!(report.row_accepted, expect);
        assert_eq!(report.inds_created, 10);
        assert_same_abox(&kb, &oracle);
    }

    #[test]
    fn clashing_chunk_falls_back_with_per_row_parity() {
        let mut kb = base_kb();
        let r = kb.schema().symbols.find_role("r").unwrap();
        let rows = vec![
            BulkRow {
                name: "a".into(),
                desc: fills_host(&kb, "r", 1),
            },
            BulkRow {
                name: "a".into(),
                desc: Concept::AtMost(0, r), // clashes with the FILLS above
            },
            BulkRow {
                name: "b".into(),
                desc: fills_host(&kb, "r", 2),
            },
        ];
        let mut oracle = base_kb();
        let expect = oracle_replay(&mut oracle, &rows);
        assert_eq!(expect, vec![true, false, true]);

        let report = kb.bulk_assert_chunked(&rows, 512);
        assert_eq!(report.sequential_fallbacks, 1);
        assert_eq!(report.row_accepted, expect);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.rejections.len(), 1);
        assert_eq!(report.rejections[0].row, 1);
        assert_same_abox(&kb, &oracle);
    }

    #[test]
    fn close_rows_are_sequential_barriers() {
        let mut kb = base_kb();
        let r = kb.schema().symbols.find_role("r").unwrap();
        let rows = vec![
            BulkRow {
                name: "a".into(),
                desc: fills_host(&kb, "r", 1),
            },
            BulkRow {
                name: "a".into(),
                desc: Concept::Close(r), // contextual: closes over {1}
            },
            BulkRow {
                name: "a".into(),
                desc: fills_host(&kb, "r", 2), // must now be rejected
            },
        ];
        let mut oracle = base_kb();
        let expect = oracle_replay(&mut oracle, &rows);
        assert_eq!(expect, vec![true, true, false]);

        let report = kb.bulk_assert(&rows);
        assert_eq!(report.row_accepted, expect);
        assert_same_abox(&kb, &oracle);
    }

    #[test]
    fn rejected_row_leaves_no_trace() {
        let mut kb = base_kb();
        let r = kb.schema().symbols.find_role("r").unwrap();
        let v = kb.schema_mut().symbols.individual("V");
        // Self-clashing row on a brand-new target: both the target and
        // the referenced individual `V` must roll back.
        let rows = vec![BulkRow {
            name: "ghost".into(),
            desc: Concept::and([
                Concept::AtMost(0, r),
                Concept::Fills(r, vec![IndRef::Classic(v)]),
            ]),
        }];
        let report = kb.bulk_assert(&rows);
        assert_eq!((report.accepted, report.rejected), (0, 1));
        assert_eq!(report.inds_created, 0);
        let ghost = kb.schema().symbols.find_individual("ghost").unwrap();
        assert!(kb.ind_id(ghost).is_err(), "ghost target must roll back");
        assert!(kb.ind_id(v).is_err(), "referenced ind must roll back");
        assert_same_abox(&kb, &base_kb());
    }

    #[test]
    fn rule_firing_matches_oracle_across_chunk_boundary() {
        let mut kb = base_kb();
        // Row i fills r on x{i}; the LINKED rule then caps s at 8. A
        // later row demanding ≥9 s-fillers must be rejected either way.
        let s = kb.schema().symbols.find_role("s").unwrap();
        let mut rows: Vec<BulkRow> = (0..6)
            .map(|i| BulkRow {
                name: format!("x{i}"),
                desc: fills_host(&kb, "r", i),
            })
            .collect();
        rows.push(BulkRow {
            name: "x0".into(),
            desc: Concept::AtLeast(9, s),
        });
        let mut oracle = base_kb();
        let expect = oracle_replay(&mut oracle, &rows);
        assert_eq!(expect.last(), Some(&false));

        let report = kb.bulk_assert_chunked(&rows, 4);
        assert_eq!(report.row_accepted, expect);
        assert!(report.rules_fired >= 6);
        assert_same_abox(&kb, &oracle);
    }
}
