//! The completion engine: propagation, recognition, and rule firing.
//!
//! "CLASSIC can actively discover new information about objects from
//! several sources: it can recognize new classes under which an object
//! falls based on a description of the object, it can propagate some
//! deductive consequences of DB updates, it has simple procedural
//! recognizers, and it supports a limited form of forward-chaining rules"
//! (paper abstract). This module implements all four, as a worklist that
//! runs to a fixed point:
//!
//! 1. **`ALL` propagation** — a value restriction applies to every known
//!    filler, so the restriction is conjoined onto each filler's derived
//!    description (and host fillers are checked against it).
//! 2. **Co-reference propagation** — `SAME-AS` chains that resolve on one
//!    side derive the filler on the other (§3.3: asserting
//!    `SAME-AS((likes)(thing-driven))` on Rocky fills `likes` with
//!    `Volvo-17`).
//! 3. **Recognition / realization** — "individuals … are classified
//!    whenever new information about them is asserted, so that each
//!    individual is associated with the lowest concept(s) in the schema
//!    whose description(s) it satisfies" (§5). Recognition runs registered
//!    `TEST` functions as procedural recognizers.
//! 4. **Rules** — fired when an individual is newly recognized under the
//!    antecedent concept, each rule at most once per individual; "rules
//!    continue propagating until a fixed point is reached" (§5).
//!
//! Termination is the paper's own argument: membership is monotone
//! ("every individual can move into a class at most once, since there is
//! no removal"), derived descriptions only grow within a finite lattice of
//! conjoined sub-descriptions, and each rule fires at most once per
//! individual — so the fixpoint is bounded by #classes × #individuals
//! (experiment E4 measures this).

use crate::deps::{Support, SupportKind};
use crate::individual::IndId;
use crate::kb::{AssertReport, Journal, Kb};
use crate::shard::{Effect, MessageBus, Partition, Tagged, TargetRef};
use classic_core::desc::{IndRef, Path};
use classic_core::error::{Clash, ClassicError, Result};
use classic_core::host::HostValue;
use classic_core::normal::{conjoin_expression, NormalForm, RoleRestriction};
use classic_core::schema::TestArg;
use classic_core::subsume::subsumes;
use classic_core::symbol::RoleId;
use classic_core::taxonomy::NodeId;
use std::collections::{BTreeSet, VecDeque};

/// How a `SAME-AS` path resolves against the current state.
pub(crate) enum PathResolution {
    /// Every step has a known filler; this is the value at the end.
    Complete(IndRef),
    /// All but the final step resolve; the holder lacks a filler for the
    /// last role, so a derived value can be asserted there.
    AtLastStep { holder: IndId, last: RoleId },
    /// Some earlier step is unresolved (nothing can be derived yet —
    /// CLASSIC never invents anonymous individuals).
    Unresolved,
}

/// Namespace for the worklist driver.
pub(crate) struct Propagation;

impl Propagation {
    /// Drain the worklist to a fixed point. On error the caller rolls the
    /// journal back.
    ///
    /// Dispatches on [`Kb::propagation_threads`]: `1` runs the classic
    /// sequential worklist; above that, wide epochs are planned in
    /// parallel across arena shards and their effects applied at a
    /// deterministic barrier (see [`Propagation::run_sharded`]). Both
    /// paths reach the same fixed point — the sequential engine is the
    /// oracle the sharded one is differential-tested against.
    pub(crate) fn run(
        kb: &mut Kb,
        work: &mut VecDeque<IndId>,
        journal: &mut Journal,
        report: &mut AssertReport,
    ) -> Result<()> {
        let _span = classic_obs::span_timed(&kb.recorder, "propagate.fixpoint", &kb.propagate_ns);
        let threads = kb.propagation_threads();
        if threads > 1 {
            Self::run_sharded(kb, work, journal, report, threads)
        } else {
            Self::run_sequential(kb, work, journal, report)
        }
    }

    /// Generous safety bound far above the paper's #classes ×
    /// #individuals argument (each enqueue follows an actual monotone
    /// change; re-processing without change never re-enqueues).
    /// Recomputed as the fixpoint runs: rule firings and `ALL`
    /// propagation create individuals mid-fixpoint (and `define`-style
    /// surface scripts interleave DDL), so a bound frozen at entry can go
    /// stale against the count that actually justifies it.
    fn step_limit(kb: &Kb) -> u64 {
        1_000_000u64.max(
            (kb.ind_count() as u64 + 16)
                * (kb.taxonomy().len() as u64 + kb.rules().len() as u64 + 16)
                * 8,
        )
    }

    /// The non-termination diagnosis: names the step count, the bound it
    /// overran, and the individual being processed when it did.
    fn fixpoint_overrun(kb: &Kb, steps: u64, limit: u64, at: IndId) -> ClassicError {
        let name = kb.schema.symbols.individual_name(kb.inds[at.index()].name);
        ClassicError::Malformed(format!(
            "propagation failed to reach a fixed point within bounds \
             (step {steps} exceeded limit {limit} while processing {name:?})"
        ))
    }

    /// The classic single-threaded worklist loop.
    fn run_sequential(
        kb: &mut Kb,
        work: &mut VecDeque<IndId>,
        journal: &mut Journal,
        report: &mut AssertReport,
    ) -> Result<()> {
        let mut steps = 0u64;
        while let Some(id) = work.pop_front() {
            steps += 1;
            report.steps += 1;
            kb.stats.propagation_steps.bump();
            if steps > Self::step_limit(kb) {
                return Err(Self::fixpoint_overrun(kb, steps, Self::step_limit(kb), id));
            }
            kb.process_one(id, work, journal, report)?;
        }
        classic_obs::event("steps", steps);
        Ok(())
    }

    /// The sharded fixpoint: bulk-synchronous epochs over the individual
    /// arena.
    ///
    /// Each epoch drains the worklist into a sorted, deduplicated batch.
    /// Small batches (below [`Kb::set_propagation_min_batch`]) run
    /// through the sequential step directly — fan-out costs more than it
    /// saves. Wide batches are split by contiguous-range ownership
    /// ([`Partition`]) and *planned* in parallel on scoped threads: each
    /// shard runs the read-only [`Kb::plan_one`] over its items against
    /// the shared epoch-start state and emits [`Effect`] messages onto a
    /// [`MessageBus`]. At the barrier the coordinator drains the bus in
    /// canonical `(queue, src, seq)` order and applies the effects
    /// sequentially through the same journal-tracked mutations the
    /// sequential engine uses — so rollback, provenance, and the final
    /// state are identical, and the parallelism is confined to the
    /// expensive read side (recognition sweeps, subsumption checks).
    ///
    /// A conjunction that changes its target re-enqueues both the target
    /// *and* the planning source: within one sequential `process_one`
    /// pass, later phases see earlier phases' writes, and re-planning the
    /// source against the post-apply state reproduces exactly that
    /// visibility one epoch later (a no-op once nothing changes —
    /// monotone, so the fixed points coincide).
    fn run_sharded(
        kb: &mut Kb,
        work: &mut VecDeque<IndId>,
        journal: &mut Journal,
        report: &mut AssertReport,
        shards: usize,
    ) -> Result<()> {
        let mut steps = 0u64;
        loop {
            let mut batch: Vec<IndId> = work.drain(..).collect();
            batch.sort_unstable();
            batch.dedup();
            if batch.is_empty() {
                break;
            }
            if batch.len() < kb.propagation_min_batch {
                for id in batch {
                    steps += 1;
                    report.steps += 1;
                    kb.stats.propagation_steps.bump();
                    if steps > Self::step_limit(kb) {
                        return Err(Self::fixpoint_overrun(kb, steps, Self::step_limit(kb), id));
                    }
                    kb.process_one(id, work, journal, report)?;
                }
                continue;
            }

            steps += batch.len() as u64;
            report.steps += batch.len() as u64;
            kb.stats.propagation_steps.add(batch.len() as u64);
            let limit = Self::step_limit(kb);
            if steps > limit {
                return Err(Self::fixpoint_overrun(kb, steps, limit, batch[0]));
            }

            // ---- parallel compute phase ---------------------------------
            let part = Partition::new(kb.inds.len(), shards);
            let bus: MessageBus<Effect> = MessageBus::new(part.queues());
            let mut lists: Vec<Vec<IndId>> = vec![Vec::new(); shards];
            for id in batch {
                lists[part.owner(id)].push(id);
            }
            {
                let kb_ref: &Kb = kb;
                let bus_ref = &bus;
                let part_ref = &part;
                std::thread::scope(|scope| {
                    for (six, list) in lists.iter().enumerate() {
                        if list.is_empty() {
                            continue;
                        }
                        scope.spawn(move || {
                            let _span = classic_obs::span(&kb_ref.recorder, "propagate.shard");
                            let mut seq = 0u32;
                            for &id in list {
                                kb_ref.plan_one(id, &mut |effect| {
                                    let dest = part_ref.dest(&effect);
                                    bus_ref.push(
                                        dest,
                                        Tagged {
                                            src: six as u32,
                                            seq,
                                            payload: effect,
                                        },
                                    );
                                    seq += 1;
                                });
                            }
                            classic_obs::event("planned", list.len() as u64);
                        });
                    }
                });
            }

            // ---- epoch barrier: gauges, canonical drain, apply ----------
            for (qix, depth) in bus.depths().into_iter().enumerate() {
                if let Ok(g) = kb.obs.get_or_gauge(
                    &format!("classic_propagate_shard_queue_depth_{qix}"),
                    "cross-shard effect queue depth at the epoch barrier",
                ) {
                    g.set(depth as u64);
                }
            }
            for msg in bus.drain_sorted() {
                kb.apply_effect(msg.payload, journal, work, report)?;
            }
        }
        classic_obs::event("steps", steps);
        Ok(())
    }
}

impl Kb {
    /// One worklist step for one individual: check coherence, push
    /// consequences outward, re-recognize, fire rules.
    fn process_one(
        &mut self,
        id: IndId,
        work: &mut VecDeque<IndId>,
        journal: &mut Journal,
        report: &mut AssertReport,
    ) -> Result<()> {
        journal.touch(self, id);
        if let Some(clash) = self.inds[id.index()].derived.clash() {
            return Err(ClassicError::Inconsistent {
                individual: Some(self.inds[id.index()].name),
                reason: clash.clone(),
            });
        }

        // ---- phase 1: ALL-propagation to fillers --------------------------
        let role_plan: Vec<(RoleId, Option<NormalForm>, Vec<IndRef>)> = self.inds[id.index()]
            .derived
            .roles
            .iter()
            .map(|(&r, rr)| {
                (
                    r,
                    rr.all.as_deref().cloned(),
                    rr.fillers.iter().cloned().collect(),
                )
            })
            .collect();
        for (r, all, fillers) in role_plan {
            for f in fillers {
                match f {
                    IndRef::Classic(name) => {
                        let fid = self.ensure_ind(name, journal);
                        if self.reverse_fillers.entry(fid).or_default().insert(id) {
                            journal.note_reverse_edge(fid, id);
                        }
                        if let Some(d) = &all {
                            if self.conjoin_nf(fid, d, journal, work, report)? {
                                self.stats.fills_propagations.bump();
                                report.fills_propagated += 1;
                            }
                            // Recorded whether or not the conjunction
                            // changed anything: the support set must be a
                            // function of the fixed point, not of arrival
                            // order, or provenance would not survive
                            // retraction (see tests/retract.rs).
                            journal.note_support(Support {
                                target: fid,
                                source: id,
                                kind: SupportKind::All { role: r },
                            });
                        }
                    }
                    IndRef::Host(v) => {
                        if let Some(d) = &all {
                            if !self.host_satisfies(&v, d) {
                                return Err(ClassicError::Inconsistent {
                                    individual: Some(self.inds[id.index()].name),
                                    reason: Clash::FillerViolation { role: r },
                                });
                            }
                        }
                    }
                }
            }
        }

        // ---- phase 2: SAME-AS co-reference ---------------------------------
        let classes = self.inds[id.index()].derived.same_as.classes();
        for class in classes {
            if class.len() < 2 {
                continue;
            }
            let mut value: Option<IndRef> = None;
            let mut pending: Vec<(IndId, RoleId)> = Vec::new();
            for path in &class {
                match self.resolve_path(id, path) {
                    PathResolution::Complete(v) => match &value {
                        None => value = Some(v),
                        Some(prev) if *prev != v => {
                            // Two chains reach provably distinct
                            // individuals (UNA) — the co-reference cannot
                            // hold.
                            let role = *path.last().expect("non-empty");
                            return Err(ClassicError::Inconsistent {
                                individual: Some(self.inds[id.index()].name),
                                reason: Clash::CoreferenceClash { role },
                            });
                        }
                        Some(_) => {}
                    },
                    PathResolution::AtLastStep { holder, last } => {
                        pending.push((holder, last));
                    }
                    PathResolution::Unresolved => {}
                }
            }
            if let Some(v) = value {
                for (holder, last) in pending {
                    let mut fills = NormalForm::top();
                    fills.roles.insert(
                        last,
                        RoleRestriction {
                            fillers: BTreeSet::from([v.clone()]),
                            ..RoleRestriction::default()
                        },
                    );
                    fills.renormalize(&self.schema);
                    if self.conjoin_nf(holder, &fills, journal, work, report)? {
                        self.stats.coref_propagations.bump();
                        report.corefs_derived += 1;
                        journal.note_support(Support {
                            target: holder,
                            source: id,
                            kind: SupportKind::Coref { role: last },
                        });
                    }
                }
            }
        }

        // ---- phase 3: recognition + rules -----------------------------------
        let (changed, _newly) = self.realize(id);
        if changed {
            report.reclassified += 1;
            // Individuals holding `id` as a filler may now pass instance
            // checks that enumerate closed-role fillers.
            if let Some(parents) = self.reverse_fillers.get(&id) {
                work.extend(parents.iter().copied());
            }
        }
        // Fire any unfired rules attached to concepts this individual is
        // now recognized under.
        let due: Vec<usize> = {
            let ind = &self.inds[id.index()];
            ind.instance_nodes
                .iter()
                .filter_map(|n| self.rules_by_node.get(n))
                .flatten()
                .copied()
                .filter(|ix| !ind.fired_rules.contains(ix))
                .collect()
        };
        for rule_ix in due {
            self.apply_rule_firing(id, rule_ix, journal, work, report)?;
        }
        Ok(())
    }

    /// Fire one due rule on `id`: mark it fired, conjoin the consequent,
    /// record the support, and enqueue the consequences. Shared verbatim
    /// between the sequential pass and the sharded apply phase so the two
    /// engines cannot drift.
    fn apply_rule_firing(
        &mut self,
        id: IndId,
        rule_ix: usize,
        journal: &mut Journal,
        work: &mut VecDeque<IndId>,
        report: &mut AssertReport,
    ) -> Result<()> {
        if self.inds[id.index()].fired_rules.contains(&rule_ix) {
            return Ok(());
        }
        journal.touch(self, id);
        self.inds[id.index()].fired_rules.insert(rule_ix);
        let consequent = self.rules[rule_ix].consequent.clone();
        self.ensure_referenced_inds_pub(&consequent, journal);
        let mut derived = std::mem::take(&mut self.inds[id.index()].derived);
        let before = derived.clone();
        let res = conjoin_expression(&consequent, &mut self.schema, &mut derived);
        let changed = derived != before;
        self.inds[id.index()].derived = derived;
        res?;
        self.stats.rules_fired.bump();
        classic_obs::event("rule_fired", rule_ix as u64);
        report.rules_fired += 1;
        // As with ALL-propagation, the support is recorded even when
        // the consequent added nothing — firing is a fact about the
        // fixed point, not about what the conjunction changed.
        journal.note_support(Support {
            target: id,
            source: id,
            kind: SupportKind::Rule { index: rule_ix },
        });
        if changed {
            work.push_back(id);
            if let Some(parents) = self.reverse_fillers.get(&id) {
                work.extend(parents.iter().copied());
            }
        }
        Ok(())
    }

    // ---- sharded apply phase ---------------------------------------------

    /// Resolve an effect target to an arena id, creating
    /// referenced-but-missing individuals (in canonical drain order, so
    /// creation order — and therefore arena layout — is deterministic).
    fn resolve_target(&mut self, target: TargetRef, journal: &mut Journal) -> IndId {
        match target {
            TargetRef::Id(id) => id,
            TargetRef::Name(name) => self.ensure_ind(name, journal),
        }
    }

    /// Apply one cross-shard effect at the epoch barrier. Every mutation
    /// goes through the same journal-tracked helpers as the sequential
    /// engine, so rollback and provenance are shared.
    pub(crate) fn apply_effect(
        &mut self,
        effect: Effect,
        journal: &mut Journal,
        work: &mut VecDeque<IndId>,
        report: &mut AssertReport,
    ) -> Result<()> {
        match effect {
            Effect::Abort { error, .. } => Err(error),
            Effect::ReverseEdge { filler, host } => {
                let fid = self.resolve_target(filler, journal);
                if self.reverse_fillers.entry(fid).or_default().insert(host) {
                    journal.note_reverse_edge(fid, host);
                }
                Ok(())
            }
            Effect::Support {
                target,
                source,
                kind,
            } => {
                let fid = self.resolve_target(target, journal);
                journal.note_support(Support {
                    target: fid,
                    source,
                    kind,
                });
                Ok(())
            }
            Effect::Conjoin {
                target,
                nf,
                source,
                kind,
            } => {
                let fid = self.resolve_target(target, journal);
                let changed = self.conjoin_nf(fid, &nf, journal, work, report)?;
                match kind {
                    SupportKind::All { .. } => {
                        if changed {
                            self.stats.fills_propagations.bump();
                            report.fills_propagated += 1;
                        }
                        // Unconditional, like the sequential engine: the
                        // support set is a function of the fixed point,
                        // not of arrival order.
                        journal.note_support(Support {
                            target: fid,
                            source,
                            kind,
                        });
                    }
                    SupportKind::Coref { .. } => {
                        if changed {
                            self.stats.coref_propagations.bump();
                            report.corefs_derived += 1;
                            journal.note_support(Support {
                                target: fid,
                                source,
                                kind,
                            });
                        }
                    }
                    // Told/Rule supports never travel as Conjoin effects.
                    SupportKind::Told { .. } | SupportKind::Rule { .. } => {}
                }
                // Re-plan the source so it sees the post-apply state —
                // the sharded stand-in for later phases of a sequential
                // pass observing earlier phases' writes.
                if changed {
                    work.push_back(source);
                }
                Ok(())
            }
            Effect::Install {
                ind,
                qualifying,
                msc,
            } => {
                // Stale installs are possible (an earlier effect in this
                // same barrier may have grown `ind` further); recognition
                // is monotone, so installing the plan-time superset and
                // letting the re-enqueued target correct itself next
                // epoch converges.
                if self.inds[ind.index()].instance_nodes == qualifying {
                    return Ok(());
                }
                journal.touch(self, ind);
                self.stats.realizations.bump();
                let old_msc: Vec<NodeId> = self.inds[ind.index()].msc.iter().copied().collect();
                for n in old_msc {
                    self.extensions[n.index()].remove(&ind);
                }
                for n in &msc {
                    self.extensions[n.index()].insert(ind);
                }
                let slot = &mut self.inds[ind.index()];
                slot.instance_nodes = qualifying;
                slot.msc = msc;
                report.reclassified += 1;
                // Individuals holding `ind` as a filler may now pass
                // instance checks that enumerate closed-role fillers.
                if let Some(parents) = self.reverse_fillers.get(&ind) {
                    work.extend(parents.iter().copied());
                }
                Ok(())
            }
            Effect::FireRule { ind, rule_ix } => {
                self.apply_rule_firing(ind, rule_ix, journal, work, report)
            }
        }
    }

    pub(crate) fn ensure_referenced_inds_pub(
        &mut self,
        desc: &classic_core::Concept,
        journal: &mut Journal,
    ) {
        use classic_core::Concept;
        match desc {
            Concept::OneOf(inds) | Concept::Fills(_, inds) => {
                for i in inds {
                    if let IndRef::Classic(n) = i {
                        self.ensure_ind(*n, journal);
                    }
                }
            }
            Concept::All(_, inner) => self.ensure_referenced_inds_pub(inner, journal),
            Concept::And(parts) => {
                for p in parts {
                    self.ensure_referenced_inds_pub(p, journal);
                }
            }
            Concept::Primitive { parent, .. } | Concept::DisjointPrimitive { parent, .. } => {
                self.ensure_referenced_inds_pub(parent, journal)
            }
            _ => {}
        }
    }

    /// Conjoin an already-canonical normal form into an individual's
    /// derived description. Returns whether anything changed; enqueues the
    /// target (and its dependents) when it did.
    fn conjoin_nf(
        &mut self,
        target: IndId,
        nf: &NormalForm,
        journal: &mut Journal,
        work: &mut VecDeque<IndId>,
        _report: &mut AssertReport,
    ) -> Result<bool> {
        // Cheap monotone short-circuit: nothing to add if the target is
        // already at least as specific.
        if subsumes(nf, &self.inds[target.index()].derived) {
            return Ok(false);
        }
        journal.touch(self, target);
        let mut derived = std::mem::take(&mut self.inds[target.index()].derived);
        derived.conjoin(nf, &self.schema);
        let clash = derived.clash().cloned();
        self.inds[target.index()].derived = derived;
        if let Some(clash) = clash {
            return Err(ClassicError::Inconsistent {
                individual: Some(self.inds[target.index()].name),
                reason: clash,
            });
        }
        work.push_back(target);
        Ok(true)
    }

    /// Walk a `SAME-AS` attribute chain from `id` through known fillers.
    pub(crate) fn resolve_path(&self, id: IndId, path: &Path) -> PathResolution {
        let mut cur = id;
        for (k, &role) in path.iter().enumerate() {
            let last = k + 1 == path.len();
            let filler = self.inds[cur.index()]
                .derived
                .roles
                .get(&role)
                .and_then(|rr| rr.fillers.iter().next().cloned());
            match filler {
                None => {
                    return if last {
                        PathResolution::AtLastStep {
                            holder: cur,
                            last: role,
                        }
                    } else {
                        PathResolution::Unresolved
                    };
                }
                Some(v @ IndRef::Host(_)) => {
                    return if last {
                        PathResolution::Complete(v)
                    } else {
                        // A host value has no roles to continue through.
                        PathResolution::Unresolved
                    };
                }
                Some(v @ IndRef::Classic(name)) => {
                    if last {
                        return PathResolution::Complete(v);
                    }
                    match self.by_name.get(&name) {
                        Some(&next) => cur = next,
                        None => return PathResolution::Unresolved,
                    }
                }
            }
        }
        PathResolution::Unresolved
    }

    // ---- recognition ----------------------------------------------------

    /// Re-realize one individual: recompute the set of schema concepts it
    /// provably belongs to, its most-specific frontier, and the extension
    /// index. Returns (changed, newly entered nodes).
    pub(crate) fn realize(&mut self, id: IndId) -> (bool, BTreeSet<NodeId>) {
        self.stats.realizations.bump();
        let (qualifying, msc) = self.compute_recognition(id);
        let old = &self.inds[id.index()].instance_nodes;
        if *old == qualifying {
            return (false, BTreeSet::new());
        }
        let newly: BTreeSet<NodeId> = qualifying.difference(old).copied().collect();
        let old_msc: Vec<NodeId> = self.inds[id.index()].msc.iter().copied().collect();
        for n in old_msc {
            self.extensions[n.index()].remove(&id);
        }
        for n in &msc {
            self.extensions[n.index()].insert(id);
        }
        let ind = &mut self.inds[id.index()];
        ind.instance_nodes = qualifying;
        ind.msc = msc;
        (true, newly)
    }

    /// Pruned top-down recognition sweep: a node's children are only
    /// examined when the node itself is satisfied (instance checking is
    /// monotone along subsumption, so nothing below a failed node can
    /// succeed).
    ///
    /// Read-only (`&self`) by construction — the sharded engine runs this
    /// concurrently from shard workers, which is where the parallel
    /// speedup comes from (instance tests dominate wide fixpoints).
    pub(crate) fn compute_recognition(&self, id: IndId) -> (BTreeSet<NodeId>, BTreeSet<NodeId>) {
        let mut qualifying: BTreeSet<NodeId> = BTreeSet::new();
        let mut failed: BTreeSet<NodeId> = BTreeSet::new();
        let mut msc: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue: VecDeque<NodeId> = VecDeque::from([NodeId::TOP]);
        qualifying.insert(NodeId::TOP);
        let mut visited: BTreeSet<NodeId> = BTreeSet::new();
        while let Some(n) = queue.pop_front() {
            if !visited.insert(n) {
                continue;
            }
            let mut any_child = false;
            let children: Vec<NodeId> = self.taxonomy.node(n).children.iter().copied().collect();
            for c in children {
                if c == NodeId::BOTTOM {
                    continue;
                }
                let ok = if qualifying.contains(&c) {
                    true
                } else if failed.contains(&c) {
                    false
                } else {
                    self.stats.instance_tests.bump();
                    let ok = self.known_instance(id, &self.taxonomy.node(c).nf);
                    if ok {
                        qualifying.insert(c);
                    } else {
                        failed.insert(c);
                    }
                    ok
                };
                if ok {
                    any_child = true;
                    queue.push_back(c);
                }
            }
            if !any_child {
                msc.insert(n);
            }
        }
        // Frontier minimality across multiple paths.
        let msc: BTreeSet<NodeId> = msc
            .iter()
            .copied()
            .filter(|&n| {
                !self
                    .taxonomy
                    .strict_descendants(n)
                    .iter()
                    .any(|d| qualifying.contains(d))
            })
            .collect();
        (qualifying, msc)
    }

    // ---- instance checking ------------------------------------------------

    /// Is `id` *provably* an instance of `nf` given current knowledge?
    ///
    /// This is the recognition predicate of §3.3: it consults the derived
    /// description, enumerates closed-role fillers for `ALL` checks,
    /// resolves `SAME-AS` chains through actual fillers, and runs `TEST`
    /// procedural recognizers. Under the open-world assumption a `false`
    /// means "not provable", never "provably not" (see
    /// [`Kb::possible_instance`]).
    pub fn known_instance(&self, id: IndId, nf: &NormalForm) -> bool {
        let mut visiting: Vec<(IndId, *const NormalForm)> = Vec::new();
        self.known_instance_rec(id, nf, &mut visiting)
    }

    fn known_instance_rec(
        &self,
        id: IndId,
        nf: &NormalForm,
        visiting: &mut Vec<(IndId, *const NormalForm)>,
    ) -> bool {
        if nf.is_incoherent() {
            return false;
        }
        if nf.is_top() {
            return true;
        }
        let key = (id, nf as *const NormalForm);
        if visiting.contains(&key) {
            // Cyclic proof attempt: cannot establish membership this way.
            return false;
        }
        visiting.push(key);
        let ok = self.known_instance_inner(id, nf, visiting);
        visiting.pop();
        ok
    }

    fn known_instance_inner(
        &self,
        id: IndId,
        nf: &NormalForm,
        visiting: &mut Vec<(IndId, *const NormalForm)>,
    ) -> bool {
        let ind = &self.inds[id.index()];
        let d = &ind.derived;
        if !nf.layer.subsumes(d.layer) {
            return false;
        }
        if !nf.prims.is_subset(&d.prims) {
            return false;
        }
        if let Some(s) = &nf.one_of {
            if !s.contains(&IndRef::Classic(ind.name)) {
                return false;
            }
        }
        // TEST atoms: derivable from the description, or established by
        // actually running the procedural recognizer (cached when true).
        for &t in &nf.tests {
            if d.tests.contains(&t) {
                continue;
            }
            if ind.test_hits.lock().expect("test cache lock").get(&t) == Some(&true) {
                continue;
            }
            let name = self.schema.symbols.individual_name(ind.name);
            let passed = self
                .schema
                .run_test(t, &TestArg::Ind(Some(name), d))
                .unwrap_or(false);
            if passed {
                ind.test_hits
                    .lock()
                    .expect("test cache lock")
                    .insert(t, true);
            } else {
                return false;
            }
        }
        for (&r, rr1) in &nf.roles {
            let rr2 = d.roles.get(&r);
            let (min2, max2, closed2) = match rr2 {
                Some(rr2) => (rr2.min_count(), rr2.max_count(), rr2.closed),
                None => (0, u32::MAX, false),
            };
            if rr1.at_least > min2 {
                return false;
            }
            if let Some(m1) = rr1.at_most {
                if max2 > m1 {
                    return false;
                }
            }
            if rr1.closed && !closed2 {
                return false;
            }
            if !rr1.fillers.is_empty() {
                match rr2 {
                    Some(rr2) if rr1.fillers.is_subset(&rr2.fillers) => {}
                    _ => return false,
                }
            }
            if let Some(all1) = &rr1.all {
                if max2 == 0 {
                    continue; // vacuously satisfied
                }
                // Either the derived value restriction already entails it…
                let entailed = rr2
                    .and_then(|rr2| rr2.all.as_deref())
                    .is_some_and(|all2| subsumes(all1, all2));
                if entailed {
                    continue;
                }
                // …or the role is closed and every known filler provably
                // satisfies it.
                if !closed2 {
                    return false;
                }
                let fillers: Vec<IndRef> = rr2
                    .map(|rr2| rr2.fillers.iter().cloned().collect())
                    .unwrap_or_default();
                for f in fillers {
                    let ok = match f {
                        IndRef::Classic(n) => match self.by_name.get(&n) {
                            Some(&fid) => self.known_instance_rec(fid, all1, visiting),
                            None => false,
                        },
                        IndRef::Host(v) => self.host_satisfies(&v, all1),
                    };
                    if !ok {
                        return false;
                    }
                }
            }
        }
        // SAME-AS: implied structurally, or witnessed by actual fillers.
        for (p, q) in nf.same_as.pairs() {
            if d.same_as.implies(p, q) {
                continue;
            }
            let a = self.resolve_path_value(id, p);
            let b = self.resolve_path_value(id, q);
            match (a, b) {
                (Some(x), Some(y)) if x == y => {}
                _ => return false,
            }
        }
        true
    }

    fn resolve_path_value(&self, id: IndId, path: &Path) -> Option<IndRef> {
        match self.resolve_path(id, path) {
            PathResolution::Complete(v) => Some(v),
            _ => None,
        }
    }

    /// Could `id` possibly be an instance of `nf`? Under the open-world
    /// assumption the answer is yes unless the derived description is
    /// provably disjoint from the query (§3.5.3's "sets of individuals
    /// that *might* satisfy the query").
    pub fn possible_instance(&self, id: IndId, nf: &NormalForm) -> bool {
        let ind = &self.inds[id.index()];
        let mut meet = ind.derived.clone();
        // The individual's identity participates: a ONE-OF that excludes it
        // is an immediate refutation.
        if let Some(s) = &nf.one_of {
            if !s.contains(&IndRef::Classic(ind.name)) {
                return false;
            }
        }
        meet.conjoin(nf, &self.schema);
        !meet.is_incoherent()
    }

    /// Does a host value satisfy a description? Host individuals "cannot
    /// have roles, but are otherwise first class citizens" (§3.2).
    pub fn host_satisfies(&self, v: &HostValue, nf: &NormalForm) -> bool {
        if nf.is_incoherent() {
            return false;
        }
        if !nf
            .layer
            .subsumes(classic_core::Layer::Host(Some(v.class())))
        {
            return false;
        }
        // Primitive membership can never be established for a host value
        // (nothing can be asserted of one).
        if !nf.prims.is_empty() {
            return false;
        }
        if let Some(s) = &nf.one_of {
            if !s.contains(&IndRef::Host(v.clone())) {
                return false;
            }
        }
        for &t in &nf.tests {
            if !self.schema.run_test(t, &TestArg::Host(v)).unwrap_or(false) {
                return false;
            }
        }
        // Any demand for fillers is unsatisfiable; pure upper bounds and
        // value restrictions hold vacuously.
        if nf.roles.values().any(|rr| rr.min_count() > 0) {
            return false;
        }
        if !nf.same_as.is_empty() {
            return false;
        }
        true
    }
}

impl Journal {
    pub(crate) fn note_reverse_edge(&mut self, filler: IndId, host: IndId) {
        self.push_reverse(filler, host);
    }
}
