//! # classic-query
//!
//! Query processing for the CLASSIC reproduction (paper §3.5):
//!
//! * **Concepts as queries** — any concept expression asks for the
//!   individuals satisfying it ([`retrieve`]); answered with the §5
//!   technique: "first, the query concept is itself classified with
//!   respect to the concepts in the schema; then the instances of the
//!   parent concepts are tested individually … all instances of schema
//!   concepts that are subsumed by the query are known to satisfy the
//!   query and are therefore not explicitly tested."
//!   [`retrieve_naive`] is the unpruned baseline (experiments E3/E8).
//! * **Open-world answer modes** — "sets of individuals that are *known*
//!   to satisfy the query, sets of individuals that *might* satisfy the
//!   query" ([`possible`]), and
//! * **intensional answers** — "a most-specific description of the
//!   necessary properties of the objects, known or unknown, that might
//!   satisfy the query" ([`ask_description`]), including information
//!   contributed by forward-chaining rules (the JUNK-FOOD example).
//! * **Marked queries** — the `?:` marker distinguishing the subexpression
//!   whose instances are wanted ([`MarkedQuery`], [`ask_necessary_set`]).
//!
//! All four answer forms are fronted by one builder, [`Query`], whose
//! [`Query::run`] returns a structured [`Answer`]; the free functions are
//! retained as thin entry points over the same machinery. Candidate
//! instance tests inside [`retrieve_nf`] fan out across scoped threads
//! when the candidate set is large.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conjunctive;

pub use conjunctive::{answer, KbAtom, KbQuery, KbTerm};

use classic_core::desc::{Concept, IndRef};
use classic_core::error::{ClassicError, Result};
use classic_core::normal::NormalForm;
use classic_core::symbol::RoleId;
use classic_core::taxonomy::NodeId;
use classic_kb::{IndId, Kb};
use std::collections::BTreeSet;

/// A query concept with a `?:` marker: the marker sits in front of the
/// value restriction reached by following `marker` through nested `ALL`s.
///
/// `?:PERSON` is `{ concept: PERSON, marker: [] }`; the paper's
///
/// ```text
/// (AND STUDENT (ALL thing-driven ?:(ALL maker (ONE-OF Ferrari))))
/// ```
///
/// is `{ concept: (AND STUDENT (ALL thing-driven (ALL maker (ONE-OF
/// Ferrari)))), marker: [thing-driven] }` — "the objects that are driven
/// by students and have maker Ferrari" (§3.5.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkedQuery {
    /// The full query concept (marker removed).
    pub concept: Concept,
    /// Role chain from the query subject to the marked subexpression.
    pub marker: Vec<RoleId>,
}

impl MarkedQuery {
    /// A marker on the query subject itself (`?:C`).
    pub fn subject(concept: Concept) -> MarkedQuery {
        MarkedQuery {
            concept,
            marker: Vec::new(),
        }
    }
}

/// Instrumentation for one retrieval (experiment E3's cost model: tested
/// candidates are the disk-access proxy).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct QueryStats {
    /// Individuals accepted without an instance test, because they are
    /// instances of schema concepts subsumed by the query.
    pub free: usize,
    /// Individuals individually tested against the query.
    pub tested: usize,
    /// Subsumption tests spent classifying the query concept.
    pub classify_tests: usize,
}

/// An extensional answer: the individuals *known* to satisfy the query.
#[derive(Debug, Clone)]
pub struct Answers {
    /// Individuals provably satisfying the query, in id order.
    pub known: Vec<IndId>,
    /// How the answer was computed.
    pub stats: QueryStats,
}

/// Which of the paper's answer forms a [`Query`] asks for (§3.5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueryMode {
    /// Individuals *known* to satisfy the query (closed answer).
    Known,
    /// Individuals that *might* satisfy it under the open world.
    Possible,
    /// The fillers at the `?:` marker across all known answers.
    NecessarySet,
    /// The most-specific *description* of the marked objects, known
    /// examples or not.
    Description,
}

/// A query under construction: one concept expression, an optional `?:`
/// marker path, and the answer form wanted. This is the single front door
/// to the §3.5 query facilities; the free functions ([`retrieve`],
/// [`possible`], [`ask_necessary_set`], [`ask_description`]) remain as
/// thin entry points over the same machinery.
///
/// ```
/// use classic_core::Concept;
/// use classic_kb::Kb;
/// use classic_query::{Answer, Query};
///
/// let mut kb = Kb::new();
/// kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "p"))?;
/// let person = kb.schema().symbols.find_concept("PERSON").unwrap();
/// kb.create_ind("Rocky")?;
/// kb.assert_ind("Rocky", &Concept::Name(person))?;
/// let ans = Query::concept(Concept::Name(person)).run(&mut kb)?;
/// match ans {
///     Answer::Known(a) => assert_eq!(a.known.len(), 1),
///     _ => unreachable!("a Known query returns Answer::Known"),
/// }
/// # Ok::<(), classic_core::ClassicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Query {
    concept: Concept,
    marker: Vec<RoleId>,
    mode: QueryMode,
}

impl Query {
    /// Start a query from a concept expression; defaults to the *known*
    /// answer set (`retrieve`).
    pub fn concept(concept: Concept) -> Query {
        Query {
            concept,
            marker: Vec::new(),
            mode: QueryMode::Known,
        }
    }

    /// Start from a marked query (`?:`); defaults to the necessary filler
    /// set, the answer form marked queries exist for.
    pub fn marked(q: MarkedQuery) -> Query {
        Query {
            concept: q.concept,
            marker: q.marker,
            mode: QueryMode::NecessarySet,
        }
    }

    /// Place the `?:` marker at the end of `path` (role chain from the
    /// query subject).
    pub fn marker(mut self, path: impl IntoIterator<Item = RoleId>) -> Query {
        self.marker = path.into_iter().collect();
        self
    }

    /// Ask for the individuals *known* to satisfy the query.
    pub fn known(mut self) -> Query {
        self.mode = QueryMode::Known;
        self
    }

    /// Ask for the individuals that *might* satisfy the query (open world).
    pub fn possible(mut self) -> Query {
        self.mode = QueryMode::Possible;
        self
    }

    /// Ask for the fillers at the marker across all known answers.
    pub fn necessary_set(mut self) -> Query {
        self.mode = QueryMode::NecessarySet;
        self
    }

    /// Ask for the most-specific description of the marked objects.
    pub fn description(mut self) -> Query {
        self.mode = QueryMode::Description;
        self
    }

    /// The marked form of this query (concept + marker path).
    fn marked_query(&self) -> MarkedQuery {
        MarkedQuery {
            concept: self.concept.clone(),
            marker: self.marker.clone(),
        }
    }

    /// Evaluate against a knowledge base. The [`Answer`] variant always
    /// matches the requested mode.
    pub fn run(&self, kb: &mut Kb) -> Result<Answer> {
        match self.mode {
            QueryMode::Known => Ok(Answer::Known(retrieve_impl(kb, &self.concept)?)),
            QueryMode::Possible => Ok(Answer::Possible(possible_impl(kb, &self.concept)?)),
            QueryMode::NecessarySet => Ok(Answer::NecessarySet(ask_necessary_set_impl(
                kb,
                &self.marked_query(),
            )?)),
            QueryMode::Description => Ok(Answer::Description(ask_description_impl(
                kb,
                &self.marked_query(),
            )?)),
        }
    }
}

/// A structured answer: one variant per answer form of [`Query`].
#[derive(Debug, Clone)]
pub enum Answer {
    /// The individuals known to satisfy the query, with retrieval stats.
    Known(Answers),
    /// The individuals that might satisfy the query (open world).
    Possible(Vec<IndId>),
    /// The necessary filler set at the `?:` marker.
    NecessarySet(Vec<IndRef>),
    /// The intensional description of the marked objects.
    Description(NormalForm),
}

impl Answer {
    /// The known-answer payload, if this is a [`Answer::Known`].
    pub fn into_known(self) -> Option<Answers> {
        match self {
            Answer::Known(a) => Some(a),
            _ => None,
        }
    }

    /// The possible-answer payload, if this is a [`Answer::Possible`].
    pub fn into_possible(self) -> Option<Vec<IndId>> {
        match self {
            Answer::Possible(ids) => Some(ids),
            _ => None,
        }
    }

    /// The filler set, if this is a [`Answer::NecessarySet`].
    pub fn into_necessary_set(self) -> Option<Vec<IndRef>> {
        match self {
            Answer::NecessarySet(fs) => Some(fs),
            _ => None,
        }
    }

    /// The description, if this is a [`Answer::Description`].
    pub fn into_description(self) -> Option<NormalForm> {
        match self {
            Answer::Description(nf) => Some(nf),
            _ => None,
        }
    }
}

/// Evaluate a concept-as-query via classification (§5).
///
/// ```
/// use classic_core::Concept;
/// use classic_kb::Kb;
///
/// let mut kb = Kb::new();
/// let wheels = kb.define_role("wheel")?;
/// kb.define_concept("VEHICLE", Concept::primitive(Concept::thing(), "v"))?;
/// let vehicle = kb.schema().symbols.find_concept("VEHICLE").unwrap();
/// for (name, n) in [("Bike", 2), ("Trike", 3), ("Car", 4)] {
///     kb.create_ind(name)?;
///     kb.assert_ind(name, &Concept::Name(vehicle))?;
///     kb.assert_ind(name, &Concept::AtLeast(n, wheels))?;
/// }
/// let q = Concept::and([Concept::Name(vehicle), Concept::AtLeast(3, wheels)]);
/// let answers = classic_query::Query::concept(q)
///     .run(&mut kb)?
///     .into_known()
///     .unwrap();
/// assert_eq!(answers.known.len(), 2); // Trike and Car
/// # Ok::<(), classic_core::ClassicError>(())
/// ```
#[deprecated(note = "use the `Query` builder: `Query::concept(c).run(kb)?.into_known()`")]
pub fn retrieve(kb: &mut Kb, query: &Concept) -> Result<Answers> {
    retrieve_impl(kb, query)
}

fn retrieve_impl(kb: &mut Kb, query: &Concept) -> Result<Answers> {
    let nf = kb.normalize(query)?;
    retrieve_nf(kb, &nf)
}

/// Evaluate an already-normalized query via classification.
///
/// Errors with [`ClassicError::RecognizerPanicked`] if a user-registered
/// `TEST` recognizer panics during an instance test — the panic is caught
/// at the retrieval boundary instead of aborting the process.
pub fn retrieve_nf(kb: &Kb, nf: &NormalForm) -> Result<Answers> {
    let obs = QueryObs::attach(kb);
    let _span = classic_obs::span_timed(kb.flight_recorder(), "query.retrieve", &obs.retrieve_ns);
    obs.retrieves.bump();
    let mut stats = QueryStats::default();
    if nf.is_incoherent() {
        return Ok(Answers {
            known: Vec::new(),
            stats,
        });
    }
    let cls = kb.taxonomy().classify(nf);
    stats.classify_tests = cls.tests;
    // An exactly-matching schema concept answers from the extension index
    // alone.
    if let Some(eq) = cls.equivalent {
        let known: Vec<IndId> = kb.instances_of_node(eq).into_iter().collect();
        stats.free = known.len();
        return Ok(Answers { known, stats });
    }
    // Dense bitmap bookkeeping: answers and already-visited candidates,
    // indexed by the individual arena (O(1) membership; the per-query
    // allocation is two bytes per individual).
    let n = kb.ind_count();
    let mut in_answer = vec![false; n];
    let mut visited = vec![false; n];
    // Instances of subsumed schema concepts are answers for free.
    for &c in &cls.children {
        if c == NodeId::BOTTOM {
            continue;
        }
        kb.for_each_instance(c, |id| {
            if !in_answer[id.index()] {
                in_answer[id.index()] = true;
                stats.free += 1;
            }
        });
    }
    // Candidates: every answer is an instance of *each* most-specific
    // subsumer, so the most selective one (smallest extension) suffices
    // as the candidate source; per-candidate instance tests filter the
    // rest.
    let best_parent = cls
        .parents
        .iter()
        .copied()
        .min_by_key(|&p| kb.extension_size_bound(p));
    if let Some(p) = best_parent {
        let mut candidates: Vec<IndId> = Vec::new();
        kb.for_each_instance(p, |id| {
            if in_answer[id.index()] || visited[id.index()] {
                return;
            }
            visited[id.index()] = true;
            candidates.push(id);
        });
        stats.tested += candidates.len();
        for id in test_candidates(kb, nf, &candidates)? {
            in_answer[id.index()] = true;
        }
    }
    obs.candidates.record(stats.tested as u64);
    obs.free_answers.add(stats.free as u64);
    obs.tested.add(stats.tested as u64);
    classic_obs::event("free", stats.free as u64);
    classic_obs::event("tested", stats.tested as u64);
    let known: Vec<IndId> = (0..n)
        .filter(|&i| in_answer[i])
        .map(IndId::from_index)
        .collect();
    Ok(Answers { known, stats })
}

/// Handles onto the retrieval series in the KB's metric registry,
/// attached idempotently per call (one mutex round-trip; retrieval does
/// orders of magnitude more work than that per query).
struct QueryObs {
    retrieves: classic_obs::Counter,
    free_answers: classic_obs::Counter,
    tested: classic_obs::Counter,
    candidates: classic_obs::Histogram,
    retrieve_ns: classic_obs::Histogram,
}

impl QueryObs {
    fn attach(kb: &Kb) -> QueryObs {
        let m = kb.metrics();
        QueryObs {
            retrieves: m
                .get_or_counter("classic_retrieve_total", "retrieve queries answered")
                .expect("query metric registration"),
            free_answers: m
                .get_or_counter(
                    "classic_retrieve_free_total",
                    "answers taken from subsumed extensions without a test",
                )
                .expect("query metric registration"),
            tested: m
                .get_or_counter(
                    "classic_retrieve_tested_total",
                    "candidates individually instance-tested",
                )
                .expect("query metric registration"),
            candidates: m
                .get_or_histogram(
                    "classic_retrieve_candidates",
                    "candidates tested per retrieval",
                )
                .expect("query metric registration"),
            retrieve_ns: m
                .get_or_duration_histogram("classic_retrieve_ns", "retrieve wall time (ns)")
                .expect("query metric registration"),
        }
    }
}

/// Render a caught panic payload for the error message. `panic!` with a
/// string literal yields `&str`; `panic!("{x}")` yields `String`; anything
/// else is opaque.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Run instance tests, converting a panic in a user-registered `TEST`
/// recognizer into [`ClassicError::RecognizerPanicked`].
///
/// `AssertUnwindSafe` is sound here: `known_instance` takes `&Kb`, and the
/// only interior mutability it touches are the per-individual test-hit
/// caches and the kernel memo, whose mutex guards are dropped *before* the
/// user recognizer runs — a panicking recognizer cannot poison them or
/// leave them mid-update.
fn guard_tests<T>(f: impl FnOnce() -> T) -> Result<T> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
        .map_err(|p| ClassicError::RecognizerPanicked(panic_message(p.as_ref())))
}

/// Below this many candidates a sequential scan beats thread start-up.
const PARALLEL_THRESHOLD: usize = 256;

/// Filter `candidates` down to the known instances of `nf`, fanning the
/// instance tests out across threads when the candidate set is large.
/// Instance testing only *reads* the knowledge base (the interior-mutable
/// caches — test memos, kernel memo — are behind mutexes), so a scoped
/// borrow of `&Kb` can be shared across workers with no new dependencies.
///
/// A panic in a user recognizer — on either the sequential or the parallel
/// path — surfaces as `Err(RecognizerPanicked)` rather than unwinding
/// through (or aborting from) a worker thread.
fn test_candidates(kb: &Kb, nf: &NormalForm, candidates: &[IndId]) -> Result<Vec<IndId>> {
    if candidates.len() < PARALLEL_THRESHOLD {
        return guard_tests(|| {
            candidates
                .iter()
                .copied()
                .filter(|&id| kb.known_instance(id, nf))
                .collect()
        });
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(candidates.len());
    let chunk = candidates.len().div_ceil(workers);
    let mut hits: Vec<IndId> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|part| {
                let recorder = std::sync::Arc::clone(kb.flight_recorder());
                s.spawn(move || {
                    // Catch inside the worker so the panic becomes data;
                    // `scope` still joins every thread before returning.
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        // Worker threads have no open parent span, so each
                        // batch becomes its own root trace in the recorder.
                        let _span = classic_obs::span(&recorder, "query.worker_batch");
                        classic_obs::event("batch_size", part.len() as u64);
                        part.iter()
                            .copied()
                            .filter(|&id| kb.known_instance(id, nf))
                            .collect::<Vec<IndId>>()
                    }))
                })
            })
            .collect();
        for h in handles {
            // The outer Err covers a panic that escaped the catch (e.g.
            // raised while building the closure's return value).
            let caught = match h.join() {
                Ok(inner) => inner,
                Err(p) => Err(p),
            };
            match caught {
                Ok(part_hits) => hits.extend(part_hits),
                Err(p) => return Err(ClassicError::RecognizerPanicked(panic_message(p.as_ref()))),
            }
        }
        Ok(())
    })?;
    Ok(hits)
}

/// The naive baseline: test every individual in the database against the
/// query (what a system without the classification index must do).
pub fn retrieve_naive(kb: &mut Kb, query: &Concept) -> Result<Answers> {
    let nf = kb.normalize(query)?;
    retrieve_naive_nf(kb, &nf)
}

/// Naive retrieval over an already-normalized query. Shares the
/// panic-to-error contract of [`retrieve_nf`].
pub fn retrieve_naive_nf(kb: &Kb, nf: &NormalForm) -> Result<Answers> {
    let mut stats = QueryStats::default();
    if nf.is_incoherent() {
        return Ok(Answers {
            known: Vec::new(),
            stats,
        });
    }
    let ids: Vec<IndId> = kb.ind_ids().collect();
    stats.tested = ids.len();
    let known = guard_tests(|| {
        ids.into_iter()
            .filter(|&id| kb.known_instance(id, nf))
            .collect()
    })?;
    Ok(Answers { known, stats })
}

/// The individuals that *might* satisfy the query under the open-world
/// assumption (§3.5.3): everything whose derived description is not
/// provably disjoint from the query. Always a superset of the known
/// answers.
#[deprecated(
    note = "use the `Query` builder: `Query::concept(c).possible().run(kb)?.into_possible()`"
)]
pub fn possible(kb: &mut Kb, query: &Concept) -> Result<Vec<IndId>> {
    possible_impl(kb, query)
}

fn possible_impl(kb: &mut Kb, query: &Concept) -> Result<Vec<IndId>> {
    let nf = kb.normalize(query)?;
    let ids: Vec<IndId> = kb.ind_ids().collect();
    guard_tests(|| {
        ids.into_iter()
            .filter(|&id| kb.possible_instance(id, &nf))
            .collect()
    })
}

/// `ask-necessary-set`: evaluate a marked query and return the fillers at
/// the marker position across all known answers (§3.5.3). Fillers may be
/// host values.
#[deprecated(note = "use the `Query` builder: `Query::marked(q).run(kb)?.into_necessary_set()`")]
pub fn ask_necessary_set(kb: &mut Kb, q: &MarkedQuery) -> Result<Vec<IndRef>> {
    ask_necessary_set_impl(kb, q)
}

fn ask_necessary_set_impl(kb: &mut Kb, q: &MarkedQuery) -> Result<Vec<IndRef>> {
    let subjects = retrieve_impl(kb, &q.concept)?.known;
    let mut frontier: BTreeSet<IndRef> = subjects
        .into_iter()
        .map(|id| IndRef::Classic(kb.ind(id).name))
        .collect();
    for &role in &q.marker {
        let mut next: BTreeSet<IndRef> = BTreeSet::new();
        for x in frontier {
            if let IndRef::Classic(n) = x {
                if let Ok(id) = kb.ind_id(n) {
                    next.extend(kb.ind(id).fillers(role));
                }
            }
        }
        frontier = next;
    }
    Ok(frontier.into_iter().collect())
}

/// `ask-description`: the most specific description that *necessarily*
/// holds of every possible object at the marker position — "independent of
/// the known examples" (§3.5.3).
///
/// The description is assembled from the query's value restrictions along
/// the marker path, then repeatedly augmented with the consequents of
/// every rule attached to a schema concept that subsumes it ("the
/// description of this set, in light of the forward-chaining rules in
/// effect at that time, might include JUNK-FOOD"), to a fixed point.
#[deprecated(
    note = "use the `Query` builder: `Query::marked(q).description().run(kb)?.into_description()`"
)]
pub fn ask_description(kb: &mut Kb, q: &MarkedQuery) -> Result<NormalForm> {
    ask_description_impl(kb, q)
}

fn ask_description_impl(kb: &mut Kb, q: &MarkedQuery) -> Result<NormalForm> {
    let mut subject = kb.normalize(&q.concept)?;
    // A singleton enumeration names a known individual: fold in everything
    // the database has derived about it — the paper's crime15 pattern,
    // "to see if crime15 was classified as a kind of crime for which
    // additional descriptive information about its suspect can be
    // inferred" (§4).
    if let Some(s) = &subject.one_of {
        if s.len() == 1 {
            if let Some(IndRef::Classic(n)) = s.iter().next().cloned() {
                if let Ok(id) = kb.ind_id(n) {
                    let derived = kb.ind(id).derived.clone();
                    subject.conjoin(&derived, kb.schema());
                }
            }
        }
    }
    // Rules attached to concepts subsuming the *subject* contribute value
    // restrictions visible at the marker (the JUNK-FOOD example)…
    augment_with_rules(kb, &mut subject)?;
    let mut desc = path_restriction(&subject, &q.marker);
    // …and the marked description may itself trigger further rules.
    augment_with_rules(kb, &mut desc)?;
    Ok(desc)
}

/// Conjoin, to a fixed point, the consequents of every rule attached to a
/// schema concept that subsumes `desc`. Each rule applies at most once.
fn augment_with_rules(kb: &mut Kb, desc: &mut NormalForm) -> Result<()> {
    let mut applied: BTreeSet<usize> = BTreeSet::new();
    loop {
        let cls = kb.taxonomy().classify(desc);
        let mut subsumers: BTreeSet<NodeId> = BTreeSet::new();
        if let Some(eq) = cls.equivalent {
            subsumers.insert(eq);
            subsumers.extend(kb.taxonomy().strict_ancestors(eq));
        } else {
            for &p in &cls.parents {
                subsumers.insert(p);
                subsumers.extend(kb.taxonomy().strict_ancestors(p));
            }
        }
        let due: Vec<usize> = kb
            .active_rules()
            .filter(|(ix, r)| !applied.contains(ix) && subsumers.contains(&r.node))
            .map(|(ix, _)| ix)
            .collect();
        if due.is_empty() {
            return Ok(());
        }
        for ix in due {
            applied.insert(ix);
            let consequent = kb.rules()[ix].consequent.clone();
            let cnf = kb.normalize(&consequent)?;
            desc.conjoin(&cnf, kb.schema());
        }
    }
}

/// The value restriction reached by following `path` through the query's
/// normalized `ALL` structure (`THING` where unrestricted).
pub fn path_restriction(nf: &NormalForm, path: &[RoleId]) -> NormalForm {
    match nf.at_path(path) {
        Some(sub) => sub.clone(),
        None => NormalForm::top(),
    }
}

/// Render an individual's complete derived description as a concept
/// expression — the descriptive answer form for individuals.
pub fn describe(kb: &Kb, id: IndId) -> Concept {
    kb.ind(id).derived.to_concept(kb.schema())
}

#[cfg(test)]
mod tests {
    // The deprecated free functions stay under test until they are
    // removed: the builder-parity tests below are exactly what keeps the
    // shims honest.
    #![allow(deprecated)]
    use super::*;
    use classic_core::desc::Concept;

    fn kb_with_schema() -> Kb {
        let mut kb = Kb::new();
        kb.define_role("enrolled-at").unwrap();
        kb.define_role("eat").unwrap();
        kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
            .unwrap();
        let person = Concept::Name(kb.schema_mut().symbols.concept("PERSON"));
        let enrolled = kb.schema_mut().symbols.find_role("enrolled-at").unwrap();
        kb.define_concept(
            "STUDENT",
            Concept::and([person, Concept::AtLeast(1, enrolled)]),
        )
        .unwrap();
        kb
    }

    #[test]
    fn retrieve_uses_subsumed_extensions_for_free() {
        let mut kb = kb_with_schema();
        let person = kb.schema_mut().symbols.concept("PERSON");
        let enrolled = kb.schema_mut().symbols.find_role("enrolled-at").unwrap();
        for i in 0..10 {
            let name = format!("S{i}");
            kb.create_ind(&name).unwrap();
            kb.assert_ind(&name, &Concept::Name(person)).unwrap();
            kb.assert_ind(&name, &Concept::AtLeast(1, enrolled))
                .unwrap();
        }
        // Query = exactly STUDENT's definition: answered via equivalence,
        // zero per-individual tests.
        let q = Concept::and([Concept::Name(person), Concept::AtLeast(1, enrolled)]);
        let ans = retrieve(&mut kb, &q).unwrap();
        assert_eq!(ans.known.len(), 10);
        assert_eq!(ans.stats.tested, 0);
        // The naive baseline tests everyone.
        let naive = retrieve_naive(&mut kb, &q).unwrap();
        assert_eq!(naive.known.len(), 10);
        assert_eq!(naive.stats.tested, kb.ind_count());
    }

    #[test]
    fn retrieve_strict_refinement_tests_candidates() {
        let mut kb = kb_with_schema();
        let person = kb.schema_mut().symbols.concept("PERSON");
        let enrolled = kb.schema_mut().symbols.find_role("enrolled-at").unwrap();
        for i in 0..6 {
            let name = format!("P{i}");
            kb.create_ind(&name).unwrap();
            kb.assert_ind(&name, &Concept::Name(person)).unwrap();
            kb.assert_ind(&name, &Concept::AtLeast(i as u32, enrolled))
                .unwrap();
        }
        // STUDENTs enrolled at ≥ 3 places: a strict refinement of STUDENT.
        let q = Concept::and([Concept::Name(person), Concept::AtLeast(3, enrolled)]);
        let ans = retrieve(&mut kb, &q).unwrap();
        assert_eq!(ans.known.len(), 3); // P3, P4, P5
                                        // Candidates came from STUDENT's extension (P1..P5 = 5), not the
                                        // whole DB.
        assert!(ans.stats.tested <= 5);
        let naive = retrieve_naive(&mut kb, &q).unwrap();
        let mut a = ans.known.clone();
        let mut b = naive.known.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn possible_is_superset_of_known() {
        let mut kb = kb_with_schema();
        let person = kb.schema_mut().symbols.concept("PERSON");
        kb.create_ind("Maybe").unwrap();
        kb.create_ind("Yes").unwrap();
        kb.assert_ind("Yes", &Concept::Name(person)).unwrap();
        let q = Concept::Name(person);
        let known = retrieve(&mut kb, &q).unwrap().known;
        let poss = possible(&mut kb, &q).unwrap();
        assert_eq!(known.len(), 1);
        // Open world: Maybe is not *known* to be a PERSON but *might* be.
        assert_eq!(poss.len(), 2);
        for k in &known {
            assert!(poss.contains(k));
        }
    }

    #[test]
    fn marked_query_collects_fillers() {
        let mut kb = kb_with_schema();
        let eat = kb.schema_mut().symbols.find_role("eat").unwrap();
        let person = kb.schema_mut().symbols.concept("PERSON");
        kb.create_ind("Rocky").unwrap();
        kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();
        let pizza = IndRef::Classic(kb.schema_mut().symbols.individual("Pizza-1"));
        kb.assert_ind("Rocky", &Concept::Fills(eat, vec![pizza.clone()]))
            .unwrap();
        // (AND PERSON (ALL eat ?:THING)) — "things eaten by persons".
        let q = MarkedQuery {
            concept: Concept::Name(person),
            marker: vec![eat],
        };
        let fillers = ask_necessary_set(&mut kb, &q).unwrap();
        assert_eq!(fillers, vec![pizza]);
    }

    #[test]
    fn ask_description_includes_rule_consequences() {
        // The paper's JUNK-FOOD example: the description of what students
        // eat includes JUNK-FOOD because of the rule, with no junk food
        // instance anywhere in the database.
        let mut kb = kb_with_schema();
        kb.define_concept("JUNK-FOOD", Concept::primitive(Concept::thing(), "junk"))
            .unwrap();
        let junk = kb.schema_mut().symbols.concept("JUNK-FOOD");
        let eat = kb.schema_mut().symbols.find_role("eat").unwrap();
        kb.assert_rule("STUDENT", Concept::all(eat, Concept::Name(junk)))
            .unwrap();
        let student = kb.schema_mut().symbols.concept("STUDENT");
        // (AND STUDENT (ALL eat ?:THING))
        let q = MarkedQuery {
            concept: Concept::Name(student),
            marker: vec![eat],
        };
        let desc = ask_description(&mut kb, &q).unwrap();
        let junk_nf = kb.schema().concept_nf(junk).unwrap();
        assert!(classic_core::subsumes(junk_nf, &desc));
    }

    #[test]
    fn describe_round_trips_through_language() {
        let mut kb = kb_with_schema();
        let person = kb.schema_mut().symbols.concept("PERSON");
        let enrolled = kb.schema_mut().symbols.find_role("enrolled-at").unwrap();
        kb.create_ind("Rocky").unwrap();
        kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();
        kb.assert_ind("Rocky", &Concept::AtLeast(2, enrolled))
            .unwrap();
        let rocky = kb
            .ind_id(kb.schema().symbols.find_individual("Rocky").unwrap())
            .unwrap();
        let c = describe(&kb, rocky);
        // Re-normalizing the description reproduces the derived NF.
        let renf = kb.normalize(&c).unwrap();
        assert_eq!(renf, kb.ind(rocky).derived);
    }

    #[test]
    fn query_builder_matches_free_functions() {
        let mut kb = kb_with_schema();
        let person = kb.schema_mut().symbols.concept("PERSON");
        let eat = kb.schema_mut().symbols.find_role("eat").unwrap();
        kb.create_ind("Rocky").unwrap();
        kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();
        let pizza = IndRef::Classic(kb.schema_mut().symbols.individual("Pizza-1"));
        kb.assert_ind("Rocky", &Concept::Fills(eat, vec![pizza.clone()]))
            .unwrap();
        kb.create_ind("Maybe").unwrap();

        let q = Concept::Name(person);
        let known = Query::concept(q.clone())
            .run(&mut kb)
            .unwrap()
            .into_known()
            .unwrap();
        assert_eq!(known.known, retrieve(&mut kb, &q).unwrap().known);

        let poss = Query::concept(q.clone())
            .possible()
            .run(&mut kb)
            .unwrap()
            .into_possible()
            .unwrap();
        assert_eq!(poss, possible(&mut kb, &q).unwrap());

        let mq = MarkedQuery {
            concept: q.clone(),
            marker: vec![eat],
        };
        let set = Query::marked(mq.clone())
            .run(&mut kb)
            .unwrap()
            .into_necessary_set()
            .unwrap();
        assert_eq!(set, ask_necessary_set(&mut kb, &mq).unwrap());
        assert_eq!(set, vec![pizza]);

        let desc = Query::concept(q)
            .marker([eat])
            .description()
            .run(&mut kb)
            .unwrap()
            .into_description()
            .unwrap();
        assert_eq!(desc, ask_description(&mut kb, &mq).unwrap());
    }

    #[test]
    fn answer_accessors_reject_other_variants() {
        let ans = Answer::Possible(Vec::new());
        assert!(ans.clone().into_known().is_none());
        assert!(ans.clone().into_necessary_set().is_none());
        assert!(ans.clone().into_description().is_none());
        assert!(ans.into_possible().is_some());
    }

    #[test]
    fn parallel_candidate_testing_agrees_with_sequential() {
        // Enough candidates to cross PARALLEL_THRESHOLD, so the scoped
        // thread fan-out actually runs and must reproduce the sequential
        // (naive) answer exactly.
        let mut kb = kb_with_schema();
        let person = kb.schema_mut().symbols.concept("PERSON");
        let enrolled = kb.schema_mut().symbols.find_role("enrolled-at").unwrap();
        let total = PARALLEL_THRESHOLD + 64;
        for i in 0..total {
            let name = format!("P{i}");
            kb.create_ind(&name).unwrap();
            kb.assert_ind(&name, &Concept::Name(person)).unwrap();
            kb.assert_ind(&name, &Concept::AtLeast((i % 5) as u32, enrolled))
                .unwrap();
        }
        // Strict refinement of STUDENT: every PERSON with ≥ 1 enrollment
        // is a candidate; only those with ≥ 3 pass the instance test.
        let q = Concept::and([Concept::Name(person), Concept::AtLeast(3, enrolled)]);
        let ans = retrieve(&mut kb, &q).unwrap();
        assert!(
            ans.stats.tested >= PARALLEL_THRESHOLD,
            "expected the parallel path to engage (tested {})",
            ans.stats.tested
        );
        let mut a = ans.known.clone();
        a.sort();
        let mut b = retrieve_naive(&mut kb, &q).unwrap().known;
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn panicking_recognizer_is_an_error_not_an_abort() {
        let mut kb = kb_with_schema();
        kb.register_test("boom", |_| panic!("recognizer boom"));
        let boom = kb.schema().symbols.find_test("boom").unwrap();
        let person = kb.schema_mut().symbols.concept("PERSON");
        kb.create_ind("Rocky").unwrap();
        kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();
        // One candidate: the sequential instance-test path.
        let q = Concept::and([Concept::Name(person), Concept::Test(boom)]);
        let err = retrieve(&mut kb, &q).unwrap_err();
        assert!(
            matches!(err, ClassicError::RecognizerPanicked(_)),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("recognizer boom"), "{err}");
        // The naive baseline reports the same failure.
        let err = retrieve_naive(&mut kb, &q).unwrap_err();
        assert!(matches!(err, ClassicError::RecognizerPanicked(_)));
        // The KB remains usable: no cache was poisoned by the unwind.
        let sane = retrieve(&mut kb, &Concept::Name(person)).unwrap();
        assert_eq!(sane.known.len(), 1);
    }

    #[test]
    fn panicking_recognizer_is_caught_on_the_parallel_path() {
        let mut kb = kb_with_schema();
        kb.register_test("boom", |_| panic!("recognizer boom"));
        let boom = kb.schema().symbols.find_test("boom").unwrap();
        let person = kb.schema_mut().symbols.concept("PERSON");
        // Enough candidates to cross PARALLEL_THRESHOLD, so the panic is
        // raised inside a scoped worker thread.
        for i in 0..(PARALLEL_THRESHOLD + 32) {
            let name = format!("P{i}");
            kb.create_ind(&name).unwrap();
            kb.assert_ind(&name, &Concept::Name(person)).unwrap();
        }
        let q = Concept::and([Concept::Name(person), Concept::Test(boom)]);
        let err = retrieve(&mut kb, &q).unwrap_err();
        assert!(
            matches!(err, ClassicError::RecognizerPanicked(_)),
            "unexpected error: {err}"
        );
        // Still usable afterwards.
        let sane = retrieve(&mut kb, &Concept::Name(person)).unwrap();
        assert_eq!(sane.known.len(), PARALLEL_THRESHOLD + 32);
    }

    #[test]
    fn panicking_recognizer_surfaces_through_conjunctive_queries() {
        let mut kb = kb_with_schema();
        kb.register_test("boom", |_| panic!("recognizer boom"));
        let boom = kb.schema().symbols.find_test("boom").unwrap();
        let person = kb.schema_mut().symbols.concept("PERSON");
        kb.create_ind("Rocky").unwrap();
        kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();
        let q = KbQuery::new(
            &["x"],
            vec![conjunctive::KbAtom::IsA(
                conjunctive::KbTerm::var("x"),
                Concept::and([Concept::Name(person), Concept::Test(boom)]),
            )],
        );
        let err = answer(&mut kb, &q).unwrap_err();
        assert!(matches!(err, ClassicError::RecognizerPanicked(_)));
    }

    #[test]
    fn incoherent_query_has_no_answers() {
        let mut kb = kb_with_schema();
        kb.create_ind("X").unwrap();
        let enrolled = kb.schema_mut().symbols.find_role("enrolled-at").unwrap();
        let q = Concept::and([Concept::AtLeast(2, enrolled), Concept::AtMost(1, enrolled)]);
        assert!(retrieve(&mut kb, &q).unwrap().known.is_empty());
        assert!(retrieve_naive(&mut kb, &q).unwrap().known.is_empty());
        assert!(possible(&mut kb, &q).unwrap().is_empty());
    }
}
