//! Conjunctive queries over the knowledge base — open world.
//!
//! The paper stops short of a join language ("We have not spent much
//! effort in devising an elaborate query language for this space of
//! facts… We plan to develop a more powerful and integrated query
//! language", §3.5.2) but points at exactly this shape: variables over
//! individuals, membership atoms phrased as *concepts* (keeping the
//! single-language design), and role atoms over fillers.
//!
//! Semantics is **certain answers**: an answer tuple is returned iff every
//! atom is *provably* satisfied — membership through the full recognition
//! machinery (`known_instance`, so defined concepts, closures and rules
//! all participate), role atoms through known fillers. Unlike the
//! closed-world evaluator in `classic-rel`, what is merely unrecorded
//! never silently satisfies or falsifies an atom; it just isn't provable.

use classic_core::desc::{Concept, IndRef};
use classic_core::error::{ClassicError, Result};
use classic_core::normal::NormalForm;
use classic_core::symbol::RoleId;
use classic_kb::{IndId, Kb};
use std::collections::BTreeMap;

/// A term: a variable or a fixed individual (CLASSIC or host).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbTerm {
    /// A variable, bound during evaluation.
    Var(String),
    /// A constant individual.
    Ind(IndRef),
}

impl KbTerm {
    /// A variable term.
    pub fn var(name: &str) -> KbTerm {
        KbTerm::Var(name.to_owned())
    }
}

/// One atom of the query body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbAtom {
    /// `C(t)`: the term is a (provable) instance of the concept. The
    /// concept is an arbitrary CLASSIC expression — the single-language
    /// principle extends to join queries.
    IsA(KbTerm, Concept),
    /// `r(s, o)`: `o` is a known filler of `s`'s role `r`.
    Role(RoleId, KbTerm, KbTerm),
}

/// A conjunctive query with certain-answer semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KbQuery {
    /// Answer variables, in output order.
    pub head: Vec<String>,
    /// The conjunctive body.
    pub body: Vec<KbAtom>,
}

impl KbQuery {
    /// `head(vars…) :- body`.
    pub fn new(head: &[&str], body: Vec<KbAtom>) -> KbQuery {
        KbQuery {
            head: head.iter().map(|s| (*s).to_owned()).collect(),
            body,
        }
    }
}

type Binding = BTreeMap<String, IndRef>;

/// Evaluate a conjunctive query, returning the distinct head tuples.
pub fn answer(kb: &mut Kb, q: &KbQuery) -> Result<Vec<Vec<IndRef>>> {
    // Pre-normalize every membership concept once.
    let mut atom_nfs: Vec<Option<NormalForm>> = Vec::with_capacity(q.body.len());
    for atom in &q.body {
        atom_nfs.push(match atom {
            KbAtom::IsA(_, c) => Some(kb.normalize(c)?),
            KbAtom::Role(..) => None,
        });
    }
    let mut bindings: Vec<Binding> = vec![Binding::new()];
    for (atom, nf) in q.body.iter().zip(&atom_nfs) {
        let mut next: Vec<Binding> = Vec::new();
        for b in &bindings {
            extend(kb, atom, nf.as_ref(), b, &mut next)?;
        }
        bindings = next;
        if bindings.is_empty() {
            break;
        }
    }
    let mut out: Vec<Vec<IndRef>> = Vec::new();
    for b in bindings {
        let tuple: Option<Vec<IndRef>> = q.head.iter().map(|v| b.get(v).cloned()).collect();
        match tuple {
            Some(t) => out.push(t),
            None => {
                return Err(ClassicError::Malformed(
                    "unbound head variable in conjunctive query".into(),
                ))
            }
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn extend(
    kb: &Kb,
    atom: &KbAtom,
    nf: Option<&NormalForm>,
    b: &Binding,
    out: &mut Vec<Binding>,
) -> Result<()> {
    match atom {
        KbAtom::IsA(term, _) => {
            let nf = nf.expect("pre-normalized");
            match resolve(term, b) {
                Some(i) => {
                    if crate::guard_tests(|| satisfies(kb, &i, nf))? {
                        out.push(b.clone());
                    }
                }
                None => {
                    // Enumerate provable instances (CLASSIC individuals;
                    // host values are not enumerable, matching the paper's
                    // treatment of host individuals as non-extensional).
                    let ans = crate::retrieve_nf(kb, nf)?;
                    let KbTerm::Var(v) = term else { unreachable!() };
                    for id in ans.known {
                        let mut nb = b.clone();
                        nb.insert(v.clone(), IndRef::Classic(kb.ind(id).name));
                        out.push(nb);
                    }
                }
            }
        }
        KbAtom::Role(r, s, o) => {
            let subjects: Vec<IndId> = match resolve(s, b) {
                Some(IndRef::Classic(n)) => match kb.ind_id(n) {
                    Ok(id) => vec![id],
                    Err(_) => vec![],
                },
                Some(IndRef::Host(_)) => vec![], // host individuals have no roles
                None => kb.ind_ids().collect(),
            };
            for sid in subjects {
                let sref = IndRef::Classic(kb.ind(sid).name);
                for filler in kb.ind(sid).fillers(*r) {
                    let mut nb = b.clone();
                    if !bind(s, &sref, &mut nb) {
                        continue;
                    }
                    if !bind(o, &filler, &mut nb) {
                        continue;
                    }
                    out.push(nb);
                }
            }
        }
    }
    Ok(())
}

fn resolve(term: &KbTerm, b: &Binding) -> Option<IndRef> {
    match term {
        KbTerm::Ind(i) => Some(i.clone()),
        KbTerm::Var(v) => b.get(v).cloned(),
    }
}

/// Bind (or check) a term against a value.
fn bind(term: &KbTerm, value: &IndRef, b: &mut Binding) -> bool {
    match term {
        KbTerm::Ind(i) => i == value,
        KbTerm::Var(v) => match b.get(v) {
            Some(bound) => bound == value,
            None => {
                b.insert(v.clone(), value.clone());
                true
            }
        },
    }
}

fn satisfies(kb: &Kb, i: &IndRef, nf: &NormalForm) -> bool {
    match i {
        IndRef::Classic(n) => match kb.ind_id(*n) {
            Ok(id) => kb.known_instance(id, nf),
            Err(_) => false,
        },
        IndRef::Host(v) => kb.host_satisfies(v, nf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classic_core::HostValue;

    /// The paper's §3.5.3 scenario: students, cars, makers.
    fn kb() -> (Kb, RoleId, RoleId) {
        let mut kb = Kb::new();
        kb.define_role("thing-driven").unwrap();
        kb.define_role("maker").unwrap();
        kb.define_role("enrolled-at").unwrap();
        kb.define_role("loc").unwrap();
        kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
            .unwrap();
        kb.define_concept("COMPANY", Concept::primitive(Concept::thing(), "company"))
            .unwrap();
        let company = Concept::Name(kb.schema().symbols.find_concept("COMPANY").unwrap());
        kb.define_concept("ITALIAN-COMPANY", Concept::primitive(company, "italian"))
            .unwrap();
        let person = Concept::Name(kb.schema().symbols.find_concept("PERSON").unwrap());
        let enrolled = kb.schema().symbols.find_role("enrolled-at").unwrap();
        kb.define_concept(
            "STUDENT",
            Concept::and([person, Concept::AtLeast(1, enrolled)]),
        )
        .unwrap();
        let driven = kb.schema().symbols.find_role("thing-driven").unwrap();
        let maker = kb.schema().symbols.find_role("maker").unwrap();

        let italian = kb.schema().symbols.find_concept("ITALIAN-COMPANY").unwrap();
        let personc = kb.schema().symbols.find_concept("PERSON").unwrap();
        // Rocky: a student driving a Ferrari (Italian) …
        kb.create_ind("Rocky").unwrap();
        kb.assert_ind("Rocky", &Concept::Name(personc)).unwrap();
        kb.assert_ind("Rocky", &Concept::AtLeast(1, enrolled))
            .unwrap();
        let f512 = IndRef::Classic(kb.schema_mut().symbols.individual("Ferrari-512"));
        kb.assert_ind("Rocky", &Concept::Fills(driven, vec![f512]))
            .unwrap();
        let ferrari = IndRef::Classic(kb.schema_mut().symbols.individual("Ferrari"));
        kb.assert_ind("Ferrari-512", &Concept::Fills(maker, vec![ferrari]))
            .unwrap();
        kb.assert_ind("Ferrari", &Concept::Name(italian)).unwrap();
        // … Pat: a mere person driving a Volvo (maker unknown).
        kb.create_ind("Pat").unwrap();
        kb.assert_ind("Pat", &Concept::Name(personc)).unwrap();
        let volvo = IndRef::Classic(kb.schema_mut().symbols.individual("Volvo-1"));
        kb.assert_ind("Pat", &Concept::Fills(driven, vec![volvo]))
            .unwrap();
        (kb, driven, maker)
    }

    #[test]
    fn join_across_membership_and_roles() {
        // q(s, m) :- STUDENT(s), thing-driven(s, c), maker(c, m),
        //            ITALIAN-COMPANY(m).
        let (mut kb, driven, maker) = kb();
        let student = Concept::Name(kb.schema().symbols.find_concept("STUDENT").unwrap());
        let italian = Concept::Name(kb.schema().symbols.find_concept("ITALIAN-COMPANY").unwrap());
        let q = KbQuery::new(
            &["s", "m"],
            vec![
                KbAtom::IsA(KbTerm::var("s"), student),
                KbAtom::Role(driven, KbTerm::var("s"), KbTerm::var("c")),
                KbAtom::Role(maker, KbTerm::var("c"), KbTerm::var("m")),
                KbAtom::IsA(KbTerm::var("m"), italian),
            ],
        );
        let ans = answer(&mut kb, &q).unwrap();
        assert_eq!(ans.len(), 1);
        let rocky = kb.schema().symbols.find_individual("Rocky").unwrap();
        let ferrari = kb.schema().symbols.find_individual("Ferrari").unwrap();
        assert_eq!(
            ans[0],
            vec![IndRef::Classic(rocky), IndRef::Classic(ferrari)]
        );
    }

    #[test]
    fn membership_atoms_use_recognition_not_told_facts() {
        // Rocky was never asserted a STUDENT — recognition supplies it.
        let (mut kb, _, _) = kb();
        let student = Concept::Name(kb.schema().symbols.find_concept("STUDENT").unwrap());
        let q = KbQuery::new(&["s"], vec![KbAtom::IsA(KbTerm::var("s"), student)]);
        let ans = answer(&mut kb, &q).unwrap();
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn ad_hoc_concepts_in_atoms() {
        // Membership atoms take arbitrary expressions, not just names.
        let (mut kb, driven, _) = kb();
        let q = KbQuery::new(
            &["p"],
            vec![KbAtom::IsA(KbTerm::var("p"), Concept::AtLeast(1, driven))],
        );
        let ans = answer(&mut kb, &q).unwrap();
        assert_eq!(ans.len(), 2, "Rocky and Pat both drive something");
    }

    #[test]
    fn constants_and_repeated_variables() {
        let (mut kb, driven, _) = kb();
        let rocky = IndRef::Classic(kb.schema().symbols.find_individual("Rocky").unwrap());
        // What does Rocky drive?
        let q = KbQuery::new(
            &["c"],
            vec![KbAtom::Role(driven, KbTerm::Ind(rocky), KbTerm::var("c"))],
        );
        let ans = answer(&mut kb, &q).unwrap();
        assert_eq!(ans.len(), 1);
        // Self-loop: drives(x, x) — nobody.
        let q = KbQuery::new(
            &["x"],
            vec![KbAtom::Role(driven, KbTerm::var("x"), KbTerm::var("x"))],
        );
        assert!(answer(&mut kb, &q).unwrap().is_empty());
    }

    #[test]
    fn host_values_flow_through_role_atoms() {
        let (mut kb, _, _) = kb();
        let loc = kb.schema().symbols.find_role("loc").unwrap();
        kb.assert_ind(
            "Rocky",
            &Concept::Fills(loc, vec![IndRef::Host(HostValue::Int(7))]),
        )
        .unwrap();
        let q = KbQuery::new(
            &["v"],
            vec![KbAtom::Role(loc, KbTerm::var("x"), KbTerm::var("v"))],
        );
        let ans = answer(&mut kb, &q).unwrap();
        assert_eq!(ans, vec![vec![IndRef::Host(HostValue::Int(7))]]);
        // And a host constant can be checked against a host concept atom.
        let q = KbQuery::new(
            &["v"],
            vec![
                KbAtom::Role(loc, KbTerm::var("x"), KbTerm::var("v")),
                KbAtom::IsA(
                    KbTerm::var("v"),
                    Concept::Builtin(classic_core::Layer::Host(Some(
                        classic_core::HostClass::Integer,
                    ))),
                ),
            ],
        );
        assert_eq!(answer(&mut kb, &q).unwrap().len(), 1);
    }

    #[test]
    fn unbound_head_variable_is_an_error() {
        let (mut kb, driven, _) = kb();
        let q = KbQuery::new(
            &["ghost"],
            vec![KbAtom::Role(driven, KbTerm::var("x"), KbTerm::var("y"))],
        );
        assert!(answer(&mut kb, &q).is_err());
    }

    #[test]
    fn certain_answer_semantics_vs_closed_world() {
        // Pat drives Volvo-1 whose maker is unknown: no certain answer to
        // "who drives something Italian-made" for Pat (and no fabricated
        // negative either — the atom is simply not provable).
        let (mut kb, driven, maker) = kb();
        let italian = Concept::Name(kb.schema().symbols.find_concept("ITALIAN-COMPANY").unwrap());
        let q = KbQuery::new(
            &["p"],
            vec![
                KbAtom::Role(driven, KbTerm::var("p"), KbTerm::var("c")),
                KbAtom::Role(maker, KbTerm::var("c"), KbTerm::var("m")),
                KbAtom::IsA(KbTerm::var("m"), italian),
            ],
        );
        let ans = answer(&mut kb, &q).unwrap();
        assert_eq!(ans.len(), 1, "only Rocky's chain is provable");
    }
}
