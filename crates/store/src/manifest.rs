//! The manifest: the generation-stamped root of the segmented snapshot.
//!
//! A store directory contains exactly one manifest file. It names the
//! live segments (one schema segment plus zero or more individual
//! segments, partitioned by arena range), carries the compaction
//! generation, and is replaced atomically by tmp-write/fsync/rename —
//! the rename *is* the publication point of a compaction. Everything
//! else in the directory (segment files, parked "fold" logs, temp files)
//! is interpreted relative to the manifest: segments it does not
//! reference are garbage, logs whose generation is older than its are
//! already folded in and must not be replayed.
//!
//! The byte-level layout is normatively specified in `docs/FORMAT.md` §4.

use crate::segment::{fnv1a, storage_err, SegmentKind};
use classic_core::error::Result;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// On-disk format version written to (and accepted from) manifests.
pub const MANIFEST_VERSION: u32 = 1;

const MANIFEST_MAGIC: &str = ";!classic-manifest:";
const END_MARKER: &str = ";!end";

/// One live segment named by the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// What the segment holds.
    pub kind: SegmentKind,
    /// First arena index covered (inclusive); 0 for the schema segment.
    pub lo: usize,
    /// One past the last arena index covered; 0 for the schema segment.
    pub hi: usize,
    /// Number of individuals in the segment (0 for the schema segment).
    pub count: usize,
    /// Segment file name, relative to the store directory.
    pub file: String,
    /// FNV-1a 64 hash of the segment body the file must carry.
    pub hash: u64,
    /// Size of the segment body in bytes (diagnostics and sizing only;
    /// the hash is the integrity check).
    pub bytes: u64,
    /// The individual names the segment holds, in arena order (empty for
    /// the schema segment). The concatenated rosters of all `inds`
    /// entries are the database's full individual roster: `open()`
    /// pre-creates them in this order so the arena layout is canonical
    /// regardless of which order segments later hydrate in.
    pub names: Vec<String>,
}

/// A decoded manifest: the set of live segments at one compaction
/// generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The compaction generation this manifest publishes. Strictly
    /// increasing across the life of a store.
    pub generation: u64,
    /// Live segments: at most one [`SegmentKind::Schema`] entry plus the
    /// individual segments in ascending `lo` order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// The schema segment entry, if the manifest has one (an empty
    /// database compacts to a manifest with a schema segment whose body
    /// is empty, so in practice it always does).
    pub fn schema_entry(&self) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.kind == SegmentKind::Schema)
    }

    /// The individual-range entries in ascending arena order.
    pub fn ind_entries(&self) -> impl Iterator<Item = &ManifestEntry> {
        self.entries.iter().filter(|e| e.kind == SegmentKind::Inds)
    }

    /// Serialize to the on-disk text form (`docs/FORMAT.md` §4).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{MANIFEST_MAGIC} {MANIFEST_VERSION}\n"));
        out.push_str(&format!(";!gen: {}\n", self.generation));
        for e in &self.entries {
            match e.kind {
                SegmentKind::Schema => {
                    out.push_str(&format!("schema {} {:016x} {}\n", e.file, e.hash, e.bytes));
                }
                SegmentKind::Inds => {
                    out.push_str(&format!(
                        "inds {} {} {} {} {:016x} {}",
                        e.lo, e.hi, e.count, e.file, e.hash, e.bytes
                    ));
                    for name in &e.names {
                        out.push(' ');
                        out.push_str(name);
                    }
                    out.push('\n');
                }
            }
        }
        out.push_str(END_MARKER);
        out.push('\n');
        out
    }

    /// Parse the on-disk text form. `path` is used for error reporting
    /// only. Rejects newer-than-supported versions, malformed entries,
    /// and a missing `;!end` terminator (a manifest is published by
    /// atomic rename, so truncation means tampering or a filesystem that
    /// broke the rename contract — never something to repair silently).
    pub fn decode(text: &str, path: &Path) -> Result<Manifest> {
        let mut lines = text.lines();
        let first = lines
            .next()
            .ok_or_else(|| storage_err(path, None, "empty manifest"))?;
        let version: u32 = first
            .strip_prefix(MANIFEST_MAGIC)
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| {
                storage_err(
                    path,
                    None,
                    format!("not a classic manifest (first line {first:?})"),
                )
            })?;
        if version > MANIFEST_VERSION {
            return Err(storage_err(
                path,
                None,
                format!("manifest version {version} is newer than supported {MANIFEST_VERSION}"),
            ));
        }
        let mut generation: Option<u64> = None;
        let mut entries = Vec::new();
        let mut terminated = false;
        for line in lines {
            let line = line.trim_end();
            if line == END_MARKER {
                terminated = true;
                break;
            }
            if let Some(v) = line.strip_prefix(";!gen:") {
                generation = Some(v.trim().parse().map_err(|_| {
                    storage_err(path, None, format!("unparseable generation {:?}", v.trim()))
                })?);
                continue;
            }
            if line.starts_with(";!") || line.is_empty() {
                // Unknown ;!key: headers are ignored for forward
                // compatibility (FORMAT.md §9).
                continue;
            }
            let entry = parse_entry(line)
                .ok_or_else(|| storage_err(path, generation, format!("bad entry {line:?}")))?;
            if entry.kind == SegmentKind::Inds && entry.names.len() != entry.count {
                return Err(storage_err(
                    path,
                    generation,
                    format!(
                        "entry for {} declares {} individuals but lists {} names",
                        entry.file,
                        entry.count,
                        entry.names.len()
                    ),
                ));
            }
            entries.push(entry);
        }
        let generation = generation
            .ok_or_else(|| storage_err(path, None, "manifest is missing its ;!gen: header"))?;
        if !terminated {
            return Err(storage_err(
                path,
                Some(generation),
                "manifest is missing its ;!end terminator (truncated?)",
            ));
        }
        Ok(Manifest {
            generation,
            entries,
        })
    }

    /// Load the manifest at `path`, or `None` if the file does not exist
    /// (a store that has never compacted in the segmented format).
    pub fn load(path: &Path) -> Result<Option<Manifest>> {
        let mut text = String::new();
        match File::open(path) {
            Ok(mut f) => f
                .read_to_string(&mut text)
                .map_err(|e| storage_err(path, None, format!("reading: {e}")))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(storage_err(path, None, format!("opening: {e}"))),
        };
        Ok(Some(Manifest::decode(&text, path)?))
    }

    /// Write the manifest durably under fsync-tmp/rename. The rename is
    /// the atomic publication point; the caller fsyncs the directory
    /// afterwards to make the rename itself durable.
    pub fn write_atomic(&self, path: &Path) -> Result<()> {
        let tmp = tmp_path(path);
        (|| -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(self.encode().as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })()
        .map_err(|e| {
            storage_err(
                &tmp,
                Some(self.generation),
                format!("writing manifest: {e}"),
            )
        })
    }
}

fn parse_entry(line: &str) -> Option<ManifestEntry> {
    let mut it = line.split_whitespace();
    match it.next()? {
        "schema" => {
            let file = it.next()?.to_owned();
            let hash = u64::from_str_radix(it.next()?, 16).ok()?;
            let bytes = it.next()?.parse().ok()?;
            Some(ManifestEntry {
                kind: SegmentKind::Schema,
                lo: 0,
                hi: 0,
                count: 0,
                file,
                hash,
                bytes,
                names: Vec::new(),
            })
        }
        "inds" => {
            let lo = it.next()?.parse().ok()?;
            let hi = it.next()?.parse().ok()?;
            let count = it.next()?.parse().ok()?;
            let file = it.next()?.to_owned();
            let hash = u64::from_str_radix(it.next()?, 16).ok()?;
            let bytes = it.next()?.parse().ok()?;
            let names: Vec<String> = it.map(str::to_owned).collect();
            Some(ManifestEntry {
                kind: SegmentKind::Inds,
                lo,
                hi,
                count,
                file,
                hash,
                bytes,
                names,
            })
        }
        _ => None,
    }
}

// ---- store-directory naming ------------------------------------------------

/// The file-name stem a store derives every sibling file name from: the
/// log path's file stem (`kb.log` → `kb`).
pub(crate) fn stem_of(log_path: &Path) -> String {
    log_path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "kb".to_owned())
}

/// `<stem>.manifest`, next to the log.
pub(crate) fn manifest_path(log_path: &Path) -> PathBuf {
    log_path.with_file_name(format!("{}.manifest", stem_of(log_path)))
}

/// `<stem>.fold-<gen>.log`: a parked log whose operations are being (or
/// were) folded into the generation-`gen`+1 segments.
pub(crate) fn fold_log_path(dir: &Path, stem: &str, gen: u64) -> PathBuf {
    dir.join(format!("{stem}.fold-{gen}.log"))
}

/// Parse the generation out of a fold-log file name produced by
/// [`fold_log_path`]. Returns `None` for any other file.
pub(crate) fn parse_fold_gen(file_name: &str, stem: &str) -> Option<u64> {
    file_name
        .strip_prefix(stem)?
        .strip_prefix(".fold-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Is `file_name` a segment file of this store (`<stem>.seg-…`)?
pub(crate) fn is_segment_file(file_name: &str, stem: &str) -> bool {
    file_name.strip_prefix(stem).is_some_and(|rest| {
        rest.strip_prefix(".seg-")
            .is_some_and(|r| r.ends_with(".classic"))
    })
}

/// The `.tmp` sibling used for atomic writes of `path`.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(".tmp");
    path.with_file_name(name)
}

/// Self-describing integrity line for tests: hash of an encoded
/// manifest's entry block (not persisted; used to assert encode/decode
/// stability).
#[doc(hidden)]
pub fn encoded_hash(m: &Manifest) -> u64 {
    fnv1a(m.encode().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            generation: 9,
            entries: vec![
                ManifestEntry {
                    kind: SegmentKind::Schema,
                    lo: 0,
                    hi: 0,
                    count: 0,
                    file: "kb.seg-00ff.classic".into(),
                    hash: 0xff,
                    bytes: 120,
                    names: Vec::new(),
                },
                ManifestEntry {
                    kind: SegmentKind::Inds,
                    lo: 0,
                    hi: 2,
                    count: 2,
                    file: "kb.seg-abcd.classic".into(),
                    hash: 0xabcd,
                    bytes: 40960,
                    names: vec!["Rocky".into(), "Bullwinkle".into()],
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample();
        let decoded = Manifest::decode(&m.encode(), Path::new("kb.manifest")).unwrap();
        assert_eq!(m, decoded);
    }

    #[test]
    fn truncated_manifest_is_rejected_with_path_and_generation() {
        let m = sample();
        let text = m.encode();
        let cut = &text[..text.len() - END_MARKER.len() - 1];
        let err = Manifest::decode(cut, Path::new("/db/kb.manifest"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("/db/kb.manifest"), "{err}");
        assert!(err.contains("generation 9"), "{err}");
        assert!(err.contains(";!end"), "{err}");
    }

    #[test]
    fn newer_version_is_rejected() {
        let text = ";!classic-manifest: 99\n;!gen: 1\n;!end\n";
        let err = Manifest::decode(text, Path::new("kb.manifest"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("version 99"), "{err}");
    }

    #[test]
    fn unknown_headers_are_ignored_for_forward_compat() {
        let text = ";!classic-manifest: 1\n;!gen: 3\n;!flux-capacitor: on\n;!end\n";
        let m = Manifest::decode(text, Path::new("kb.manifest")).unwrap();
        assert_eq!(m.generation, 3);
        assert!(m.entries.is_empty());
    }

    #[test]
    fn naming_scheme_roundtrips() {
        let log = Path::new("/db/kb.log");
        assert_eq!(stem_of(log), "kb");
        assert_eq!(manifest_path(log), Path::new("/db/kb.manifest"));
        let fold = fold_log_path(Path::new("/db"), "kb", 12);
        assert_eq!(fold, Path::new("/db/kb.fold-12.log"));
        assert_eq!(parse_fold_gen("kb.fold-12.log", "kb"), Some(12));
        assert_eq!(parse_fold_gen("kb.fold-12.log", "other"), None);
        assert_eq!(parse_fold_gen("kb.log", "kb"), None);
        assert!(is_segment_file("kb.seg-0123.classic", "kb"));
        assert!(!is_segment_file("kb.seg-0123.classic.tmp", "kb"));
        assert_eq!(
            tmp_path(Path::new("/db/kb.manifest")),
            Path::new("/db/kb.manifest.tmp")
        );
    }
}
