//! Snapshots: serializing a knowledge base as a CLASSIC command script.
//!
//! The paper's "single language, multiple roles" point (§6) extends
//! naturally to persistence: the DDL/DML command stream *is* the
//! serialization format. A snapshot is a script of `define-role`,
//! `define-concept`, `assert-rule`, `create-ind` and `assert-ind`
//! commands that, replayed against a fresh `Kb`, reconstructs the same
//! state — propagation is deterministic and monotone, so replaying the
//! *told* information rebuilds every *derived* fact.
//!
//! `TEST` functions are host-language closures and cannot be serialized;
//! a snapshot records the registered test names in a header comment, and
//! [`crate::replay`] requires them to be re-registered first (the same
//! contract the 1989 system had with its LISP environment).

use classic_core::error::Result;
use classic_kb::Kb;
use std::fmt::Write as _;

/// Render the schema half of a snapshot — the `;!tests:` contract
/// header, role/attribute declarations, concept definitions, and active
/// rules — as a replayable command script.
///
/// This is the body of the segmented format's *schema segment* (see
/// `docs/FORMAT.md` §5) and the opening section of the monolithic
/// [`snapshot_to_string`]; both serializations share one renderer so the
/// two formats cannot drift.
///
/// ```
/// use classic_kb::Kb;
/// let mut kb = Kb::new();
/// kb.define_role("enrolled-at").unwrap();
/// let body = classic_store::snapshot::render_schema_body(&kb);
/// assert_eq!(body, "(define-role enrolled-at)\n");
/// ```
pub fn render_schema_body(kb: &Kb) -> String {
    let mut out = String::new();
    let symbols = &kb.schema().symbols;
    // Required host test registrations, as a machine-readable comment.
    let tests: Vec<&str> = (0..)
        .map_while(|i| {
            let id = classic_core::TestId::from_index(i);
            kb.schema()
                .check_test(id)
                .ok()
                .map(|()| symbols.test_name(id))
        })
        .collect();
    if !tests.is_empty() {
        let _ = writeln!(out, ";!tests: {}", tests.join(" "));
    }
    // Roles (attributes distinguished), sorted by name so the snapshot
    // text is canonical regardless of interning order.
    let mut roles: Vec<(&str, bool)> = symbols
        .roles()
        .filter_map(|(role, name)| kb.schema().role_decl(role).map(|d| (name, d.attribute)))
        .collect();
    roles.sort();
    for (name, attribute) in roles {
        if attribute {
            let _ = writeln!(out, "(define-attribute {name})");
        } else {
            let _ = writeln!(out, "(define-role {name})");
        }
    }
    // Concept definitions, in definition order (references only point
    // backwards, so replay succeeds).
    for cname in kb.schema().defined_concepts() {
        let told = kb
            .schema()
            .concept_told(cname)
            .expect("defined concept has a told form");
        let _ = writeln!(
            out,
            "(define-concept {} {})",
            symbols.concept_name(cname),
            told.display(symbols)
        );
    }
    // Rules (retired ones were retracted; compaction folds them away).
    for (_, rule) in kb.active_rules() {
        let _ = writeln!(
            out,
            "(assert-rule {} {})",
            symbols.concept_name(rule.antecedent),
            rule.consequent.display(symbols)
        );
    }
    out
}

/// Append the `(create-ind …)` identity line for one individual.
pub(crate) fn render_ind_create(kb: &Kb, id: classic_kb::IndId, out: &mut String) {
    let _ = writeln!(
        out,
        "(create-ind {})",
        kb.schema().symbols.individual_name(kb.ind(id).name)
    );
}

/// Append the `(assert-ind …)` lines for one individual's told facts, in
/// the order they were told (per-individual order is semantically
/// significant for `CLOSE`).
pub(crate) fn render_ind_told(kb: &Kb, id: classic_kb::IndId, out: &mut String) {
    let symbols = &kb.schema().symbols;
    let name = symbols.individual_name(kb.ind(id).name);
    for told in &kb.ind(id).told {
        let _ = writeln!(out, "(assert-ind {name} {})", told.display(symbols));
    }
}

/// Render the complete state of a knowledge base as a command script.
///
/// This is the *monolithic* serialization: one script holding the whole
/// database. The segmented on-disk format (see `docs/FORMAT.md`) splits
/// the same content across a schema segment and fixed-budget individual
/// segments; this function remains as the in-memory canonical form, the
/// E12 ablation baseline, and the rebuild oracle used by tests.
///
/// ```
/// use classic_kb::Kb;
/// let mut kb = Kb::new();
/// kb.create_ind("Rocky").unwrap();
/// let script = classic_store::snapshot_to_string(&kb);
/// assert!(script.contains("(create-ind Rocky)"));
/// ```
pub fn snapshot_to_string(kb: &Kb) -> String {
    let mut out = String::new();
    out.push_str("; CLASSIC snapshot (replayable command script)\n");
    out.push_str(&render_schema_body(kb));
    // Individuals: identities first (forward references in FILLS are
    // legal, but being explicit keeps the script order-insensitive), then
    // the told assertions.
    for id in kb.ind_ids() {
        render_ind_create(kb, id, &mut out);
    }
    for id in kb.ind_ids() {
        render_ind_told(kb, id, &mut out);
    }
    out
}

/// Replay a snapshot (or any command script) against a knowledge base.
/// Returns the number of commands executed.
///
/// If the script carries a `;!tests:` header (written by
/// [`snapshot_to_string`]), every named host test function must already
/// be registered on `kb` — test closures cannot be serialized, so the
/// header is the contract between snapshot writer and reader. A missing
/// registration fails fast here instead of surfacing later as a puzzling
/// `UndefinedTest` mid-replay.
pub fn replay(kb: &mut Kb, script: &str) -> Result<usize> {
    for line in script.lines() {
        if let Some(names) = line.strip_prefix(";!tests:") {
            for name in names.split_whitespace() {
                let registered = kb
                    .schema()
                    .symbols
                    .find_test(name)
                    .map(|t| kb.schema().check_test(t).is_ok())
                    .unwrap_or(false);
                if !registered {
                    return Err(classic_core::ClassicError::Malformed(format!(
                        "snapshot requires host test {name:?}; register it                          before replaying"
                    )));
                }
            }
        }
    }
    let outcomes = classic_lang::run_script(kb, script)?;
    Ok(outcomes.len())
}

/// Convenience: snapshot `kb`'s state and rebuild a fresh KB from it,
/// carrying over the registered test functions via `register_tests`.
pub fn roundtrip(kb: &Kb, register_tests: impl FnOnce(&mut Kb)) -> Result<Kb> {
    let script = snapshot_to_string(kb);
    let mut fresh = Kb::new();
    register_tests(&mut fresh);
    replay(&mut fresh, &script)?;
    Ok(fresh)
}

/// Canonicalize a rendered concept for comparison: the conjunct order
/// inside every `(AND …)` is an artifact of propagation order (it can
/// differ between a directly-executed history and a replayed one without
/// any semantic difference), so AND arguments are sorted recursively.
fn canonical_desc(text: &str) -> String {
    enum Sexp {
        Atom(String),
        List(Vec<Sexp>),
    }
    fn parse(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Sexp {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.peek() == Some(&'(') {
            chars.next();
            let mut items = Vec::new();
            loop {
                while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
                    chars.next();
                }
                match chars.peek() {
                    None => break,
                    Some(')') => {
                        chars.next();
                        break;
                    }
                    Some(_) => items.push(parse(chars)),
                }
            }
            Sexp::List(items)
        } else {
            let mut atom = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() || c == '(' || c == ')' {
                    break;
                }
                atom.push(c);
                chars.next();
            }
            Sexp::Atom(atom)
        }
    }
    fn render(s: &Sexp) -> String {
        match s {
            Sexp::Atom(a) => a.clone(),
            Sexp::List(items) => {
                let mut parts: Vec<String> = items.iter().map(render).collect();
                if parts.first().map(String::as_str) == Some("AND") {
                    parts[1..].sort();
                }
                format!("({})", parts.join(" "))
            }
        }
    }
    render(&parse(&mut text.chars().peekable()))
}

/// Pretty assertion helper used by tests and examples: do two KBs agree on
/// schema size, individuals, and every individual's derived description?
/// Descriptions are compared up to AND-conjunct order (via a recursive
/// canonicalizer that sorts `AND` arguments); everything else is
/// verbatim.
pub fn same_state(a: &Kb, b: &Kb) -> bool {
    if a.ind_count() != b.ind_count()
        || a.schema().concept_count() != b.schema().concept_count()
        || a.active_rules().count() != b.active_rules().count()
    {
        return false;
    }
    for id in a.ind_ids() {
        let an = a.schema().symbols.individual_name(a.ind(id).name);
        let Some(bn) = b.schema().symbols.find_individual(an) else {
            return false;
        };
        let Ok(bid) = b.ind_id(bn) else {
            return false;
        };
        // Compare derived descriptions via their rendered concepts (ids
        // may differ between the two symbol tables).
        let ac = a.ind(id).derived.to_concept(a.schema());
        let bc = b.ind(bid).derived.to_concept(b.schema());
        if canonical_desc(&ac.display(&a.schema().symbols).to_string())
            != canonical_desc(&bc.display(&b.schema().symbols).to_string())
        {
            return false;
        }
        if a.most_specific_concepts(id).len() != b.most_specific_concepts(bid).len() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use classic_core::desc::Concept;
    use classic_core::schema::TestArg;

    #[test]
    fn snapshot_records_required_tests_and_replay_enforces_them() {
        let mut kb = Kb::new();
        kb.register_test(
            "even",
            |arg| matches!(arg, TestArg::Host(classic_core::HostValue::Int(i)) if i % 2 == 0),
        );
        kb.define_role("age").unwrap();
        let even = kb.schema().symbols.find_test("even").unwrap();
        let age = kb.schema().symbols.find_role("age").unwrap();
        kb.define_concept("EVEN-AGED", Concept::all(age, Concept::Test(even)))
            .unwrap();
        let script = snapshot_to_string(&kb);
        assert!(script.contains(";!tests: even"));
        // Replaying without the registration fails fast with a clear
        // message…
        let mut bare = Kb::new();
        let err = replay(&mut bare, &script).unwrap_err();
        assert!(err.to_string().contains("even"));
        // …and succeeds once registered.
        let mut ready = Kb::new();
        ready.register_test("even", |_| true);
        assert!(replay(&mut ready, &script).is_ok());
    }

    #[test]
    fn empty_kb_snapshot_is_replayable() {
        let kb = Kb::new();
        let script = snapshot_to_string(&kb);
        let mut fresh = Kb::new();
        assert_eq!(replay(&mut fresh, &script).unwrap(), 0);
    }

    #[test]
    fn canonical_desc_sorts_and_conjuncts_recursively() {
        assert_eq!(
            canonical_desc("(AND CLASSIC-THING (CLOSE r2) (AT-MOST 1 r0))"),
            canonical_desc("(AND CLASSIC-THING (AT-MOST 1 r0) (CLOSE r2))"),
        );
        assert_eq!(
            canonical_desc("(ALL r (AND B A))"),
            canonical_desc("(ALL r (AND A B))"),
        );
        // Non-AND structure is order-sensitive and preserved.
        assert_ne!(
            canonical_desc("(FILLS r x y)"),
            canonical_desc("(FILLS r y x)"),
        );
        assert_eq!(canonical_desc("P0"), "P0");
    }

    #[test]
    fn same_state_detects_differences() {
        let mut a = Kb::new();
        a.define_role("r").unwrap();
        a.create_ind("X").unwrap();
        let mut b = Kb::new();
        b.define_role("r").unwrap();
        assert!(!same_state(&a, &b), "individual counts differ");
        b.create_ind("X").unwrap();
        assert!(same_state(&a, &b));
        let r = classic_core::RoleId::from_index(0);
        a.assert_ind("X", &Concept::AtLeast(1, r)).unwrap();
        assert!(!same_state(&a, &b), "derived descriptions differ");
    }
}
