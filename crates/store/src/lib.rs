//! # classic-store
//!
//! Persistence for the CLASSIC reproduction: a write-ahead operation log
//! and a **segmented snapshot store** with background compaction, both
//! serialized in the CLASSIC surface syntax itself (the paper's "single
//! language, multiple roles" design carried to storage). See
//! [`DurableKb`], [`snapshot`], [`segment`], and [`manifest`]; the
//! normative on-disk format specification lives in `docs/FORMAT.md`.
//!
//! The paper names secondary storage as its major open implementation
//! issue (§5) and frames the DB as "a cache for persistent information"
//! (§1); this crate is the reproduction's answer at laptop scale.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod manifest;
pub mod segment;
pub mod snapshot;
pub mod store;

pub use manifest::{Manifest, ManifestEntry};
pub use segment::SegmentKind;
pub use snapshot::{replay, roundtrip, same_state, snapshot_to_string};
pub use store::{BulkLoadReport, CompactionReport, CrashPoint, DurableKb, DEFAULT_SEGMENT_BUDGET};
