//! # classic-store
//!
//! Persistence for the CLASSIC reproduction: a write-ahead operation log
//! and snapshot compaction, both serialized in the CLASSIC surface syntax
//! itself (the paper's "single language, multiple roles" design carried
//! to storage). See [`DurableKb`] and [`snapshot`].
//!
//! The paper names secondary storage as its major open implementation
//! issue (§5) and frames the DB as "a cache for persistent information"
//! (§1); this crate is the reproduction's answer at laptop scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod snapshot;
pub mod store;

pub use snapshot::{replay, roundtrip, same_state, snapshot_to_string};
pub use store::DurableKb;
