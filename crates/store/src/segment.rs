//! Segment files: the unit of the segmented snapshot format.
//!
//! A segment is one file holding a replayable slice of the database —
//! either the whole schema (roles, concept definitions, active rules and
//! the `;!tests:` host-function contract) or a fixed-budget run of
//! individuals partitioned by arena range. Segments are content-addressed:
//! the file name embeds the FNV-1a 64 hash of the body, so an unchanged
//! slice is *reused* across compaction generations instead of rewritten,
//! and a published segment file is immutable by construction.
//!
//! The byte-level layout is normatively specified in `docs/FORMAT.md` §5;
//! this module is the reference implementation. Which segments are live
//! is decided solely by the [manifest](crate::manifest).

use classic_core::error::{ClassicError, Result};
use classic_kb::Kb;
use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// On-disk format version written to (and accepted from) segment headers.
pub const SEGMENT_VERSION: u32 = 1;

/// Magic header key opening every segment file.
pub(crate) const SEGMENT_MAGIC: &str = ";!classic-segment:";

/// Marker line separating the segment header from its body.
pub(crate) const BODY_MARKER: &str = ";!body:";

/// What a segment file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Roles, attributes, concept definitions, active rules, and the
    /// required host-test names. Exactly one per manifest; always the
    /// first thing replayed.
    Schema,
    /// A contiguous arena range of individuals: their `create-ind`
    /// identities followed by their told assertions.
    Inds,
}

impl fmt::Display for SegmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentKind::Schema => write!(f, "schema"),
            SegmentKind::Inds => write!(f, "inds"),
        }
    }
}

impl SegmentKind {
    pub(crate) fn parse(s: &str) -> Option<SegmentKind> {
        match s {
            "schema" => Some(SegmentKind::Schema),
            "inds" => Some(SegmentKind::Inds),
            _ => None,
        }
    }
}

/// FNV-1a 64-bit hash over a byte string — the content hash of the
/// segmented format (`docs/FORMAT.md` §3: offset basis
/// `0xcbf29ce484222325`, prime `0x100000001b3`).
///
/// ```
/// // The canonical FNV-1a 64 test vectors.
/// assert_eq!(classic_store::segment::fnv1a(b""), 0xcbf29ce484222325);
/// assert_eq!(classic_store::segment::fnv1a(b"a"), 0xaf63dc4c8601ec8c);
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Build a [`ClassicError::Storage`] naming the offending file and, when
/// known, its compaction generation.
pub(crate) fn storage_err(
    path: &Path,
    generation: Option<u64>,
    detail: impl fmt::Display,
) -> ClassicError {
    ClassicError::Storage {
        path: path.display().to_string(),
        generation,
        detail: detail.to_string(),
    }
}

/// A rendered, not-yet-written segment: the in-memory form the compactor
/// produces before deciding whether the bytes must hit the disk at all
/// (an unchanged body hash means the previous generation's file is
/// reused).
#[derive(Debug, Clone)]
pub(crate) struct RenderedSegment {
    pub kind: SegmentKind,
    /// First arena index covered (inclusive); 0 for schema.
    pub lo: usize,
    /// One past the last arena index covered; 0 for schema.
    pub hi: usize,
    /// Individual names in the range, in arena order (empty for schema).
    pub names: Vec<String>,
    /// The replayable command-script body.
    pub body: String,
    /// FNV-1a 64 of `body`'s bytes.
    pub hash: u64,
}

/// Render the schema segment body for the current state of `kb`.
pub(crate) fn render_schema_segment(kb: &Kb) -> RenderedSegment {
    let body = crate::snapshot::render_schema_body(kb);
    let hash = fnv1a(body.as_bytes());
    RenderedSegment {
        kind: SegmentKind::Schema,
        lo: 0,
        hi: 0,
        names: Vec::new(),
        body,
        hash,
    }
}

/// Partition the individual arena into segments of at most `budget`
/// individuals each and render them. Per-individual told order is
/// preserved exactly; each segment opens with the `create-ind`
/// identities of its range so hydrating it in isolation is meaningful.
pub(crate) fn render_ind_segments(kb: &Kb, budget: usize) -> Vec<RenderedSegment> {
    let budget = budget.max(1);
    let ids: Vec<classic_kb::IndId> = kb.ind_ids().collect();
    let mut out = Vec::new();
    for (chunk_ix, chunk) in ids.chunks(budget).enumerate() {
        let lo = chunk_ix * budget;
        let mut body = String::new();
        let mut names = Vec::with_capacity(chunk.len());
        for &id in chunk {
            crate::snapshot::render_ind_create(kb, id, &mut body);
            names.push(
                kb.schema()
                    .symbols
                    .individual_name(kb.ind(id).name)
                    .to_owned(),
            );
        }
        for &id in chunk {
            crate::snapshot::render_ind_told(kb, id, &mut body);
        }
        let hash = fnv1a(body.as_bytes());
        out.push(RenderedSegment {
            kind: SegmentKind::Inds,
            lo,
            hi: lo + chunk.len(),
            names,
            body,
            hash,
        });
    }
    out
}

/// The content-addressed file name for a segment body hash:
/// `<stem>.seg-<hash:016x>.classic`.
pub(crate) fn segment_file_name(stem: &str, hash: u64) -> String {
    format!("{stem}.seg-{hash:016x}.classic")
}

/// Serialize a segment (header + body) to its on-disk byte form.
pub(crate) fn encode(seg: &RenderedSegment, generation: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!("{SEGMENT_MAGIC} {SEGMENT_VERSION}\n"));
    out.push_str(&format!(";!kind: {}\n", seg.kind));
    out.push_str(&format!(";!gen: {generation}\n"));
    if seg.kind == SegmentKind::Inds {
        out.push_str(&format!(";!range: {} {}\n", seg.lo, seg.hi));
        out.push_str(&format!(";!inds: {}\n", seg.names.join(" ")));
    }
    out.push_str(BODY_MARKER);
    out.push('\n');
    out.push_str(&seg.body);
    out
}

/// Write a segment durably under the fsync-tmp/rename discipline. The
/// caller is responsible for the subsequent directory fsync (one per
/// publish batch, not one per file). Returns the final path.
pub(crate) fn write_segment(
    dir: &Path,
    file_name: &str,
    seg: &RenderedSegment,
    generation: u64,
) -> Result<PathBuf> {
    let final_path = dir.join(file_name);
    let tmp = dir.join(format!("{file_name}.tmp"));
    let bytes = encode(seg, generation);
    (|| -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, &final_path)
    })()
    .map_err(|e| storage_err(&tmp, Some(generation), format!("writing segment: {e}")))?;
    Ok(final_path)
}

/// A parsed segment file header (everything above the `;!body:` marker).
#[derive(Debug, Clone)]
pub(crate) struct SegmentHeader {
    /// Format version (kept for diagnostics; compatibility is enforced
    /// at parse time).
    #[allow(dead_code)]
    pub version: u32,
    pub kind: SegmentKind,
    pub generation: u64,
    pub lo: usize,
    pub hi: usize,
    pub names: Vec<String>,
}

fn parse_header_lines(
    path: &Path,
    mut next_line: impl FnMut() -> std::io::Result<Option<String>>,
) -> Result<SegmentHeader> {
    let bad = |detail: String| storage_err(path, None, detail);
    let first = next_line()
        .map_err(|e| bad(format!("reading segment header: {e}")))?
        .ok_or_else(|| bad("empty segment file".into()))?;
    let version: u32 = first
        .strip_prefix(SEGMENT_MAGIC)
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| bad(format!("not a classic segment file (first line {first:?})")))?;
    if version > SEGMENT_VERSION {
        return Err(bad(format!(
            "segment format version {version} is newer than supported {SEGMENT_VERSION}"
        )));
    }
    let mut header = SegmentHeader {
        version,
        kind: SegmentKind::Schema,
        generation: 0,
        lo: 0,
        hi: 0,
        names: Vec::new(),
    };
    let mut saw_kind = false;
    loop {
        let line = next_line()
            .map_err(|e| bad(format!("reading segment header: {e}")))?
            .ok_or_else(|| bad("segment header ended without a ;!body: marker".into()))?;
        let line = line.trim_end();
        if line == BODY_MARKER {
            break;
        }
        if let Some(v) = line.strip_prefix(";!kind:") {
            header.kind = SegmentKind::parse(v.trim())
                .ok_or_else(|| bad(format!("unknown segment kind {:?}", v.trim())))?;
            saw_kind = true;
        } else if let Some(v) = line.strip_prefix(";!gen:") {
            header.generation = v
                .trim()
                .parse()
                .map_err(|_| bad(format!("unparseable generation {:?}", v.trim())))?;
        } else if let Some(v) = line.strip_prefix(";!range:") {
            let mut it = v.split_whitespace();
            match (
                it.next().and_then(|s| s.parse().ok()),
                it.next().and_then(|s| s.parse().ok()),
            ) {
                (Some(lo), Some(hi)) => {
                    header.lo = lo;
                    header.hi = hi;
                }
                _ => return Err(bad(format!("unparseable range {:?}", v.trim()))),
            }
        } else if let Some(v) = line.strip_prefix(";!inds:") {
            header.names = v.split_whitespace().map(str::to_owned).collect();
        } else if !line.starts_with(";!") {
            return Err(bad(format!(
                "unexpected non-header line {line:?} before ;!body: marker"
            )));
        }
        // Unknown ;!key: headers are ignored for forward compatibility
        // (FORMAT.md §9).
    }
    if !saw_kind {
        return Err(bad("segment header is missing its ;!kind: field".into()));
    }
    Ok(header)
}

/// Read only the header of a segment file (the body, which dominates
/// the file, is not touched). Production code answers name lookups from
/// the manifest roster instead; this is kept for header round-trip
/// tests.
#[cfg(test)]
pub(crate) fn read_header(path: &Path) -> Result<SegmentHeader> {
    use std::io::{BufRead, BufReader};
    let f = File::open(path).map_err(|e| storage_err(path, None, format!("opening: {e}")))?;
    let mut reader = BufReader::new(f);
    parse_header_lines(path, move || {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        Ok((n > 0).then_some(line))
    })
}

/// Read a whole segment file and verify its body against the hash the
/// manifest promised. Returns `(header, body)`.
pub(crate) fn read_verified(path: &Path, expected_hash: u64) -> Result<(SegmentHeader, String)> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| storage_err(path, None, format!("reading: {e}")))?;
    let mut rest = text.as_str();
    let header = parse_header_lines(path, move || {
        if rest.is_empty() {
            return Ok(None);
        }
        let (line, tail) = match rest.find('\n') {
            Some(ix) => (&rest[..=ix], &rest[ix + 1..]),
            None => (rest, ""),
        };
        rest = tail;
        Ok(Some(line.to_owned()))
    })?;
    let marker = format!("{BODY_MARKER}\n");
    let body_start = text
        .find(&marker)
        .map(|ix| ix + marker.len())
        .ok_or_else(|| {
            storage_err(
                path,
                Some(header.generation),
                "segment has no ;!body: marker",
            )
        })?;
    let body = &text[body_start..];
    let actual = fnv1a(body.as_bytes());
    if actual != expected_hash {
        return Err(storage_err(
            path,
            Some(header.generation),
            format!("segment body hash {actual:016x} does not match manifest {expected_hash:016x}"),
        ));
    }
    Ok((header, body.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use classic_core::desc::Concept;

    #[test]
    fn fnv1a_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    fn sample_kb() -> Kb {
        let mut kb = Kb::new();
        kb.define_role("r").unwrap();
        kb.define_concept("P", Concept::primitive(Concept::thing(), "p"))
            .unwrap();
        for i in 0..5 {
            kb.create_ind(&format!("x{i}")).unwrap();
        }
        let p = Concept::Name(kb.schema().symbols.find_concept("P").unwrap());
        kb.assert_ind("x2", &p).unwrap();
        kb
    }

    #[test]
    fn ind_segments_partition_the_arena_by_budget() {
        let kb = sample_kb();
        let segs = render_ind_segments(&kb, 2);
        assert_eq!(segs.len(), 3);
        assert_eq!((segs[0].lo, segs[0].hi), (0, 2));
        assert_eq!((segs[2].lo, segs[2].hi), (4, 5));
        assert_eq!(segs[1].names, vec!["x2", "x3"]);
        assert!(segs[1].body.contains("(create-ind x2)"));
        assert!(segs[1].body.contains("(assert-ind x2"));
        assert!(!segs[0].body.contains("x2"));
    }

    #[test]
    fn segment_roundtrips_through_disk_with_hash_verification() {
        let kb = sample_kb();
        let seg = &render_ind_segments(&kb, 3)[0];
        let dir = std::env::temp_dir().join(format!("classic-seg-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let name = segment_file_name("kb", seg.hash);
        let path = write_segment(&dir, &name, seg, 7).unwrap();

        let header = read_header(&path).unwrap();
        assert_eq!(header.kind, SegmentKind::Inds);
        assert_eq!(header.generation, 7);
        assert_eq!((header.lo, header.hi), (0, 3));
        assert_eq!(header.names, vec!["x0", "x1", "x2"]);

        let (_, body) = read_verified(&path, seg.hash).unwrap();
        assert_eq!(body, seg.body);

        // A wrong hash is rejected with the path and generation named.
        let err = read_verified(&path, seg.hash ^ 1).unwrap_err().to_string();
        assert!(err.contains(&path.display().to_string()), "{err}");
        assert!(err.contains("generation 7"), "{err}");
    }

    #[test]
    fn truncated_segment_reports_its_path() {
        let dir = std::env::temp_dir().join(format!("classic-seg-trunc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.seg-dead.classic");
        std::fs::write(&path, ";!classic-segment: 1\n;!kind: inds\n").unwrap();
        let err = read_header(&path).unwrap_err().to_string();
        assert!(err.contains("kb.seg-dead.classic"), "{err}");
        assert!(err.contains(";!body:"), "{err}");
    }
}
