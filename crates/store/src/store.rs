//! Durable storage: a write-ahead operation log plus a segmented,
//! background-compacted snapshot.
//!
//! The paper frames the database as "a cache for persistent information of
//! limited complexity" (§1) and names secondary storage as the major open
//! issue (§5). [`DurableKb`] is the reproduction's answer at scale: every
//! *accepted* mutating operator is appended (and fsynced) to a log file in
//! the surface syntax before the call returns, and compaction folds the
//! log into a **segmented snapshot** — a generation-stamped
//! [manifest](crate::manifest) referencing a schema segment plus
//! fixed-budget [individual segments](crate::segment). Opening a store
//! loads the manifest, streams the live segments, and replays only the
//! log suffix past the manifest generation; [`DurableKb::open_paged`]
//! defers individual segments entirely until something references them,
//! making `open()` cost track the log suffix rather than the database
//! size.
//!
//! Compaction runs on a background thread owned by the store
//! ([`DurableKb::compact_in_background`]): the caller's thread renders
//! the segments in memory and rotates the log (microseconds of work),
//! and every fsync/rename of the publish pipeline happens off-thread, so
//! neither readers nor appenders wait on compaction I/O. The
//! crash-ordering invariants at each rename point are specified in
//! `docs/FORMAT.md` §8 and exercised by [`DurableKb::compact_crashing_at`].
//!
//! Rejected updates are never logged — the log records exactly the
//! accepted history, so replay cannot fail on integrity grounds.

use crate::manifest::{
    fold_log_path, is_segment_file, manifest_path, parse_fold_gen, stem_of, tmp_path, Manifest,
    ManifestEntry,
};
use crate::segment::{
    self, render_ind_segments, render_schema_segment, segment_file_name, storage_err,
    RenderedSegment,
};
use crate::snapshot::replay;
use classic_core::desc::Concept;
use classic_core::error::{ClassicError, Result};
use classic_core::schema::TestArg;
use classic_core::symbol::{ConceptName, RoleId, TestId};
use classic_kb::{AssertReport, BulkReport, IndId, Kb, RetractReport};
use classic_lang::{resolve_bulk_rows, BulkSpec, Command, IndLit, Outcome};
use classic_obs::{Counter, FlightRecorder, Gauge, Histogram};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Header line carrying the log generation. Written as the first line of
/// every log file; a log whose generation is *older* than the manifest's
/// predates the published segments (its operations are already folded
/// in) and must not be replayed on top of them.
const GEN_PREFIX: &str = ";!gen:";

/// Default number of individuals per segment (overridable with
/// [`DurableKb::set_segment_budget`]).
pub const DEFAULT_SEGMENT_BUDGET: usize = 512;

fn parse_gen(text: &str) -> u64 {
    text.lines()
        .next()
        .and_then(|l| l.strip_prefix(GEN_PREFIX))
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Where the compactor's publish pipeline is cut short, for crash-ordering
/// tests and the E12 crash matrix. Each point corresponds to one ordering
/// invariant of `docs/FORMAT.md` §8: replay from the on-disk state left
/// behind at *any* of these points must converge to the no-crash state.
///
/// After [`DurableKb::compact_crashing_at`] returns, the in-memory store
/// is intentionally inconsistent with the disk (exactly as a killed
/// process would be) and must only be dropped; reopen from the path to
/// observe recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die after the log rotation (fold rename + fresh active log), with
    /// no segment published: the manifest still names the old
    /// generation, and both the fold log and the new active log survive.
    AfterLogRotation,
    /// Die after the first fresh segment file is renamed into place but
    /// before the manifest moves: orphan segments exist that no manifest
    /// references.
    AfterFirstSegmentPublish,
    /// Die after every segment is durable but before the manifest
    /// rename — the last instant the old generation is still current.
    BeforeManifestRename,
    /// Die immediately after the manifest rename, before the directory
    /// fsync and any cleanup: the new generation is (probably) current
    /// but stale fold logs and unreferenced segments linger.
    AfterManifestRename,
    /// Die after the manifest is fully durable but before stale logs,
    /// stale segments, and legacy files are deleted.
    BeforeCleanup,
}

impl CrashPoint {
    /// Every crash point, in pipeline order — the E12 crash matrix
    /// iterates this.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::AfterLogRotation,
        CrashPoint::AfterFirstSegmentPublish,
        CrashPoint::BeforeManifestRename,
        CrashPoint::AfterManifestRename,
        CrashPoint::BeforeCleanup,
    ];
}

/// What one compaction did, returned by [`DurableKb::poll_compaction`] /
/// [`DurableKb::wait_for_compaction`] and kept as
/// [`DurableKb::last_compaction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// The generation the compaction published.
    pub generation: u64,
    /// Operations folded out of the log by this compaction.
    pub folded_ops: u64,
    /// Total segments in the new manifest.
    pub segments_total: usize,
    /// Segments whose bytes were actually written this generation.
    pub segments_written: usize,
    /// Segments reused from the previous generation (unchanged body
    /// hash — the append-friendly case).
    pub segments_reused: usize,
    /// Segment-body bytes written (excludes reused segments).
    pub bytes_written: u64,
}

/// What one segment-tier [`DurableKb::bulk_load`] did: the per-row
/// accounting plus the durability facts (how much DDL was applied and
/// which generation the load was published under).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BulkLoadReport {
    /// Per-row accounting from [`classic_kb::Kb::bulk_assert`].
    pub report: BulkReport,
    /// Schema-preamble commands applied ahead of the rows.
    pub ddl_applied: usize,
    /// The generation whose manifest rename committed this load.
    pub generation: u64,
}

/// Render the *accepted* rows of a bulk load back into a canonical
/// one-line `(bulk-load …)` log record (the replayer is line-oriented,
/// so the whole form must stay on one line). The `into` clause is
/// rendered from its resolved concept — the same `Concept::display`
/// every logged operator uses — so the line round-trips through the
/// lexer; row values render as re-parseable literals (`"s"` quoted,
/// `'sym` ticked, floats with a dot).
fn render_bulk_load(kb: &mut Kb, spec: &BulkSpec, row_accepted: &[bool]) -> Result<String> {
    use std::fmt::Write as _;
    let mut out = String::from("(bulk-load");
    if let Some(e) = &spec.into {
        let c = e.resolve(kb.schema_mut())?;
        let _ = write!(out, " (into {})", c.display(&kb.schema().symbols));
    }
    let _ = write!(out, " (roles {})", spec.roles.join(" "));
    for (row, accepted) in spec.rows.iter().zip(row_accepted) {
        if !accepted {
            continue;
        }
        let _ = write!(out, " (row {}", row.name);
        for value in &row.values {
            match value {
                None => out.push_str(" _"),
                Some(IndLit::Name(n)) => {
                    let _ = write!(out, " {n}");
                }
                Some(IndLit::Int(i)) => {
                    let _ = write!(out, " {i}");
                }
                Some(IndLit::Float(v)) => {
                    let _ = write!(out, " {v}");
                }
                Some(IndLit::Str(s)) => {
                    let _ = write!(out, " {s:?}");
                }
                Some(IndLit::Sym(s)) => {
                    let _ = write!(out, " '{s}");
                }
            }
        }
        out.push(')');
    }
    out.push(')');
    Ok(out)
}

/// One not-yet-hydrated individual segment tracked by a paged open.
struct LazySegment {
    entry: ManifestEntry,
    hydrated: bool,
}

/// An in-flight background compaction.
struct CompactorHandle {
    thread: std::thread::JoinHandle<Result<()>>,
    manifest: Manifest,
    report: CompactionReport,
}

/// Everything the publish pipeline needs, fully rendered — the plan owns
/// only strings, paths, and observability handles, so it can move to the
/// compactor thread and run without touching the `Kb`.
struct CompactionPlan {
    dir: PathBuf,
    generation: u64,
    segments: Vec<PlannedSegment>,
    manifest: Manifest,
    manifest_file: PathBuf,
    stale_logs: Vec<PathBuf>,
    stale_segments: Vec<PathBuf>,
    legacy_files: Vec<PathBuf>,
    report: CompactionReport,
    /// Flight recorder of the owning KB — the publish pipeline opens its
    /// own root trace on the compactor thread.
    recorder: Arc<FlightRecorder>,
    publish_ns: Histogram,
}

/// Handles into the owning KB's metric registry for the storage-layer
/// series. Registered idempotently ([`get_or_*`](classic_obs::Registry))
/// so reopening a store against the same registry is harmless.
struct StoreObs {
    appends: Counter,
    append_bytes: Counter,
    compactions: Counter,
    segments_written: Counter,
    segments_reused: Counter,
    compact_bytes: Counter,
    bulk_rows: Counter,
    generation: Gauge,
    append_ns: Histogram,
    render_ns: Histogram,
    publish_ns: Histogram,
    bulk_load_ns: Histogram,
}

impl StoreObs {
    fn attach(kb: &Kb) -> StoreObs {
        let m = kb.metrics();
        let c = |name: &str, help: &str| {
            m.get_or_counter(name, help)
                .expect("store metric registration")
        };
        StoreObs {
            appends: c(
                "classic_store_appends_total",
                "operation-log records appended",
            ),
            append_bytes: c(
                "classic_store_append_bytes_total",
                "bytes appended to the operation log (including newlines)",
            ),
            compactions: c("classic_store_compactions_total", "compactions published"),
            segments_written: c(
                "classic_store_segments_written_total",
                "segment bodies written by compactions",
            ),
            segments_reused: c(
                "classic_store_segments_reused_total",
                "unchanged segment bodies reused by compactions",
            ),
            compact_bytes: c(
                "classic_store_compact_bytes_total",
                "segment-body bytes written by compactions",
            ),
            generation: m
                .get_or_gauge(
                    "classic_store_generation",
                    "generation of the last durably published snapshot",
                )
                .expect("store metric registration"),
            append_ns: m
                .get_or_duration_histogram(
                    "classic_store_append_ns",
                    "durable log append wall time (ns)",
                )
                .expect("store metric registration"),
            render_ns: m
                .get_or_duration_histogram(
                    "classic_store_compact_render_ns",
                    "compaction render + log rotation wall time, caller thread (ns)",
                )
                .expect("store metric registration"),
            publish_ns: m
                .get_or_duration_histogram(
                    "classic_store_compact_publish_ns",
                    "compaction publish pipeline wall time, compactor thread (ns)",
                )
                .expect("store metric registration"),
            bulk_rows: c(
                "classic_store_bulk_rows_total",
                "rows accepted through the store's bulk-load paths",
            ),
            bulk_load_ns: m
                .get_or_duration_histogram(
                    "classic_store_bulk_load_ns",
                    "segment-tier bulk_load wall time incl. compaction (ns)",
                )
                .expect("store metric registration"),
        }
    }
}

struct PlannedSegment {
    rendered: RenderedSegment,
    file: String,
    reuse: bool,
}

/// A knowledge base backed by an on-disk operation log and a segmented
/// snapshot store.
///
/// ```
/// use classic_store::DurableKb;
/// # let dir = std::env::temp_dir().join(format!("classic-doc-open-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// # std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("kb.log");
/// let mut store = DurableKb::open(&path, |_| {})?;
/// store.define_role("enrolled-at")?;
/// store.create_ind("Rocky")?;
/// store.compact()?; // fold the log into segments, durably
/// drop(store);
/// let reopened = DurableKb::open(&path, |_| {})?;
/// assert_eq!(reopened.kb()?.ind_count(), 1);
/// # Ok::<(), classic_core::ClassicError>(())
/// ```
pub struct DurableKb {
    kb: Kb,
    log_path: PathBuf,
    dir: PathBuf,
    stem: String,
    log: BufWriter<File>,
    /// Operations appended (or replayed from unfolded logs) since the
    /// last compaction began.
    ops_since_compact: u64,
    /// Generation stamped in the active log's header.
    log_gen: u64,
    /// Generation of the last durably published snapshot (manifest or
    /// legacy monolithic).
    published_gen: u64,
    /// The manifest the published generation corresponds to, if the
    /// store is in the segmented format.
    manifest: Option<Manifest>,
    /// Individual segments not yet replayed (paged open only; empty
    /// after an eager open or `hydrate_all`).
    pending: Vec<LazySegment>,
    compactor: Option<CompactorHandle>,
    auto_compact_after: Option<u64>,
    segment_budget: usize,
    last_compaction: Option<CompactionReport>,
    obs: StoreObs,
}

impl DurableKb {
    /// Open (or create) a store rooted at `path`, replaying everything
    /// eagerly. `path` is the active log file; the manifest, segments,
    /// and parked fold logs live next to it under the same file stem.
    /// `register_tests` must register every host test function the
    /// logged history references.
    ///
    /// Crash leftovers are swept here: `*.tmp` files from an interrupted
    /// atomic write, segment files no manifest references, and fold logs
    /// already folded into the manifest generation.
    pub fn open(path: impl AsRef<Path>, register_tests: impl FnOnce(&mut Kb)) -> Result<DurableKb> {
        Self::open_impl(path.as_ref(), register_tests, false)
    }

    /// Open a store *paged*: the manifest and schema segment load
    /// eagerly, but individual segments hydrate only when something
    /// references them — the log suffix during open, a later mutating
    /// operator, or an explicit [`hydrate_all`](DurableKb::hydrate_all).
    /// With a short log suffix, open cost tracks the suffix, not the
    /// database size (experiment E12 measures exactly this).
    ///
    /// Until the store is fully hydrated, [`kb`](DurableKb::kb) returns
    /// [`ClassicError::NotHydrated`] rather than expose a partial
    /// database; use [`kb_hydrated`](DurableKb::kb_hydrated) for queries.
    pub fn open_paged(
        path: impl AsRef<Path>,
        register_tests: impl FnOnce(&mut Kb),
    ) -> Result<DurableKb> {
        Self::open_impl(path.as_ref(), register_tests, true)
    }

    fn open_impl(
        path: &Path,
        register_tests: impl FnOnce(&mut Kb),
        paged: bool,
    ) -> Result<DurableKb> {
        let log_path = path.to_path_buf();
        let dir = match log_path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let stem = stem_of(&log_path);
        let mut kb = Kb::new();
        register_tests(&mut kb);

        // A crash during any atomic write leaves a `*.tmp` that was never
        // renamed into place; it is dead weight, not state.
        sweep_tmp_files(&dir, &stem);

        let manifest = Manifest::load(&manifest_path(&log_path))?;
        let mut published_gen = 0u64;
        let mut pending: Vec<LazySegment> = Vec::new();
        if let Some(m) = &manifest {
            published_gen = m.generation;
            // Schema first, always eagerly: definitions and the
            // `;!tests:` contract gate everything else.
            if let Some(entry) = m.schema_entry() {
                let seg_path = dir.join(&entry.file);
                let (_, body) = segment::read_verified(&seg_path, entry.hash)?;
                replay(&mut kb, &body).map_err(|e| {
                    storage_err(
                        &seg_path,
                        Some(m.generation),
                        format!("replaying schema: {e}"),
                    )
                })?;
            }
            // Pre-create the full individual roster, in manifest (arena)
            // order, as bare stubs. This keeps the arena layout
            // canonical no matter which order segments hydrate in (a
            // cross-segment FILLS reference would otherwise create its
            // target out of order), and makes duplicate-name checks see
            // parked individuals without touching segment bodies. Stubs
            // are cheap: a symbol interning and an arena push, no told
            // facts, no propagation.
            for entry in m.ind_entries() {
                for name in &entry.names {
                    kb.create_ind(name).map_err(|e| {
                        storage_err(
                            &manifest_path(&log_path),
                            Some(m.generation),
                            format!("creating roster individual {name}: {e}"),
                        )
                    })?;
                }
            }
            pending = m
                .ind_entries()
                .map(|entry| LazySegment {
                    entry: entry.clone(),
                    hydrated: false,
                })
                .collect();
            // Garbage from a crash after the manifest rename: fold logs
            // already folded in, segments no longer referenced.
            sweep_stale(&dir, &stem, m);
        } else {
            // Legacy monolithic format (pre-segmented stores): one
            // `.snapshot` script holding everything. Replay it; the next
            // compaction migrates the store to the segmented format.
            let snap_path = legacy_snapshot_path(&log_path);
            if snap_path.exists() {
                let script = read_file(&snap_path)?;
                published_gen = parse_gen(&script);
                replay(&mut kb, &script).map_err(|e| {
                    storage_err(
                        &snap_path,
                        Some(published_gen),
                        format!("replaying legacy snapshot: {e}"),
                    )
                })?;
            }
        }

        let obs = StoreObs::attach(&kb);
        obs.generation.set(published_gen);
        let mut store = DurableKb {
            kb,
            log_path: log_path.clone(),
            dir,
            stem,
            // Placeholder; replaced below once the logs are settled.
            log: BufWriter::new(tempfile_placeholder(&log_path)?),
            ops_since_compact: 0,
            log_gen: published_gen,
            published_gen,
            manifest,
            pending,
            compactor: None,
            auto_compact_after: None,
            segment_budget: DEFAULT_SEGMENT_BUDGET,
            last_compaction: None,
            obs,
        };
        if !paged {
            store.hydrate_all()?;
        }
        store.replay_logs()?;
        store.reopen_active_log()?;
        Ok(store)
    }

    // ---- access -----------------------------------------------------------

    /// The underlying knowledge base (read-only; mutations must go
    /// through the logged operators).
    ///
    /// # Errors
    ///
    /// [`ClassicError::NotHydrated`] on a
    /// [paged](DurableKb::open_paged) store that still has unhydrated
    /// segments — a partial database must never masquerade as the whole
    /// one. The error names the parked arena range; call
    /// [`hydrate_all`](DurableKb::hydrate_all) first or use
    /// [`kb_hydrated`](DurableKb::kb_hydrated).
    pub fn kb(&self) -> Result<&Kb> {
        let parked: Vec<&ManifestEntry> = self
            .pending
            .iter()
            .filter(|s| !s.hydrated)
            .map(|s| &s.entry)
            .collect();
        if parked.is_empty() {
            return Ok(&self.kb);
        }
        Err(ClassicError::NotHydrated {
            lo: parked.iter().map(|e| e.lo).min().unwrap_or(0),
            hi: parked.iter().map(|e| e.hi).max().unwrap_or(0),
            segments: parked.len(),
        })
    }

    /// Hydrate every remaining segment, then return the (now complete)
    /// knowledge base.
    pub fn kb_hydrated(&mut self) -> Result<&Kb> {
        self.hydrate_all()?;
        Ok(&self.kb)
    }

    /// Mutable access for *query* paths that need `&mut Kb` (ad-hoc
    /// normalization interns symbols but asserts nothing durable).
    /// Hydrates every remaining segment first.
    pub fn kb_mut_for_queries(&mut self) -> &mut Kb {
        self.hydrate_all()
            .expect("segment hydration failed; open() validated the manifest");
        &mut self.kb
    }

    /// Generation of the last durably published snapshot.
    pub fn generation(&self) -> u64 {
        self.published_gen
    }

    /// Generation stamped in the active log (equals
    /// [`generation`](DurableKb::generation) except while a compaction
    /// is in flight or after one failed).
    pub fn log_generation(&self) -> u64 {
        self.log_gen
    }

    /// Individual segments not yet hydrated (0 unless the store was
    /// opened with [`open_paged`](DurableKb::open_paged)).
    pub fn pending_segments(&self) -> usize {
        self.pending.iter().filter(|s| !s.hydrated).count()
    }

    /// Total individual segments in the current manifest.
    pub fn segment_count(&self) -> usize {
        self.pending.len()
    }

    /// Is every segment hydrated (always true for eager opens)?
    pub fn is_fully_hydrated(&self) -> bool {
        self.pending.iter().all(|s| s.hydrated)
    }

    /// The report of the most recent completed compaction, if any
    /// finished during this store's lifetime.
    pub fn last_compaction(&self) -> Option<CompactionReport> {
        self.last_compaction
    }

    /// Operations appended (or replayed from unfolded logs) since the
    /// store was opened or the last compaction began.
    pub fn pending_ops(&self) -> u64 {
        self.ops_since_compact
    }

    /// Set the maximum number of individuals per segment for subsequent
    /// compactions (default [`DEFAULT_SEGMENT_BUDGET`]).
    pub fn set_segment_budget(&mut self, budget: usize) {
        self.segment_budget = budget.max(1);
    }

    /// Start a background compaction automatically whenever the pending
    /// operation count reaches `threshold` (`None` disables — the
    /// default).
    pub fn set_auto_compact_after(&mut self, threshold: Option<u64>) {
        self.auto_compact_after = threshold;
    }

    // ---- hydration ---------------------------------------------------------

    /// Replay every remaining individual segment (ascending arena
    /// order). A no-op on eager opens.
    pub fn hydrate_all(&mut self) -> Result<()> {
        for ix in 0..self.pending.len() {
            self.hydrate_ix(ix)?;
        }
        Ok(())
    }

    fn hydrate_ix(&mut self, ix: usize) -> Result<()> {
        if self.pending[ix].hydrated {
            return Ok(());
        }
        let entry = self.pending[ix].entry.clone();
        let seg_path = self.dir.join(&entry.file);
        let (header, body) = segment::read_verified(&seg_path, entry.hash)?;
        // Every individual in this range already exists as a roster stub
        // (created at open from the manifest). Identity is by name, so
        // the `create-ind` lines are skipped; the told assertions are
        // what hydration replays.
        let mut script = String::with_capacity(body.len());
        for line in body.lines() {
            if let Some(name) = create_ind_target(line) {
                if self.knows_individual(name) {
                    continue;
                }
            }
            script.push_str(line);
            script.push('\n');
        }
        classic_lang::run_script(&mut self.kb, &script).map_err(|e| {
            storage_err(
                &seg_path,
                Some(header.generation),
                format!("replaying segment: {e}"),
            )
        })?;
        self.pending[ix].hydrated = true;
        Ok(())
    }

    fn knows_individual(&self, name: &str) -> bool {
        self.kb
            .schema()
            .symbols
            .find_individual(name)
            .is_some_and(|n| self.kb.ind_id(n).is_ok())
    }

    /// Hydrate the segment holding `name`, if it is still parked. A
    /// no-op when the individual's segment is already in (or the name is
    /// nowhere at all); exactly one segment body replays otherwise. The
    /// mutating operators call this implicitly; it is public so
    /// read-mostly callers can warm the individuals they are about to
    /// query.
    pub fn hydrate_for(&mut self, name: &str) -> Result<()> {
        self.ensure_hydrated_for(name)
    }

    /// Make sure the segment holding `name` (if any) is hydrated. The
    /// manifest's per-segment rosters answer the lookup, so the search
    /// touches no files — exactly one segment body replays, and only
    /// when the name is actually parked.
    fn ensure_hydrated_for(&mut self, name: &str) -> Result<()> {
        if self.is_fully_hydrated() {
            return Ok(());
        }
        for ix in 0..self.pending.len() {
            if !self.pending[ix].hydrated && self.pending[ix].entry.names.iter().any(|n| n == name)
            {
                return self.hydrate_ix(ix);
            }
        }
        // Not parked anywhere: either already hydrated, a brand-new
        // name, or a genuine error — the operation itself reports the
        // latter.
        Ok(())
    }

    // ---- log replay --------------------------------------------------------

    /// Replay every unfolded log: parked fold logs (ascending
    /// generation) and then the active log. Logs whose generation is
    /// older than the published snapshot are already folded in and are
    /// skipped (the stale active log is durably reset — PR 2's
    /// double-apply guard).
    fn replay_logs(&mut self) -> Result<()> {
        let mut folds: Vec<(u64, PathBuf)> = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(gen) = parse_fold_gen(&name, &self.stem) {
                    folds.push((gen, entry.path()));
                }
            }
        }
        folds.sort();
        let mut max_gen = self.published_gen;
        for (name_gen, path) in folds {
            if name_gen < self.published_gen {
                // Swept already unless sweeping raced/failed; skip.
                continue;
            }
            let ops = self.replay_log_file(&path, false)?;
            self.ops_since_compact += ops;
            max_gen = max_gen.max(name_gen);
        }
        if self.log_path.exists() {
            let log_gen = parse_gen(&read_file(&self.log_path)?);
            if log_gen < self.published_gen {
                // The active log predates the snapshot: a crash hit
                // between snapshot publication and log truncation (the
                // legacy monolithic pipeline). Every operation in it is
                // already folded into the snapshot; replaying would
                // double-apply. Reset it durably.
                reset_log(&self.log_path, self.published_gen)?;
                self.log_gen = self.published_gen;
            } else {
                let ops = self.replay_log_file(&self.log_path.clone(), true)?;
                self.ops_since_compact += ops;
                self.log_gen = log_gen.max(max_gen);
            }
        } else {
            // No active log (a crash landed between the fold rename and
            // the fresh log creation). Start one past everything we
            // replayed so fold names can never collide.
            self.log_gen = if max_gen > self.published_gen {
                max_gen + 1
            } else {
                self.published_gen
            };
        }
        Ok(())
    }

    /// Replay one log file line by line, tolerating a torn tail when
    /// `allow_torn` (the active log — the only file a mid-append crash
    /// can tear).
    ///
    /// The log is written one command per line with a flush per append,
    /// so the only corruption a crash can produce is an incomplete final
    /// line. Recovery truncates that tail (after which the log is
    /// exactly the accepted history again); a malformed line *followed
    /// by* valid ones is genuine corruption and is reported as an error
    /// rather than repaired.
    fn replay_log_file(&mut self, path: &Path, allow_torn: bool) -> Result<u64> {
        let raw = read_file(path)?;
        let gen = parse_gen(&raw);
        // Byte offset of the end of the last successfully replayed line.
        let mut good_end = 0usize;
        let mut pending_failure: Option<ClassicError> = None;
        let mut offset = 0usize;
        let mut ops = 0u64;
        for line in raw.split_inclusive('\n') {
            offset += line.len();
            let text = line.trim();
            if text.is_empty() || text.starts_with(';') {
                good_end = offset;
                continue;
            }
            if let Some(e) = pending_failure {
                // A valid-looking line after a failure ⇒ mid-log
                // corruption, not a torn tail.
                return Err(storage_err(
                    path,
                    Some(gen),
                    format!("operation log corrupted mid-file (not just a torn tail): {e}"),
                ));
            }
            match self.apply_log_line(text) {
                Ok(()) => {
                    good_end = offset;
                    ops += 1;
                }
                Err(e) => pending_failure = Some(e),
            }
        }
        if let Some(e) = pending_failure {
            if !allow_torn {
                return Err(storage_err(
                    path,
                    Some(gen),
                    format!("fold log has a broken final record (fold logs are sealed): {e}"),
                ));
            }
            if good_end < raw.len() {
                // Torn tail: truncate the log back to the last good
                // record.
                let file = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| storage_err(path, Some(gen), format!("opening: {e}")))?;
                file.set_len(good_end as u64)
                    .map_err(|e| storage_err(path, Some(gen), format!("truncating: {e}")))?;
            }
        }
        Ok(ops)
    }

    /// Apply one logged operation, hydrating whatever segments its
    /// correctness depends on first: the target individual's segment for
    /// `assert-ind`/`create-ind`, and *everything* for operations whose
    /// effect spans the whole arena (`assert-rule` fires on all current
    /// instances; retraction re-derives the reverse-filler cone).
    fn apply_log_line(&mut self, text: &str) -> Result<()> {
        let mut tokens = text.split_whitespace();
        let op = tokens.next().unwrap_or("").trim_start_matches('(');
        match op {
            "assert-ind" => {
                if let Some(name) = tokens.next() {
                    self.ensure_hydrated_for(name.trim_end_matches(')'))?;
                }
            }
            // create-ind needs no hydration: parked individuals exist as
            // roster stubs, so a duplicate is caught either way, and a
            // new name touches no segment.
            "create-ind" | "define-role" | "define-attribute" | "define-concept" => {}
            // Rule assertion applies to every current instance of the
            // antecedent; retraction re-derives a cone that can span any
            // segment. Conservative and correct: hydrate everything.
            _ => self.hydrate_all()?,
        }
        classic_lang::run_script(&mut self.kb, text)?;
        Ok(())
    }

    /// (Re)open the active log for appending, creating it (with its
    /// generation header) if missing.
    fn reopen_active_log(&mut self) -> Result<()> {
        let file = if self.log_path.exists() {
            OpenOptions::new()
                .append(true)
                .open(&self.log_path)
                .map_err(|e| storage_err(&self.log_path, Some(self.log_gen), e))?
        } else {
            reset_log(&self.log_path, self.log_gen)?
        };
        self.log = BufWriter::new(file);
        Ok(())
    }

    fn append(&mut self, line: &str) -> Result<()> {
        let _span = classic_obs::span_timed(
            self.kb.flight_recorder(),
            "store.append",
            &self.obs.append_ns,
        );
        self.obs.appends.bump();
        self.obs.append_bytes.add(line.len() as u64 + 1);
        let io = |e: std::io::Error| storage_err(&self.log_path, Some(self.log_gen), e);
        self.log.write_all(line.as_bytes()).map_err(io)?;
        self.log.write_all(b"\n").map_err(io)?;
        self.log.flush().map_err(io)?;
        // flush() only drains the userspace buffer; the record must reach
        // the device before the call returns, or an accepted update can
        // vanish in a power loss.
        self.log.get_ref().sync_data().map_err(io)?;
        self.ops_since_compact += 1;
        self.after_append()
    }

    /// Housekeeping after a successful append: reap a finished
    /// background compaction (surfacing its error, if it failed, at the
    /// next durable call) and trigger the auto-compaction policy.
    fn after_append(&mut self) -> Result<()> {
        self.poll_compaction()?;
        if let Some(threshold) = self.auto_compact_after {
            if self.ops_since_compact >= threshold && self.compactor.is_none() {
                self.compact_in_background()?;
            }
        }
        Ok(())
    }

    // ---- logged operators -------------------------------------------------

    /// `define-role`, logged on success.
    pub fn define_role(&mut self, name: &str) -> Result<RoleId> {
        let id = self.kb.define_role(name)?;
        self.append(&format!("(define-role {name})"))?;
        Ok(id)
    }

    /// `define-attribute`, logged on success.
    pub fn define_attribute(&mut self, name: &str) -> Result<RoleId> {
        let id = self.kb.define_attribute(name)?;
        self.append(&format!("(define-attribute {name})"))?;
        Ok(id)
    }

    /// `define-concept`, logged on success.
    pub fn define_concept(&mut self, name: &str, told: Concept) -> Result<ConceptName> {
        let rendered = told.display(&self.kb.schema().symbols).to_string();
        let id = self.kb.define_concept(name, told)?;
        self.append(&format!("(define-concept {name} {rendered})"))?;
        Ok(id)
    }

    /// `create-ind`, logged on success. Needs no hydration even on a
    /// paged store: every parked individual exists as a roster stub, so
    /// the duplicate-name check sees it.
    pub fn create_ind(&mut self, name: &str) -> Result<IndId> {
        let id = self.kb.create_ind(name)?;
        self.append(&format!("(create-ind {name})"))?;
        Ok(id)
    }

    /// `assert-ind`: applied to the KB first; logged only if accepted.
    /// On a paged store the target's segment hydrates first.
    pub fn assert_ind(&mut self, name: &str, desc: &Concept) -> Result<AssertReport> {
        self.ensure_hydrated_for(name)?;
        let rendered = desc.display(&self.kb.schema().symbols).to_string();
        let report = self.kb.assert_ind(name, desc)?;
        self.append(&format!("(assert-ind {name} {rendered})"))?;
        Ok(report)
    }

    /// `assert-rule`: applied to the KB first; logged only if accepted.
    /// Hydrates everything first — a rule fires on every current
    /// instance of its antecedent.
    pub fn assert_rule(&mut self, antecedent: &str, consequent: Concept) -> Result<usize> {
        self.hydrate_all()?;
        let rendered = consequent.display(&self.kb.schema().symbols).to_string();
        let ix = self.kb.assert_rule(antecedent, consequent)?;
        self.append(&format!("(assert-rule {antecedent} {rendered})"))?;
        Ok(ix)
    }

    /// `retract-ind`: applied to the KB first; logged only if accepted.
    /// Compaction folds retractions away — the snapshot records only the
    /// surviving told facts. Hydrates everything first — the re-derived
    /// cone can span any segment.
    pub fn retract_ind(&mut self, name: &str, desc: &Concept) -> Result<RetractReport> {
        self.hydrate_all()?;
        let rendered = desc.display(&self.kb.schema().symbols).to_string();
        let report = self.kb.retract_ind(name, desc)?;
        self.append(&format!("(retract-ind {name} {rendered})"))?;
        Ok(report)
    }

    /// `retract-rule`: applied to the KB first; logged only if accepted.
    pub fn retract_rule(
        &mut self,
        antecedent: &str,
        consequent: &Concept,
    ) -> Result<RetractReport> {
        self.hydrate_all()?;
        let rendered = consequent.display(&self.kb.schema().symbols).to_string();
        let report = self.kb.retract_rule(antecedent, consequent)?;
        self.append(&format!("(retract-rule {antecedent} {rendered})"))?;
        Ok(report)
    }

    /// `retract-rule` by rule id (the REPL's `(retract-rule 7)`):
    /// applied to the KB first; logged on success.
    ///
    /// The log records the *canonical* `(retract-rule <antecedent>
    /// <consequent>)` form, not the id: ids are positions in the live
    /// rule vector, and compaction renumbers them (snapshots drop
    /// retired rules), so a numeric id is not replay-stable. The
    /// canonical form retracts *a* live rule with the same
    /// antecedent/consequent — interchangeable with the one the id
    /// named, since identical rules have identical consequences.
    pub fn retract_rule_by_id(&mut self, rule_ix: usize) -> Result<RetractReport> {
        self.hydrate_all()?;
        let line = self
            .kb
            .rules()
            .get(rule_ix)
            .filter(|r| !r.retired)
            .map(|r| {
                let symbols = &self.kb.schema().symbols;
                format!(
                    "(retract-rule {} {})",
                    symbols.concept_name(r.antecedent),
                    r.consequent.display(symbols)
                )
            });
        let report = self.kb.retract_rule_by_id(rule_ix)?;
        let line = line.expect("retract_rule_by_id accepted a dead rule id");
        self.append(&line)?;
        Ok(report)
    }

    /// Register a host test function. Not logged (closures are not
    /// serializable); the schema segment records the required names.
    pub fn register_test<F>(&mut self, name: &str, f: F) -> TestId
    where
        F: Fn(&TestArg<'_>) -> bool + Send + Sync + 'static,
    {
        self.kb.register_test(name, f)
    }

    /// Evaluate a parsed surface command with durability: mutating
    /// commands route through the logged operators above (applied to the
    /// KB, then appended and fsynced), everything else evaluates
    /// directly against the hydrated KB. This is the server's single
    /// entry point per request — one `match` guarantees no mutating
    /// variant can bypass the log.
    pub fn eval_durable(&mut self, cmd: &Command) -> Result<Outcome> {
        match cmd {
            Command::DefineRole(name) => {
                self.define_role(name)?;
                Ok(Outcome::Ok)
            }
            Command::DefineAttribute(name) => {
                self.define_attribute(name)?;
                Ok(Outcome::Ok)
            }
            Command::DefineConcept(name, expr) => {
                let c = expr.resolve(self.kb.schema_mut())?;
                self.define_concept(name, c)?;
                Ok(Outcome::Ok)
            }
            Command::CreateInd(name) => {
                self.create_ind(name)?;
                Ok(Outcome::Ok)
            }
            Command::AssertInd(name, expr) => {
                let c = expr.resolve(self.kb.schema_mut())?;
                Ok(Outcome::Asserted(self.assert_ind(name, &c)?))
            }
            Command::AssertRule(name, expr) => {
                let c = expr.resolve(self.kb.schema_mut())?;
                Ok(Outcome::RuleAsserted(self.assert_rule(name, c)?))
            }
            Command::RetractInd(name, expr) => {
                let c = expr.resolve(self.kb.schema_mut())?;
                Ok(Outcome::Retracted(self.retract_ind(name, &c)?))
            }
            Command::RetractRule(name, expr) => {
                let c = expr.resolve(self.kb.schema_mut())?;
                Ok(Outcome::Retracted(self.retract_rule(name, &c)?))
            }
            Command::RetractRuleById(ix) => Ok(Outcome::Retracted(self.retract_rule_by_id(*ix)?)),
            Command::BulkLoad(spec) => Ok(Outcome::BulkLoaded(self.bulk_load_logged(spec)?)),
            read_only => classic_lang::eval(self.kb_mut_for_queries(), read_only),
        }
    }

    // ---- bulk ingest -------------------------------------------------------

    /// The log-tier bulk path (the wire `(bulk-load …)` form): apply the
    /// rows through [`Kb::bulk_assert`] in memory, then append **one**
    /// re-rendered `(bulk-load …)` line holding only the *accepted* rows
    /// — a single fsync for the whole batch instead of one per row.
    ///
    /// Replaying the accepted-only form reproduces the same state: by
    /// the bulk path's oracle-parity contract, re-asserting exactly the
    /// accepted rows accepts them all and derives the same fixpoint (and
    /// a replayed `bulk-load` re-enters the batched path, so replay is
    /// fast too). Rejected rows, as everywhere in the log, leave no
    /// trace. Rows are rendered with resolved-name display, which
    /// round-trips through the lexer like every other logged operator.
    pub fn bulk_load_logged(&mut self, spec: &BulkSpec) -> Result<BulkReport> {
        // Rows may reference any parked individual; conservative, like
        // rule assertion.
        self.hydrate_all()?;
        let rows = resolve_bulk_rows(&mut self.kb, spec)?;
        let report = self.kb.bulk_assert(&rows);
        if report.accepted > 0 {
            let line = render_bulk_load(&mut self.kb, spec, &report.row_accepted)?;
            self.obs.bulk_rows.add(report.accepted as u64);
            self.append(&line)?;
        }
        Ok(report)
    }

    /// The segment-tier bulk path (`classic-ingest`, `POST /ingest`):
    /// apply `ddl` (an inferred or hand-written schema preamble) and the
    /// rows entirely in memory — **no per-op log appends** — then
    /// publish one synchronous compaction. The new generation's manifest
    /// rename is the commit point (`docs/FORMAT.md` §8): a crash at any
    /// earlier instant recovers the pre-ingest state from the old
    /// manifest and parked fold logs, because the ingested operations
    /// were never logged; after the rename, the ingested state *is* the
    /// snapshot. There is no partial-ingest state on disk, ever.
    ///
    /// `ddl` must contain only mutating commands (`define-role`,
    /// `define-concept`, `assert-rule`, …). A failing DDL command aborts
    /// the whole load with the KB untouched (the commands are staged on
    /// a clone until everything applies). Row-level clashes do **not**
    /// abort: they are per-row rejections in the returned report, and
    /// only accepted rows reach the snapshot.
    pub fn bulk_load(&mut self, ddl: &[Command], spec: &BulkSpec) -> Result<BulkLoadReport> {
        let _span = classic_obs::span_timed(
            self.kb.flight_recorder(),
            "store.bulk_load",
            &self.obs.bulk_load_ns,
        );
        // One writer at a time: a background compaction holds the fold
        // log this load's rollback story depends on.
        self.wait_for_compaction()?;
        self.hydrate_all()?;

        for cmd in ddl {
            if !cmd.is_mutation() || matches!(cmd, Command::BulkLoad(_)) {
                return Err(ClassicError::Malformed(format!(
                    "bulk_load ddl must be schema/rule mutations, got {cmd:?}"
                )));
            }
        }
        // Stage on a clone so a failing DDL command leaves the store
        // exactly as it was (clone shares the obs registry and test
        // closures by Arc; the pre-ingest KB is the small side of the
        // load, so the copy is cheap relative to the rows).
        let report = if ddl.is_empty() {
            let rows = resolve_bulk_rows(&mut self.kb, spec)?;
            self.kb.bulk_assert(&rows)
        } else {
            let mut staged = self.kb.clone();
            for cmd in ddl {
                classic_lang::eval(&mut staged, cmd)?;
            }
            let rows = resolve_bulk_rows(&mut staged, spec)?;
            let report = staged.bulk_assert(&rows);
            self.kb = staged;
            report
        };
        self.obs.bulk_rows.add(report.accepted as u64);
        // The in-memory state now leads the disk; fold it into segments
        // under a generation bump. This is the only call site where the
        // log does *not* carry the operations being published — the
        // compaction IS the durability.
        self.ops_since_compact += ddl.len() as u64 + report.accepted as u64;
        self.compact()?;
        Ok(BulkLoadReport {
            report,
            ddl_applied: ddl.len(),
            generation: self.published_gen,
        })
    }

    /// Force any buffered log bytes to the device. The logged operators
    /// already fsync per accepted op, so this is a no-op unless a future
    /// buffering change breaks that invariant; the server calls it on
    /// graceful shutdown to make the guarantee explicit at the boundary.
    pub fn flush(&mut self) -> Result<()> {
        let io = |e: std::io::Error| storage_err(&self.log_path, Some(self.log_gen), e);
        self.log.flush().map_err(io)?;
        self.log.get_ref().sync_data().map_err(io)
    }

    // ---- compaction --------------------------------------------------------

    /// Fold the pending log into fresh segments synchronously: start a
    /// background compaction and wait for it. Equivalent to
    /// [`compact_in_background`](DurableKb::compact_in_background)
    /// followed by [`wait_for_compaction`](DurableKb::wait_for_compaction).
    pub fn compact(&mut self) -> Result<()> {
        self.wait_for_compaction()?;
        let started = self.compact_in_background()?;
        debug_assert!(started, "no compaction can be in flight here");
        self.wait_for_compaction()?;
        Ok(())
    }

    /// Start a background compaction, returning `false` (without doing
    /// anything) if one is already in flight.
    ///
    /// The caller's thread renders the new segments in memory and
    /// rotates the log — the active log is parked as a *fold log* and a
    /// fresh one (next generation) takes its place, so appends continue
    /// immediately. All disk work of the publish pipeline (segment
    /// writes, fsyncs, the manifest rename, cleanup) happens on the
    /// compactor thread; see `docs/FORMAT.md` §8 for the ordering
    /// invariants at each step. Completion is observed by
    /// [`poll_compaction`](DurableKb::poll_compaction) (also called
    /// opportunistically after every append) or
    /// [`wait_for_compaction`](DurableKb::wait_for_compaction).
    pub fn compact_in_background(&mut self) -> Result<bool> {
        self.poll_compaction()?;
        if self.compactor.is_some() {
            return Ok(false);
        }
        let plan = self.begin_compaction()?;
        let manifest = plan.manifest.clone();
        let report = plan.report;
        let thread = std::thread::Builder::new()
            .name("classic-store-compactor".into())
            .spawn(move || publish_plan(&plan, None))
            .map_err(|e| {
                storage_err(
                    &self.log_path,
                    Some(self.log_gen),
                    format!("spawning compactor: {e}"),
                )
            })?;
        self.compactor = Some(CompactorHandle {
            thread,
            manifest,
            report,
        });
        Ok(true)
    }

    /// Reap the background compaction if it has finished. Returns its
    /// report when it completed *since the last poll*, `None` if idle or
    /// still running; a failed compaction surfaces its error here (the
    /// store remains usable — the un-deleted fold log still carries the
    /// history, and the next successful compaction supersedes it).
    pub fn poll_compaction(&mut self) -> Result<Option<CompactionReport>> {
        if self
            .compactor
            .as_ref()
            .is_some_and(|h| h.thread.is_finished())
        {
            return self.reap_compactor();
        }
        Ok(None)
    }

    /// Block until any in-flight background compaction completes and
    /// reap it. Returns `None` if none was in flight.
    pub fn wait_for_compaction(&mut self) -> Result<Option<CompactionReport>> {
        if self.compactor.is_some() {
            return self.reap_compactor();
        }
        Ok(None)
    }

    fn reap_compactor(&mut self) -> Result<Option<CompactionReport>> {
        let Some(handle) = self.compactor.take() else {
            return Ok(None);
        };
        match handle.thread.join() {
            Ok(Ok(())) => {
                self.published_gen = handle.manifest.generation;
                self.manifest = Some(handle.manifest);
                // Everything the manifest references is already in
                // memory (compaction hydrates fully), so no segment is
                // pending.
                self.pending.clear();
                self.last_compaction = Some(handle.report);
                self.obs.compactions.bump();
                self.obs
                    .segments_written
                    .add(handle.report.segments_written as u64);
                self.obs
                    .segments_reused
                    .add(handle.report.segments_reused as u64);
                self.obs.compact_bytes.add(handle.report.bytes_written);
                self.obs.generation.set(handle.report.generation);
                Ok(Some(handle.report))
            }
            Ok(Err(e)) => Err(e),
            Err(_) => Err(storage_err(
                &self.log_path,
                Some(self.log_gen),
                "compactor thread panicked",
            )),
        }
    }

    /// Run the compaction pipeline synchronously but stop dead at
    /// `point`, leaving the on-disk state a crash at that instant would
    /// leave. Test/experiment instrumentation for the crash matrix
    /// (`docs/FORMAT.md` §8): after this returns, drop the store without
    /// further operations and reopen from the path to observe recovery.
    pub fn compact_crashing_at(&mut self, point: CrashPoint) -> Result<()> {
        self.wait_for_compaction()?;
        let plan = self.begin_compaction()?;
        if point == CrashPoint::AfterLogRotation {
            return Ok(());
        }
        publish_plan(&plan, Some(point))
    }

    /// Render the new generation and rotate the log. Everything returned
    /// is owned data — the publish pipeline needs no further access to
    /// the store.
    fn begin_compaction(&mut self) -> Result<CompactionPlan> {
        let _span = classic_obs::span_timed(
            self.kb.flight_recorder(),
            "store.compact.render",
            &self.obs.render_ns,
        );
        // Rendering requires the complete database.
        self.hydrate_all()?;
        let next_gen = self.log_gen + 1;

        // Render: one schema segment plus the arena partitioned by the
        // segment budget. Unchanged bodies (same content hash, file
        // already on disk) are reused, not rewritten — that is what
        // makes compaction append-friendly.
        let mut rendered = vec![render_schema_segment(&self.kb)];
        rendered.extend(render_ind_segments(&self.kb, self.segment_budget));
        let mut segments = Vec::with_capacity(rendered.len());
        let mut entries = Vec::with_capacity(rendered.len());
        let mut written = 0usize;
        let mut reused = 0usize;
        let mut bytes_written = 0u64;
        let mut planned_files: Vec<String> = Vec::new();
        for seg in rendered {
            let file = segment_file_name(&self.stem, seg.hash);
            let already_live = self.manifest.as_ref().is_some_and(|m| {
                m.entries
                    .iter()
                    .any(|e| e.hash == seg.hash && e.file == file)
            }) && self.dir.join(&file).exists();
            let duplicate_in_plan = planned_files.contains(&file);
            let reuse = already_live || duplicate_in_plan;
            if reuse {
                reused += 1;
            } else {
                written += 1;
                bytes_written += seg.body.len() as u64;
            }
            planned_files.push(file.clone());
            entries.push(ManifestEntry {
                kind: seg.kind,
                lo: seg.lo,
                hi: seg.hi,
                count: seg.names.len(),
                file: file.clone(),
                hash: seg.hash,
                bytes: seg.body.len() as u64,
                names: seg.names.clone(),
            });
            segments.push(PlannedSegment {
                rendered: seg,
                file,
                reuse,
            });
        }
        let manifest = Manifest {
            generation: next_gen,
            entries,
        };

        // Stale state superseded once the new manifest publishes: every
        // fold log on disk plus the active log we are about to park, old
        // segments the new manifest no longer references, and the legacy
        // monolithic snapshot if this store was just migrated.
        let mut stale_logs: Vec<PathBuf> = Vec::new();
        if let Ok(dir_entries) = std::fs::read_dir(&self.dir) {
            for entry in dir_entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if parse_fold_gen(&name, &self.stem).is_some() {
                    stale_logs.push(entry.path());
                }
            }
        }
        stale_logs.push(fold_log_path(&self.dir, &self.stem, self.log_gen));
        let stale_segments: Vec<PathBuf> = self
            .manifest
            .as_ref()
            .map(|old| {
                old.entries
                    .iter()
                    .filter(|e| !planned_files.contains(&e.file))
                    .map(|e| self.dir.join(&e.file))
                    .collect()
            })
            .unwrap_or_default();
        let mut legacy_files = Vec::new();
        let legacy = legacy_snapshot_path(&self.log_path);
        if legacy.exists() {
            legacy_files.push(legacy);
        }

        // Rotate the log: park the active log as a sealed fold log and
        // start the next generation. A crash right after this leaves
        // manifest(old) + fold(old gen) + active(new gen): open replays
        // both logs over the old segments — nothing is lost, nothing is
        // double-applied.
        let io = |path: &Path, e: std::io::Error| storage_err(path, Some(next_gen), e);
        self.log.flush().map_err(|e| io(&self.log_path, e))?;
        self.log
            .get_ref()
            .sync_all()
            .map_err(|e| io(&self.log_path, e))?;
        let fold = fold_log_path(&self.dir, &self.stem, self.log_gen);
        std::fs::rename(&self.log_path, &fold).map_err(|e| io(&self.log_path, e))?;
        let fresh = reset_log(&self.log_path, next_gen)?;
        sync_dir(&self.log_path)?;
        self.log = BufWriter::new(fresh);
        let folded_ops = std::mem::take(&mut self.ops_since_compact);
        self.log_gen = next_gen;

        let report = CompactionReport {
            generation: next_gen,
            folded_ops,
            segments_total: segments.len(),
            segments_written: written,
            segments_reused: reused,
            bytes_written,
        };
        classic_obs::event("segments_written", written as u64);
        classic_obs::event("segments_reused", reused as u64);
        Ok(CompactionPlan {
            dir: self.dir.clone(),
            generation: next_gen,
            segments,
            manifest,
            manifest_file: manifest_path(&self.log_path),
            stale_logs,
            stale_segments,
            legacy_files,
            report,
            recorder: Arc::clone(self.kb.flight_recorder()),
            publish_ns: self.obs.publish_ns.clone(),
        })
    }
}

impl Drop for DurableKb {
    fn drop(&mut self) {
        // Never leave a half-published generation behind: the publish
        // pipeline is crash-safe, but joining is free and makes `drop;
        // reopen` deterministic for callers.
        let _ = self.wait_for_compaction();
    }
}

/// The disk half of compaction, run on the compactor thread (or inline
/// for crash-matrix tests, stopping at `crash`). Ordering is normative —
/// `docs/FORMAT.md` §8:
///
/// 1. every fresh segment: tmp write → fsync → rename;
/// 2. directory fsync (segments durable before anything references them);
/// 3. manifest: tmp write → fsync → rename (**the publication point**);
/// 4. directory fsync (the new generation is now crash-durable);
/// 5. cleanup: delete stale fold logs, unreferenced segments, legacy
///    snapshot; directory fsync.
fn publish_plan(plan: &CompactionPlan, crash: Option<CrashPoint>) -> Result<()> {
    debug_assert!(crash != Some(CrashPoint::AfterLogRotation));
    // Root trace on whichever thread runs the pipeline (the compactor
    // thread in production); per-phase child spans time each rename
    // point of the crash-ordering pipeline.
    let _span = classic_obs::span_timed(&plan.recorder, "store.compact.publish", &plan.publish_ns);
    {
        let _phase = classic_obs::span(&plan.recorder, "store.publish.segments");
        let mut first_published = false;
        for seg in &plan.segments {
            if seg.reuse || plan.dir.join(&seg.file).exists() {
                continue;
            }
            segment::write_segment(&plan.dir, &seg.file, &seg.rendered, plan.generation)?;
            if !first_published {
                first_published = true;
                if crash == Some(CrashPoint::AfterFirstSegmentPublish) {
                    return Ok(());
                }
            }
        }
        // Crash point still honored when every segment was reused.
        if crash == Some(CrashPoint::AfterFirstSegmentPublish) {
            return Ok(());
        }
        sync_dir(&plan.manifest_file)?;
    }
    if crash == Some(CrashPoint::BeforeManifestRename) {
        return Ok(());
    }
    {
        let _phase = classic_obs::span(&plan.recorder, "store.publish.manifest");
        plan.manifest.write_atomic(&plan.manifest_file)?;
        if crash == Some(CrashPoint::AfterManifestRename) {
            return Ok(());
        }
        sync_dir(&plan.manifest_file)?;
    }
    if crash == Some(CrashPoint::BeforeCleanup) {
        return Ok(());
    }
    {
        let _phase = classic_obs::span(&plan.recorder, "store.publish.cleanup");
        for path in plan
            .stale_logs
            .iter()
            .chain(&plan.stale_segments)
            .chain(&plan.legacy_files)
        {
            match std::fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(storage_err(path, Some(plan.generation), e)),
            }
        }
        sync_dir(&plan.manifest_file)?;
    }
    Ok(())
}

/// Truncate the log and start it with the given generation header,
/// durably. Returns the open handle positioned for appending.
fn reset_log(log_path: &Path, generation: u64) -> Result<File> {
    let io = |e: std::io::Error| storage_err(log_path, Some(generation), e);
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(log_path)
        .map_err(io)?;
    writeln!(file, "{GEN_PREFIX} {generation}").map_err(io)?;
    file.sync_all().map_err(io)?;
    Ok(file)
}

/// Fsync the directory containing `path`, making a completed rename
/// durable. Directory fds cannot be fsynced on all platforms; on
/// non-Unix systems the rename itself is the best available ordering.
fn sync_dir(path: &Path) -> Result<()> {
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| storage_err(dir, None, format!("fsyncing directory: {e}")))?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// Best-effort sweep of `*.tmp` leftovers from an interrupted atomic
/// write (`<stem>.…​.tmp`). They were never renamed into place, so they
/// are dead weight, not state.
fn sweep_tmp_files(dir: &Path, stem: &str) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with(&format!("{stem}.")) && name.ends_with(".tmp") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Best-effort sweep of state superseded by `manifest`: fold logs whose
/// generation the manifest already folds in, segment files it does not
/// reference, and the legacy monolithic snapshot.
fn sweep_stale(dir: &Path, stem: &str, manifest: &Manifest) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(gen) = parse_fold_gen(&name, stem) {
            if gen < manifest.generation {
                let _ = std::fs::remove_file(entry.path());
            }
        } else if (is_segment_file(&name, stem) && !manifest.entries.iter().any(|e| e.file == name))
            || name == format!("{stem}.snapshot")
        {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// If `line` is a `(create-ind NAME)` record exactly as the snapshot
/// renderer writes it, the name; otherwise `None`.
fn create_ind_target(line: &str) -> Option<&str> {
    line.trim()
        .strip_prefix("(create-ind ")?
        .strip_suffix(')')
        .map(str::trim)
}

/// The pre-segmented, monolithic snapshot path (`kb.log` → `kb.snapshot`).
fn legacy_snapshot_path(log: &Path) -> PathBuf {
    log.with_extension("snapshot")
}

/// A throwaway file handle used to build the struct before the real
/// active log is settled (the field is replaced before `open` returns).
fn tempfile_placeholder(log_path: &Path) -> Result<File> {
    // Open the directory's /dev/null equivalent: a write handle to a
    // tmp file we immediately reuse or recreate. Cheapest portable
    // option: create (or truncate) `<log>.tmp` which the tmp sweep of
    // any future open removes if we crash before replacing it.
    let tmp = tmp_path(log_path);
    let f = File::create(&tmp).map_err(|e| storage_err(&tmp, None, e))?;
    let _ = std::fs::remove_file(&tmp);
    Ok(f)
}

fn read_file(path: &Path) -> Result<String> {
    let mut s = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut s))
        .map_err(|e| storage_err(path, None, e))?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{same_state, snapshot_to_string};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("classic-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn populate(store: &mut DurableKb) {
        store.define_role("thing-driven").unwrap();
        store.define_role("enrolled-at").unwrap();
        store
            .define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
            .unwrap();
        let person = store.kb.schema().symbols.find_concept("PERSON").unwrap();
        let enrolled = store.kb.schema().symbols.find_role("enrolled-at").unwrap();
        store
            .define_concept(
                "STUDENT",
                Concept::and([Concept::Name(person), Concept::AtLeast(1, enrolled)]),
            )
            .unwrap();
        store.create_ind("Rocky").unwrap();
        store.assert_ind("Rocky", &Concept::Name(person)).unwrap();
        store
            .assert_ind("Rocky", &Concept::AtLeast(1, enrolled))
            .unwrap();
    }

    /// Add individuals `Ind-{start}..Ind-{start+n}` so the arena spans
    /// several segments at a small budget.
    fn populate_many(store: &mut DurableKb, start: usize, n: usize) {
        let person = store.kb.schema().symbols.find_concept("PERSON").unwrap();
        for i in start..start + n {
            let name = format!("Ind-{i:03}");
            store.create_ind(&name).unwrap();
            store.assert_ind(&name, &Concept::Name(person)).unwrap();
        }
    }

    #[test]
    fn log_replays_to_same_state() {
        let dir = tmpdir("replay");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let before = snapshot_to_string(store.kb().unwrap());
        drop(store);

        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
        // Derived state (recognition) was rebuilt, not just told facts.
        let student = reopened
            .kb()
            .unwrap()
            .schema()
            .symbols
            .find_concept("STUDENT")
            .unwrap();
        let rocky = reopened
            .kb()
            .unwrap()
            .ind_id(
                reopened
                    .kb()
                    .unwrap()
                    .schema()
                    .symbols
                    .find_individual("Rocky")
                    .unwrap(),
            )
            .unwrap();
        assert!(reopened
            .kb()
            .unwrap()
            .is_instance_of(rocky, student)
            .unwrap());
    }

    #[test]
    fn rejected_updates_are_not_logged() {
        let dir = tmpdir("reject");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let driven = store.kb.schema().symbols.find_role("thing-driven").unwrap();
        store
            .assert_ind("Rocky", &Concept::AtMost(0, driven))
            .unwrap();
        // Now contradict it — rejected, and must not poison the log.
        let v = classic_core::IndRef::Classic(store.kb.schema_mut().symbols.individual("Volvo-17"));
        assert!(store
            .assert_ind("Rocky", &Concept::Fills(driven, vec![v]))
            .is_err());
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        let rocky = reopened
            .kb()
            .unwrap()
            .ind_id(
                reopened
                    .kb()
                    .unwrap()
                    .schema()
                    .symbols
                    .find_individual("Rocky")
                    .unwrap(),
            )
            .unwrap();
        // Role ids are interning-order dependent; re-resolve by name.
        let driven = reopened
            .kb()
            .unwrap()
            .schema()
            .symbols
            .find_role("thing-driven")
            .unwrap();
        assert!(reopened.kb().unwrap().ind(rocky).is_closed(driven));
    }

    #[test]
    fn compact_then_reopen() {
        let dir = tmpdir("compact");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        assert!(store.pending_ops() > 0);
        store.compact().unwrap();
        assert_eq!(store.pending_ops(), 0);
        assert!(
            manifest_path(&path).exists(),
            "compaction publishes a manifest"
        );
        // More ops after compaction land in the fresh log.
        store.create_ind("Bullwinkle").unwrap();
        let before = snapshot_to_string(store.kb().unwrap());
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
    }

    #[test]
    fn snapshot_roundtrip_preserves_state() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let rebuilt = crate::snapshot::roundtrip(store.kb().unwrap(), |_| {}).unwrap();
        assert!(same_state(store.kb().unwrap(), &rebuilt));
    }

    #[test]
    fn torn_tail_is_recovered_and_truncated() {
        let dir = tmpdir("torn");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        drop(store);
        // Simulate a crash mid-append: an incomplete final record.
        let mut raw = std::fs::read_to_string(&path).unwrap();
        let good_len = raw.len();
        raw.push_str("(assert-ind Rocky (AT-LEA"); // torn write, no newline
        std::fs::write(&path, &raw).unwrap();

        let store = DurableKb::open(&path, |_| {}).unwrap();
        // State is the full accepted history…
        let rocky = store
            .kb()
            .unwrap()
            .schema()
            .symbols
            .find_individual("Rocky")
            .unwrap();
        assert!(store.kb().unwrap().ind_id(rocky).is_ok());
        drop(store);
        // …and the log was truncated back to the last good record.
        let recovered = std::fs::read_to_string(&path).unwrap();
        assert_eq!(recovered.len(), good_len);
        // Reopening again is clean.
        DurableKb::open(&path, |_| {}).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_an_error_not_silent_repair() {
        let dir = tmpdir("midcorrupt");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        store.create_ind("Bullwinkle").unwrap();
        drop(store);
        // Corrupt a line in the middle.
        let raw = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = raw.lines().collect();
        let mut bad: Vec<String> = lines.iter().map(|s| (*s).to_owned()).collect();
        let mid = bad.len() / 2;
        bad[mid] = "(assert-ind ??? broken".to_owned();
        std::fs::write(&path, bad.join("\n") + "\n").unwrap();

        let err = match DurableKb::open(&path, |_| {}) {
            Err(e) => e,
            Ok(_) => panic!("mid-log corruption must not open cleanly"),
        };
        assert!(err.to_string().contains("corrupted"), "got: {err}");
        // The error names the offending file.
        assert!(err.to_string().contains("kb.log"), "got: {err}");
    }

    #[test]
    fn crash_between_manifest_rename_and_log_truncate_does_not_double_apply() {
        let dir = tmpdir("crashorder");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        // Save the pre-compaction log, compact, then put the old log
        // back: the on-disk state a crash leaves if it lands after the
        // manifest rename but before stale-log cleanup, with the stale
        // log additionally restored to the *active* name.
        let old_log = std::fs::read(&path).unwrap();
        let before = snapshot_to_string(store.kb().unwrap());
        store.compact().unwrap();
        drop(store);
        std::fs::write(&path, &old_log).unwrap();

        // Replaying the stale log on top of the segments would fail
        // (create-ind duplicates) or double-apply; open must detect the
        // generation mismatch and discard it instead.
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
        drop(reopened);
        // The stale log was durably reset, so the next open is clean too.
        let again = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(again.kb().unwrap()));
    }

    #[test]
    fn stale_temp_files_are_removed_on_open() {
        let dir = tmpdir("staletmp");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        store.compact().unwrap();
        let before = snapshot_to_string(store.kb().unwrap());
        drop(store);
        // A crash mid-compaction leaves tmp files that were never
        // renamed into place: a partial segment and a partial manifest.
        let seg_tmp = dir.join("kb.seg-00000000deadbeef.classic.tmp");
        let man_tmp = dir.join("kb.manifest.tmp");
        std::fs::write(&seg_tmp, "; partial segment, crashed mid-write").unwrap();
        std::fs::write(&man_tmp, "; partial manifest, crashed mid-write").unwrap();

        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
        assert!(!seg_tmp.exists(), "stale temp segment must be cleaned up");
        assert!(!man_tmp.exists(), "stale temp manifest must be cleaned up");
    }

    #[test]
    fn retractions_are_logged_replayed_and_folded_by_compaction() {
        let dir = tmpdir("retract");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let enrolled = store.kb.schema().symbols.find_role("enrolled-at").unwrap();
        let retracted = Concept::AtLeast(1, enrolled);
        store.retract_ind("Rocky", &retracted).unwrap();
        let before = snapshot_to_string(store.kb().unwrap());
        drop(store);

        // The retraction replays from the log…
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
        let student = reopened
            .kb()
            .unwrap()
            .schema()
            .symbols
            .find_concept("STUDENT")
            .unwrap();
        let rocky = reopened
            .kb()
            .unwrap()
            .ind_id(
                reopened
                    .kb()
                    .unwrap()
                    .schema()
                    .symbols
                    .find_individual("Rocky")
                    .unwrap(),
            )
            .unwrap();
        assert!(!reopened
            .kb()
            .unwrap()
            .is_instance_of(rocky, student)
            .unwrap());
        drop(reopened);

        // …and compaction folds it away: the segments carry only the
        // surviving told facts, with no retract-ind record.
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        store.compact().unwrap();
        drop(store);
        let manifest = Manifest::load(&manifest_path(&path)).unwrap().unwrap();
        let mut all_segments = String::new();
        for entry in &manifest.entries {
            all_segments.push_str(&std::fs::read_to_string(dir.join(&entry.file)).unwrap());
        }
        assert!(!all_segments.contains("retract-ind"));
        // The STUDENT definition still mentions the restriction, but the
        // retracted told fact about Rocky is gone.
        assert!(!all_segments.contains("(assert-ind Rocky (AT-LEAST 1 enrolled-at))"));
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
    }

    #[test]
    fn retracted_rules_are_dropped_from_snapshots() {
        let dir = tmpdir("retractrule");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        store.define_role("eat").unwrap();
        store
            .define_concept("JUNK-FOOD", Concept::primitive(Concept::thing(), "junk"))
            .unwrap();
        let junk = store.kb.schema().symbols.find_concept("JUNK-FOOD").unwrap();
        let eat = store.kb.schema().symbols.find_role("eat").unwrap();
        let consequent = Concept::all(eat, Concept::Name(junk));
        store.assert_rule("STUDENT", consequent.clone()).unwrap();
        store.retract_rule("STUDENT", &consequent).unwrap();
        assert_eq!(store.kb().unwrap().active_rules().count(), 0);
        let before = snapshot_to_string(store.kb().unwrap());
        assert!(!before.contains("assert-rule"));
        drop(store);
        // Replay reaches the same state (rule asserted then retracted).
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
        assert_eq!(reopened.kb().unwrap().active_rules().count(), 0);
    }

    #[test]
    fn rules_survive_persistence() {
        let dir = tmpdir("rules");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        store.define_role("eat").unwrap();
        store
            .define_concept("JUNK-FOOD", Concept::primitive(Concept::thing(), "junk"))
            .unwrap();
        let junk = store.kb.schema().symbols.find_concept("JUNK-FOOD").unwrap();
        let eat = store.kb.schema().symbols.find_role("eat").unwrap();
        store
            .assert_rule("STUDENT", Concept::all(eat, Concept::Name(junk)))
            .unwrap();
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(reopened.kb().unwrap().rules().len(), 1);
        // And the rule had fired on Rocky during replay.
        let rocky = reopened
            .kb()
            .unwrap()
            .ind_id(
                reopened
                    .kb()
                    .unwrap()
                    .schema()
                    .symbols
                    .find_individual("Rocky")
                    .unwrap(),
            )
            .unwrap();
        let eat = reopened
            .kb()
            .unwrap()
            .schema()
            .symbols
            .find_role("eat")
            .unwrap();
        let junk = reopened
            .kb()
            .unwrap()
            .schema()
            .symbols
            .find_concept("JUNK-FOOD")
            .unwrap();
        let junk_nf = reopened.kb().unwrap().schema().concept_nf(junk).unwrap();
        let vr = reopened
            .kb()
            .unwrap()
            .ind(rocky)
            .derived
            .value_restriction(eat);
        assert!(classic_core::subsumes(junk_nf, &vr));
    }

    // ---- segmented-format behaviors ------------------------------------

    #[test]
    fn compaction_partitions_individuals_across_segments() {
        let dir = tmpdir("segments");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        store.set_segment_budget(4);
        populate(&mut store);
        populate_many(&mut store, 0, 10); // 11 individuals total
        store.compact().unwrap();
        let report = store.last_compaction().unwrap();
        assert_eq!(report.segments_total, 1 + 3, "schema + ceil(11/4) segments");
        assert_eq!(report.segments_written, 4);
        drop(store);
        let manifest = Manifest::load(&manifest_path(&path)).unwrap().unwrap();
        assert_eq!(manifest.ind_entries().count(), 3);
        assert!(manifest.schema_entry().is_some());
    }

    #[test]
    fn unchanged_segments_are_reused_across_compactions() {
        let dir = tmpdir("reuse");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        store.set_segment_budget(4);
        populate(&mut store);
        populate_many(&mut store, 0, 10);
        store.compact().unwrap();
        // Append-only growth: earlier full segments and the schema are
        // byte-identical next generation, so only the tail is rewritten.
        populate_many(&mut store, 10, 3);
        store.compact().unwrap();
        let report = store.last_compaction().unwrap();
        assert!(
            report.segments_reused >= 3,
            "schema + first two full segments must be reused, got {report:?}"
        );
        assert!(report.segments_written <= 2, "got {report:?}");
        // Reopen agrees with memory.
        let before = snapshot_to_string(store.kb().unwrap());
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
    }

    #[test]
    fn paged_open_defers_segments_and_hydrates_on_demand() {
        let dir = tmpdir("paged");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        store.set_segment_budget(4);
        populate(&mut store);
        populate_many(&mut store, 0, 10);
        store.compact().unwrap();
        // A short log suffix touching one individual.
        let person = store.kb.schema().symbols.find_concept("PERSON").unwrap();
        store.assert_ind("Ind-002", &Concept::Name(person)).unwrap();
        let before = snapshot_to_string(store.kb().unwrap());
        drop(store);

        let mut paged = DurableKb::open_paged(&path, |_| {}).unwrap();
        assert_eq!(paged.segment_count(), 3);
        // Replaying the suffix hydrated only Ind-002's segment.
        assert_eq!(paged.pending_segments(), 2);
        assert!(!paged.is_fully_hydrated());
        // A mutation touching a parked individual hydrates its segment.
        let person = paged.kb.schema().symbols.find_concept("PERSON").unwrap();
        paged.assert_ind("Ind-007", &Concept::Name(person)).unwrap();
        assert_eq!(paged.pending_segments(), 1);
        // Full hydration converges to the eager state.
        let full = paged.kb_hydrated().unwrap();
        let mut oracle_store = DurableKb::open(&path, |_| {}).unwrap();
        let person = oracle_store
            .kb
            .schema()
            .symbols
            .find_concept("PERSON")
            .unwrap();
        oracle_store
            .assert_ind("Ind-007", &Concept::Name(person))
            .unwrap();
        assert!(same_state(full, oracle_store.kb().unwrap()));
        let _ = before;
    }

    #[test]
    fn kb_errors_on_partially_hydrated_store() {
        let dir = tmpdir("pagedpanic");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        store.set_segment_budget(2);
        populate(&mut store);
        populate_many(&mut store, 0, 6);
        store.compact().unwrap();
        drop(store);
        let mut paged = DurableKb::open_paged(&path, |_| {}).unwrap();
        let parked = paged.pending_segments();
        assert!(parked > 0, "precondition");
        match paged.kb() {
            Err(ClassicError::NotHydrated { lo, hi, segments }) => {
                assert_eq!(segments, parked);
                assert!(lo < hi, "the parked range {lo}..{hi} must be non-empty");
            }
            other => panic!("expected NotHydrated, got {other:?}"),
        }
        // Hydrating clears the error.
        paged.hydrate_all().unwrap();
        assert!(paged.kb().is_ok());
    }

    #[test]
    fn background_compaction_does_not_block_appends() {
        let dir = tmpdir("bg");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        assert!(store.compact_in_background().unwrap());
        // Appends proceed immediately against the rotated log while the
        // compactor publishes.
        store.create_ind("Bullwinkle").unwrap();
        let report = store.wait_for_compaction().unwrap().unwrap();
        assert!(report.generation >= 1);
        assert_eq!(store.generation(), report.generation);
        let before = snapshot_to_string(store.kb().unwrap());
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
    }

    #[test]
    fn auto_compaction_triggers_on_threshold() {
        let dir = tmpdir("auto");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        store.set_auto_compact_after(Some(5));
        populate(&mut store); // 7 ops ⇒ a compaction has started
        store.wait_for_compaction().unwrap();
        assert!(
            store.last_compaction().is_some(),
            "threshold crossing must have started a compaction"
        );
        assert!(manifest_path(&path).exists());
        let before = snapshot_to_string(store.kb().unwrap());
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
    }

    #[test]
    fn legacy_monolithic_store_is_opened_and_migrated() {
        let dir = tmpdir("legacy");
        let path = dir.join("kb.log");
        // Fabricate the pre-segmented layout: `kb.snapshot` (gen header +
        // monolithic script) plus a fresh-generation log with a suffix.
        let mut oracle = DurableKb::open(dir.join("oracle.log"), |_| {}).unwrap();
        populate(&mut oracle);
        let script = snapshot_to_string(oracle.kb().unwrap());
        std::fs::write(
            legacy_snapshot_path(&path),
            format!("{GEN_PREFIX} 3\n{script}"),
        )
        .unwrap();
        std::fs::write(&path, format!("{GEN_PREFIX} 3\n(create-ind Bullwinkle)\n")).unwrap();

        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(store.generation(), 3);
        assert!(store
            .kb()
            .unwrap()
            .schema()
            .symbols
            .find_individual("Bullwinkle")
            .is_some());
        // Compaction migrates to the segmented format and removes the
        // legacy snapshot.
        store.compact().unwrap();
        assert_eq!(store.generation(), 4);
        assert!(!legacy_snapshot_path(&path).exists());
        assert!(manifest_path(&path).exists());
        let before = snapshot_to_string(store.kb().unwrap());
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
    }

    #[test]
    fn crash_after_log_rotation_replays_fold_and_active_logs() {
        let dir = tmpdir("foldreplay");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let before = snapshot_to_string(store.kb().unwrap());
        // Die right after the rotation: the fold log holds the history,
        // the fresh active log is empty, and no new manifest exists.
        store
            .compact_crashing_at(CrashPoint::AfterLogRotation)
            .unwrap();
        drop(store);
        assert!(fold_log_path(&dir, "kb", 0).exists());
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
        // The next compaction folds both logs away for good.
        drop(reopened);
        let mut again = DurableKb::open(&path, |_| {}).unwrap();
        again.compact().unwrap();
        assert!(!fold_log_path(&dir, "kb", 0).exists());
        drop(again);
        let final_open = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(final_open.kb().unwrap()));
    }

    #[test]
    fn storage_errors_name_the_offending_file_and_generation() {
        let dir = tmpdir("errctx");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        store.compact().unwrap();
        drop(store);
        // Truncate one published segment: open must fail naming it.
        let manifest = Manifest::load(&manifest_path(&path)).unwrap().unwrap();
        let victim = manifest.ind_entries().next().unwrap().file.clone();
        let seg_path = dir.join(&victim);
        let text = std::fs::read_to_string(&seg_path).unwrap();
        std::fs::write(&seg_path, &text[..text.len() / 2]).unwrap();
        let err = match DurableKb::open(&path, |_| {}) {
            Err(e) => e,
            Ok(_) => panic!("a truncated segment must not open cleanly"),
        };
        let msg = err.to_string();
        assert!(msg.contains(&victim), "error must name the file: {msg}");
        assert!(
            msg.contains("generation"),
            "error must name the generation: {msg}"
        );
    }

    #[test]
    fn store_metrics_track_appends_and_compactions() {
        let dir = tmpdir("obsstore");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        store.compact().unwrap();
        store.create_ind("Bullwinkle").unwrap();
        let snap = store.kb().unwrap().metrics().snapshot();
        let counter = |name: &str| snap.counters.get(name).map(|(_, v)| *v).unwrap_or(0);
        assert!(counter("classic_store_appends_total") > 0);
        assert!(counter("classic_store_append_bytes_total") > 0);
        assert_eq!(counter("classic_store_compactions_total"), 1);
        assert!(counter("classic_store_segments_written_total") > 0);
        let report = store.last_compaction().unwrap();
        assert_eq!(
            counter("classic_store_compact_bytes_total"),
            report.bytes_written
        );
        assert_eq!(
            snap.gauges.get("classic_store_generation").map(|g| g.1),
            Some(report.generation)
        );
        // The same series appear in both exposition formats.
        let prom = classic_obs::render_prometheus(&snap);
        assert!(prom.contains("classic_store_appends_total"));
        let json = classic_obs::render_json(&snap);
        assert!(json.contains("classic_store_appends_total"));
    }

    fn parse_bulk(src: &str) -> (Command, BulkSpec) {
        let cmd = classic_lang::parse(src).unwrap().remove(0);
        let Command::BulkLoad(spec) = &cmd else {
            panic!("expected a bulk-load form, got {cmd:?}");
        };
        let spec = spec.clone();
        (cmd, spec)
    }

    #[test]
    fn bulk_load_logged_appends_one_record_and_replays() {
        let dir = tmpdir("bulk-logged");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        for cmd in classic_lang::parse(
            "(define-role name) (define-role age)
             (define-concept PERSON (PRIMITIVE THING person))",
        )
        .unwrap()
        {
            store.eval_durable(&cmd).unwrap();
        }
        let (cmd, _) = parse_bulk(
            r#"(bulk-load (into PERSON) (roles name age)
                 (row p1 "Ada" 36) (row p2 "Grace" 45) (row p3 'anon _))"#,
        );
        let Outcome::BulkLoaded(report) = store.eval_durable(&cmd).unwrap() else {
            panic!("expected a bulk-loaded outcome");
        };
        assert_eq!((report.rows, report.accepted, report.rejected), (3, 3, 0));
        // The whole batch is one appended record on one line.
        let raw = std::fs::read_to_string(&path).unwrap();
        assert_eq!(raw.matches("(bulk-load").count(), 1, "log: {raw}");
        let record = raw.lines().find(|l| l.contains("bulk-load")).unwrap();
        assert!(record.contains("(row p3 'anon _)"), "record: {record}");
        let before = snapshot_to_string(store.kb().unwrap());
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
    }

    #[test]
    fn bulk_load_logged_drops_rejected_rows_from_the_log() {
        let dir = tmpdir("bulk-reject");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        for cmd in classic_lang::parse(
            "(define-role r)
             (define-concept LONER (AT-MOST 0 r))",
        )
        .unwrap()
        {
            store.eval_durable(&cmd).unwrap();
        }
        // Row a fills the closed-off role and is rejected; row b carries
        // no filler and is accepted.
        let (cmd, _) = parse_bulk("(bulk-load (into LONER) (roles r) (row a V) (row b _))");
        let Outcome::BulkLoaded(report) = store.eval_durable(&cmd).unwrap() else {
            panic!("expected a bulk-loaded outcome");
        };
        assert_eq!((report.accepted, report.rejected), (1, 1));
        assert_eq!(report.row_accepted, vec![false, true]);
        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(raw.contains("(row b _)"), "log: {raw}");
        assert!(!raw.contains("(row a"), "log: {raw}");
        let before = snapshot_to_string(store.kb().unwrap());
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
    }

    #[test]
    fn segment_tier_bulk_load_commits_without_log_appends() {
        let dir = tmpdir("bulk-seg");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        let ddl = classic_lang::parse(
            "(define-role name)
             (define-concept PERSON (PRIMITIVE THING person))",
        )
        .unwrap();
        let (_, spec) =
            parse_bulk(r#"(bulk-load (into PERSON) (roles name) (row p1 "Ada") (row p2 "Grace"))"#);
        let out = store.bulk_load(&ddl, &spec).unwrap();
        assert_eq!(out.report.accepted, 2);
        assert_eq!(out.ddl_applied, 2);
        assert_eq!(out.generation, store.generation());
        // Nothing reached the operation log: the compaction was the
        // durability.
        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(
            !raw.contains("bulk-load") && !raw.contains("define-role"),
            "log: {raw}"
        );
        let before = snapshot_to_string(store.kb().unwrap());
        drop(store);
        let mut reopened = DurableKb::open(&path, |_| {}).unwrap();
        reopened.hydrate_all().unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb().unwrap()));
    }

    #[test]
    fn segment_tier_bulk_load_rejects_bad_ddl_untouched() {
        let dir = tmpdir("bulk-badddl");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let before = snapshot_to_string(&store.kb);
        // `no-such-role` is undefined, so the second DDL command fails
        // to resolve; the first must not stick either.
        let ddl = classic_lang::parse(
            "(define-role name)
             (define-concept BAD (AT-LEAST 1 no-such-role))",
        )
        .unwrap();
        let (_, spec) = parse_bulk(r#"(bulk-load (roles name) (row p1 "Ada"))"#);
        assert!(store.bulk_load(&ddl, &spec).is_err());
        assert_eq!(before, snapshot_to_string(&store.kb));
        assert!(store.kb.schema().symbols.find_role("name").is_none());
        // Read-only queries are also rejected as DDL.
        let query = classic_lang::parse("(retrieve THING)").unwrap();
        assert!(store.bulk_load(&query, &spec).is_err());
    }

    #[test]
    fn segment_tier_crash_before_manifest_rename_recovers_pre_ingest_state() {
        let dir = tmpdir("bulk-crash");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let pre = snapshot_to_string(&store.kb);
        // Mimic `bulk_load` up to its commit point — apply DDL and rows
        // in memory with no log appends — then crash the publishing
        // compaction just before the manifest rename.
        for cmd in &classic_lang::parse("(define-role name)").unwrap() {
            classic_lang::eval(&mut store.kb, cmd).unwrap();
        }
        let (_, spec) = parse_bulk(r#"(bulk-load (roles name) (row p9 "X"))"#);
        let rows = resolve_bulk_rows(&mut store.kb, &spec).unwrap();
        assert_eq!(store.kb.bulk_assert(&rows).accepted, 1);
        store.ops_since_compact += 2;
        store
            .compact_crashing_at(CrashPoint::BeforeManifestRename)
            .unwrap();
        drop(store);
        // The ingested operations were never logged, so recovery is the
        // pre-ingest state exactly.
        let mut reopened = DurableKb::open(&path, |_| {}).unwrap();
        reopened.hydrate_all().unwrap();
        assert_eq!(pre, snapshot_to_string(reopened.kb().unwrap()));
        assert!(reopened
            .kb()
            .unwrap()
            .schema()
            .symbols
            .find_individual("p9")
            .is_none());
    }
}
