//! Durable storage: a write-ahead operation log plus snapshot compaction.
//!
//! The paper frames the database as "a cache for persistent information of
//! limited complexity" (§1) and names secondary storage as the major open
//! issue (§5). [`DurableKb`] is the straightforward answer for the
//! reproduction: every *accepted* mutating operator is appended to a log
//! file in the surface syntax before the call returns, and
//! [`DurableKb::compact`] rewrites the log as a snapshot. Opening a store
//! replays snapshot + log, rebuilding all derived state deterministically.
//!
//! Rejected updates are never logged — the log records exactly the
//! accepted history, so replay cannot fail on integrity grounds.

use crate::snapshot::{replay, snapshot_to_string};
use classic_core::desc::Concept;
use classic_core::error::{ClassicError, Result};
use classic_core::schema::TestArg;
use classic_core::symbol::{ConceptName, RoleId, TestId};
use classic_kb::{AssertReport, IndId, Kb};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// A knowledge base backed by an on-disk operation log.
pub struct DurableKb {
    kb: Kb,
    log_path: PathBuf,
    log: BufWriter<File>,
    /// Operations appended since open/compact.
    ops_since_compact: u64,
}

impl DurableKb {
    /// Open (or create) a store rooted at `path`. `path` is the log file;
    /// `path` with extension `.snapshot` holds the last compaction.
    /// `register_tests` must register every host test function the logged
    /// history references.
    pub fn open(path: impl AsRef<Path>, register_tests: impl FnOnce(&mut Kb)) -> Result<DurableKb> {
        let log_path = path.as_ref().to_path_buf();
        let mut kb = Kb::new();
        register_tests(&mut kb);
        // Replay snapshot first, then the tail log.
        let snap_path = snapshot_path(&log_path);
        if snap_path.exists() {
            let script = read_file(&snap_path)?;
            replay(&mut kb, &script)?;
        }
        if log_path.exists() {
            recover_log(&mut kb, &log_path)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
            .map_err(io_err)?;
        Ok(DurableKb {
            kb,
            log_path,
            log: BufWriter::new(file),
            ops_since_compact: 0,
        })
    }

    /// The underlying knowledge base (read-only; mutations must go through
    /// the logged operators).
    pub fn kb(&self) -> &Kb {
        &self.kb
    }

    /// Mutable access for *query* paths that need `&mut Kb` (ad-hoc
    /// normalization interns symbols but asserts nothing durable).
    pub fn kb_mut_for_queries(&mut self) -> &mut Kb {
        &mut self.kb
    }

    fn append(&mut self, line: &str) -> Result<()> {
        self.log.write_all(line.as_bytes()).map_err(io_err)?;
        self.log.write_all(b"\n").map_err(io_err)?;
        self.log.flush().map_err(io_err)?;
        self.ops_since_compact += 1;
        Ok(())
    }

    // ---- logged operators -------------------------------------------------

    /// `define-role`, logged on success.
    pub fn define_role(&mut self, name: &str) -> Result<RoleId> {
        let id = self.kb.define_role(name)?;
        self.append(&format!("(define-role {name})"))?;
        Ok(id)
    }

    /// `define-attribute`, logged on success.
    pub fn define_attribute(&mut self, name: &str) -> Result<RoleId> {
        let id = self.kb.define_attribute(name)?;
        self.append(&format!("(define-attribute {name})"))?;
        Ok(id)
    }

    /// `define-concept`, logged on success.
    pub fn define_concept(&mut self, name: &str, told: Concept) -> Result<ConceptName> {
        let rendered = told.display(&self.kb.schema().symbols).to_string();
        let id = self.kb.define_concept(name, told)?;
        self.append(&format!("(define-concept {name} {rendered})"))?;
        Ok(id)
    }

    /// `create-ind`, logged on success.
    pub fn create_ind(&mut self, name: &str) -> Result<IndId> {
        let id = self.kb.create_ind(name)?;
        self.append(&format!("(create-ind {name})"))?;
        Ok(id)
    }

    /// `assert-ind`: applied to the KB first; logged only if accepted.
    pub fn assert_ind(&mut self, name: &str, desc: &Concept) -> Result<AssertReport> {
        let rendered = desc.display(&self.kb.schema().symbols).to_string();
        let report = self.kb.assert_ind(name, desc)?;
        self.append(&format!("(assert-ind {name} {rendered})"))?;
        Ok(report)
    }

    /// `assert-rule`: applied to the KB first; logged only if accepted.
    pub fn assert_rule(&mut self, antecedent: &str, consequent: Concept) -> Result<usize> {
        let rendered = consequent.display(&self.kb.schema().symbols).to_string();
        let ix = self.kb.assert_rule(antecedent, consequent)?;
        self.append(&format!("(assert-rule {antecedent} {rendered})"))?;
        Ok(ix)
    }

    /// Register a host test function. Not logged (closures are not
    /// serializable); the snapshot header records the required names.
    pub fn register_test<F>(&mut self, name: &str, f: F) -> TestId
    where
        F: Fn(&TestArg<'_>) -> bool + Send + Sync + 'static,
    {
        self.kb.register_test(name, f)
    }

    // ---- maintenance -------------------------------------------------------

    /// Operations appended since the store was opened or last compacted.
    pub fn pending_ops(&self) -> u64 {
        self.ops_since_compact
    }

    /// Rewrite the snapshot from current state and truncate the log.
    pub fn compact(&mut self) -> Result<()> {
        let snap = snapshot_to_string(&self.kb);
        let snap_path = snapshot_path(&self.log_path);
        let tmp = snap_path.with_extension("snapshot.tmp");
        std::fs::write(&tmp, snap).map_err(io_err)?;
        std::fs::rename(&tmp, &snap_path).map_err(io_err)?;
        // Truncate the log only after the snapshot is durable.
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.log_path)
            .map_err(io_err)?;
        self.log = BufWriter::new(file);
        self.ops_since_compact = 0;
        Ok(())
    }
}

/// Replay the operation log line by line, tolerating a torn tail.
///
/// The log is written one command per line with a flush per append, so
/// the only corruption a crash can produce is an incomplete final line.
/// Recovery truncates that tail (after which the log is exactly the
/// accepted history again); a malformed line *followed by* valid ones is
/// genuine corruption and is reported as an error rather than repaired.
fn recover_log(kb: &mut Kb, log_path: &Path) -> Result<()> {
    let raw = read_file(log_path)?;
    // Byte offset of the end of the last successfully replayed line.
    let mut good_end = 0usize;
    let mut pending_failure: Option<(usize, ClassicError)> = None;
    let mut offset = 0usize;
    for line in raw.split_inclusive('\n') {
        let start = offset;
        offset += line.len();
        let text = line.trim();
        if text.is_empty() || text.starts_with(';') {
            good_end = offset;
            continue;
        }
        if let Some((_, e)) = pending_failure {
            // A valid-looking line after a failure ⇒ mid-log corruption.
            return Err(ClassicError::Malformed(format!(
                "operation log corrupted mid-file (not just a torn tail): {e}"
            )));
        }
        match classic_lang::run_script(kb, text) {
            Ok(_) => good_end = offset,
            Err(e) => pending_failure = Some((start, e)),
        }
    }
    if pending_failure.is_some() && good_end < raw.len() {
        // Torn tail: truncate the log back to the last good record.
        let file = OpenOptions::new()
            .write(true)
            .open(log_path)
            .map_err(io_err)?;
        file.set_len(good_end as u64).map_err(io_err)?;
    }
    Ok(())
}

fn snapshot_path(log: &Path) -> PathBuf {
    log.with_extension("snapshot")
}

fn read_file(path: &Path) -> Result<String> {
    let mut s = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut s))
        .map_err(io_err)?;
    Ok(s)
}

fn io_err(e: std::io::Error) -> ClassicError {
    ClassicError::Malformed(format!("storage I/O error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::same_state;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("classic-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn populate(store: &mut DurableKb) {
        store.define_role("thing-driven").unwrap();
        store.define_role("enrolled-at").unwrap();
        store
            .define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
            .unwrap();
        let person = store.kb.schema().symbols.find_concept("PERSON").unwrap();
        let enrolled = store.kb.schema().symbols.find_role("enrolled-at").unwrap();
        store
            .define_concept(
                "STUDENT",
                Concept::and([Concept::Name(person), Concept::AtLeast(1, enrolled)]),
            )
            .unwrap();
        store.create_ind("Rocky").unwrap();
        store.assert_ind("Rocky", &Concept::Name(person)).unwrap();
        store
            .assert_ind("Rocky", &Concept::AtLeast(1, enrolled))
            .unwrap();
    }

    #[test]
    fn log_replays_to_same_state() {
        let dir = tmpdir("replay");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let before = snapshot_to_string(store.kb());
        drop(store);

        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb()));
        // Derived state (recognition) was rebuilt, not just told facts.
        let student = reopened
            .kb()
            .schema()
            .symbols
            .find_concept("STUDENT")
            .unwrap();
        let rocky = reopened
            .kb()
            .ind_id(
                reopened
                    .kb()
                    .schema()
                    .symbols
                    .find_individual("Rocky")
                    .unwrap(),
            )
            .unwrap();
        assert!(reopened.kb().is_instance_of(rocky, student).unwrap());
    }

    #[test]
    fn rejected_updates_are_not_logged() {
        let dir = tmpdir("reject");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let driven = store.kb.schema().symbols.find_role("thing-driven").unwrap();
        store
            .assert_ind("Rocky", &Concept::AtMost(0, driven))
            .unwrap();
        // Now contradict it — rejected, and must not poison the log.
        let v = classic_core::IndRef::Classic(store.kb.schema_mut().symbols.individual("Volvo-17"));
        assert!(store
            .assert_ind("Rocky", &Concept::Fills(driven, vec![v]))
            .is_err());
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        let rocky = reopened
            .kb()
            .ind_id(
                reopened
                    .kb()
                    .schema()
                    .symbols
                    .find_individual("Rocky")
                    .unwrap(),
            )
            .unwrap();
        // Role ids are interning-order dependent; re-resolve by name.
        let driven = reopened
            .kb()
            .schema()
            .symbols
            .find_role("thing-driven")
            .unwrap();
        assert!(reopened.kb().ind(rocky).is_closed(driven));
    }

    #[test]
    fn compact_then_reopen() {
        let dir = tmpdir("compact");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        assert!(store.pending_ops() > 0);
        store.compact().unwrap();
        assert_eq!(store.pending_ops(), 0);
        // More ops after compaction land in the fresh log.
        store.create_ind("Bullwinkle").unwrap();
        let before = snapshot_to_string(store.kb());
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb()));
    }

    #[test]
    fn snapshot_roundtrip_preserves_state() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let rebuilt = crate::snapshot::roundtrip(store.kb(), |_| {}).unwrap();
        assert!(same_state(store.kb(), &rebuilt));
    }

    #[test]
    fn torn_tail_is_recovered_and_truncated() {
        let dir = tmpdir("torn");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        drop(store);
        // Simulate a crash mid-append: an incomplete final record.
        let mut raw = std::fs::read_to_string(&path).unwrap();
        let good_len = raw.len();
        raw.push_str("(assert-ind Rocky (AT-LEA"); // torn write, no newline
        std::fs::write(&path, &raw).unwrap();

        let store = DurableKb::open(&path, |_| {}).unwrap();
        // State is the full accepted history…
        let rocky = store
            .kb()
            .schema()
            .symbols
            .find_individual("Rocky")
            .unwrap();
        assert!(store.kb().ind_id(rocky).is_ok());
        drop(store);
        // …and the log was truncated back to the last good record.
        let recovered = std::fs::read_to_string(&path).unwrap();
        assert_eq!(recovered.len(), good_len);
        // Reopening again is clean.
        DurableKb::open(&path, |_| {}).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_an_error_not_silent_repair() {
        let dir = tmpdir("midcorrupt");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        store.create_ind("Bullwinkle").unwrap();
        drop(store);
        // Corrupt a line in the middle.
        let raw = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = raw.lines().collect();
        let mut bad: Vec<String> = lines.iter().map(|s| (*s).to_owned()).collect();
        let mid = bad.len() / 2;
        bad[mid] = "(assert-ind ??? broken".to_owned();
        std::fs::write(&path, bad.join("\n") + "\n").unwrap();

        let err = match DurableKb::open(&path, |_| {}) {
            Err(e) => e,
            Ok(_) => panic!("mid-log corruption must not open cleanly"),
        };
        assert!(err.to_string().contains("corrupted"), "got: {err}");
    }

    #[test]
    fn rules_survive_persistence() {
        let dir = tmpdir("rules");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        store.define_role("eat").unwrap();
        store
            .define_concept("JUNK-FOOD", Concept::primitive(Concept::thing(), "junk"))
            .unwrap();
        let junk = store.kb.schema().symbols.find_concept("JUNK-FOOD").unwrap();
        let eat = store.kb.schema().symbols.find_role("eat").unwrap();
        store
            .assert_rule("STUDENT", Concept::all(eat, Concept::Name(junk)))
            .unwrap();
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(reopened.kb().rules().len(), 1);
        // And the rule had fired on Rocky during replay.
        let rocky = reopened
            .kb()
            .ind_id(
                reopened
                    .kb()
                    .schema()
                    .symbols
                    .find_individual("Rocky")
                    .unwrap(),
            )
            .unwrap();
        let eat = reopened.kb().schema().symbols.find_role("eat").unwrap();
        let junk = reopened
            .kb()
            .schema()
            .symbols
            .find_concept("JUNK-FOOD")
            .unwrap();
        let junk_nf = reopened.kb().schema().concept_nf(junk).unwrap();
        let vr = reopened.kb().ind(rocky).derived.value_restriction(eat);
        assert!(classic_core::subsumes(junk_nf, &vr));
    }
}
